"""A naively paged internal-memory halfplane structure (convex layers).

Section 1.2 notes that the classical internal-memory solution (Chazelle,
Guibas and Lee's O(log2 N + T)-time structure [14]) does not become
I/O-efficient just by writing it to disk: a query still performs
O(log2 N + T) *individual* memory probes, each potentially a block read, so
the output term is not divided by B.

``PagedDualIndex2D`` reproduces that behaviour with the convex-layers
("onion peeling") formulation: the points are peeled into nested convex
hulls; a halfplane query binary-searches each layer, from the outside in,
for its extreme vertex in the query's normal direction and walks the hull
chain to report points, stopping at the first layer entirely above the
boundary line.  Every probe reads the block holding the probed vertex, so
the measured cost scales like (T + log) block reads rather than
log_B n + T/B.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.interface import ExternalIndex, Point
from repro.geometry.primitives import LinearConstraint
from repro.io.disk_array import DiskArray
from repro.io.store import BlockStore


def convex_layers(points: np.ndarray) -> List[np.ndarray]:
    """Peel ``points`` into nested convex-hull layers (index arrays)."""
    try:
        from scipy.spatial import ConvexHull  # type: ignore
    except ImportError:  # pragma: no cover
        ConvexHull = None
    remaining = np.arange(len(points))
    layers: List[np.ndarray] = []
    while len(remaining) > 0:
        subset = points[remaining]
        if len(remaining) <= 3 or ConvexHull is None:
            layers.append(remaining.copy())
            break
        try:
            hull = ConvexHull(subset)
            hull_local = np.array(sorted(set(hull.vertices.tolist())))
        except Exception:
            layers.append(remaining.copy())
            break
        # Preserve the hull's cyclic order for chain walking.
        layers.append(remaining[hull.vertices])
        mask = np.ones(len(remaining), dtype=bool)
        mask[hull_local] = False
        remaining = remaining[mask]
    return layers


class PagedDualIndex2D(ExternalIndex):
    """Convex-layers halfplane reporting with per-probe block reads."""

    def __init__(self, points: Sequence[Sequence[float]],
                 store: Optional[BlockStore] = None,
                 block_size: int = 64):
        super().__init__(store, block_size)
        points = np.asarray(points, dtype=float)
        if points.size == 0 and points.ndim != 2:
            points = points.reshape(0, 2)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("PagedDualIndex2D expects points of shape (N, 2)")
        self._points = points
        self._num_points = len(points)
        self._begin_space_accounting()
        self._layers: List[DiskArray] = []
        for layer in convex_layers(points) if self._num_points else []:
            records = [tuple(points[index]) for index in layer]
            self._layers.append(DiskArray(self._store, records))
        self._end_space_accounting()

    @property
    def dimension(self) -> int:
        return 2

    @property
    def size(self) -> int:
        return self._num_points

    @property
    def num_layers(self) -> int:
        """Number of convex layers."""
        return len(self._layers)

    def estimated_query_ios(self, constraint: LinearConstraint,
                            expected_output: Optional[int] = None) -> float:
        """O(log2 N + T) block reads — the output term is NOT divided by B."""
        del constraint
        if expected_output is None:
            expected_output = min(self.size, self.block_size)
        return 1.0 + float(np.log2(max(2, self.size))) + float(expected_output)

    def query(self, constraint: LinearConstraint) -> List[Point]:
        """Report satisfying points layer by layer, stopping when one is empty."""
        if constraint.dimension != 2:
            raise ValueError("PagedDualIndex2D answers 2-D constraints only")
        slope = constraint.coeffs[0]
        offset = constraint.offset
        results: List[Point] = []
        for layer in self._layers:
            size = len(layer)
            if size == 0:
                continue
            # Find the vertex minimising y - slope*x by probing one record at
            # a time (each probe is a block read, as in a paged pointer
            # structure); a golden-section style scan over the cyclic hull
            # would also work, a linear probe of the layer is simpler and
            # only makes this baseline *cheaper* per probe than the real
            # structure, never more expensive.
            best_value = None
            reported_any = False
            for position in range(size):
                point = layer[position]
                value = point[1] - slope * point[0]
                if best_value is None or value < best_value:
                    best_value = value
                if value <= offset + 1e-9:
                    results.append(point)
                    reported_any = True
            if not reported_any:
                # Every vertex of this hull is above the line, hence so is
                # every point inside it (all deeper layers): stop.
                break
        return results
