"""Baseline external-memory structures the paper compares against.

Section 1.2 of the paper reviews the practical spatial indexes of the
database literature — quad-trees, R-trees, k-d-B-trees — and points out
that, although they answer halfspace queries correctly, their worst-case
query cost degrades to Ω(n) I/Os (for example on points lying on a diagonal
line queried with a slightly rotated halfplane).  These baselines exist so
the benchmarks can demonstrate exactly that contrast against the paper's
structures, plus the trivial full scan and the naively paged
internal-memory structure (O(log2 N + T) I/Os).
"""

from repro.baselines.full_scan import FullScanIndex
from repro.baselines.quadtree import QuadTreeIndex
from repro.baselines.rtree import RTreeIndex
from repro.baselines.kdb_tree import KDBTreeIndex
from repro.baselines.paged_cgl import PagedDualIndex2D

__all__ = [
    "FullScanIndex",
    "QuadTreeIndex",
    "RTreeIndex",
    "KDBTreeIndex",
    "PagedDualIndex2D",
]
