"""A k-d-B-tree-style baseline (binary kd splits, blocked leaves).

k-d-B-trees [45] marry kd-tree space partitioning with B-tree-style disk
nodes.  This baseline keeps the essential behaviour for the paper's
comparison: median splits along alternating axes, leaves of B points, and a
halfspace query that must descend into every region crossed by the
constraint boundary.  Internal nodes are packed several to a block, so the
I/O cost of a query is dominated by the number of crossed regions — Θ(n) on
the adversarial diagonal input.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core import kernels
from repro.core.interface import ExternalIndex, Point
from repro.geometry.boxes import Box, CellRelation
from repro.geometry.primitives import LinearConstraint
from repro.io.disk_array import DiskArray
from repro.io.store import BlockStore

_INTERNAL = 0
_LEAF = 1


class KDBTreeIndex(ExternalIndex):
    """kd-tree with blocked leaves and block-packed internal nodes."""

    def __init__(self, points: Sequence[Sequence[float]],
                 store: Optional[BlockStore] = None,
                 block_size: int = 64,
                 leaf_capacity: Optional[int] = None):
        super().__init__(store, block_size)
        points = np.asarray(points, dtype=float)
        if points.size == 0 and points.ndim != 2:
            points = points.reshape(0, 2)
        if points.ndim != 2:
            raise ValueError("points must have shape (N, d)")
        self._points = points
        self._num_points = len(points)
        self._dimension = points.shape[1]
        self._leaf_capacity = leaf_capacity if leaf_capacity is not None else self.block_size
        # In-memory build structures; flattened to blocks afterwards.
        self._build_nodes: List[tuple] = []
        self._leaf_arrays: List[DiskArray] = []
        self._last_regions_visited = 0
        self._begin_space_accounting()
        if self._num_points:
            self._root = self._build(np.arange(self._num_points), axis=0)
        else:
            self._root = None
        self._pack_internal_nodes()
        self._end_space_accounting()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, indices: np.ndarray, axis: int) -> int:
        if len(indices) <= self._leaf_capacity:
            records = [tuple(self._points[index]) for index in indices]
            self._leaf_arrays.append(DiskArray(self._store, records))
            box = Box.of_points(records) if records else Box((0.0,) * self._dimension,
                                                             (0.0,) * self._dimension)
            self._build_nodes.append((_LEAF, len(self._leaf_arrays) - 1,
                                      box.lower, box.upper))
            return len(self._build_nodes) - 1
        values = self._points[indices, axis]
        order = np.argsort(values, kind="mergesort")
        middle = len(order) // 2
        left = indices[order[:middle]]
        right = indices[order[middle:]]
        next_axis = (axis + 1) % self._dimension
        left_id = self._build(left, next_axis)
        right_id = self._build(right, next_axis)
        box = Box.of_points(self._points[indices].tolist())
        self._build_nodes.append((_INTERNAL, left_id, right_id, box.lower, box.upper))
        return len(self._build_nodes) - 1

    def _pack_internal_nodes(self) -> None:
        """Write node records to disk, B per block, for honest I/O charging."""
        B = self.block_size
        self._node_block_ids: List[int] = []
        self._node_position: List[tuple] = []
        for start in range(0, len(self._build_nodes), B):
            chunk = self._build_nodes[start:start + B]
            block_id = self._store.allocate(chunk)
            block_index = len(self._node_block_ids)
            self._node_block_ids.append(block_id)
            for slot in range(len(chunk)):
                self._node_position.append((block_index, slot))

    def _read_node(self, node_id: int) -> tuple:
        block_index, slot = self._node_position[node_id]
        return self._store.read(self._node_block_ids[block_index])[slot]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def size(self) -> int:
        return self._num_points

    @property
    def last_regions_visited(self) -> int:
        """Regions (nodes) touched by the most recent query."""
        return self._last_regions_visited

    def query(self, constraint: LinearConstraint) -> List[Point]:
        """Report satisfying points by descending into crossed regions."""
        if constraint.dimension != self._dimension:
            raise ValueError("constraint dimension %d does not match data "
                             "dimension %d" % (constraint.dimension, self._dimension))
        if self._root is None:
            return []
        results: List[Point] = []
        self._last_regions_visited = 0
        self._visit(self._root, constraint, results, filter_points=True)
        return results

    def _visit(self, node_id: int, constraint: LinearConstraint,
               results: List[Point], filter_points: bool) -> None:
        record = self._read_node(node_id)
        self._last_regions_visited += 1
        if record[0] == _LEAF:
            __, leaf_index, lower, upper = record
            if filter_points:
                kernels.filter_constraint(self._leaf_arrays[leaf_index],
                                          constraint, out=results)
            else:
                kernels.collect_records(self._leaf_arrays[leaf_index],
                                        out=results)
            return
        __, left_id, right_id, lower, upper = record
        if not filter_points:
            self._visit(left_id, constraint, results, False)
            self._visit(right_id, constraint, results, False)
            return
        relation = Box(lower, upper).classify_halfspace(constraint.hyperplane)
        if relation is CellRelation.ABOVE:
            return
        if relation is CellRelation.BELOW:
            self._visit(left_id, constraint, results, False)
            self._visit(right_id, constraint, results, False)
            return
        self._visit(left_id, constraint, results, True)
        self._visit(right_id, constraint, results, True)