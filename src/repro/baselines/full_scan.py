"""The trivial baseline: scan every block and filter.

Costs exactly ⌈N/B⌉ I/Os per query regardless of the output size.  It is
both the sanity floor for correctness (its answers are trivially right) and
the upper bound any clever structure must beat for small outputs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core import kernels
from repro.core.interface import ExternalIndex, Point
from repro.geometry.primitives import LinearConstraint
from repro.io.disk_array import DiskArray
from repro.io.store import BlockStore


class FullScanIndex(ExternalIndex):
    """Linear scan over a blocked point file.

    For an empty point set the dimension cannot be inferred from the
    data; pass ``dimension=`` explicitly (omitting it raises).
    """

    def __init__(self, points: Sequence[Sequence[float]],
                 store: Optional[BlockStore] = None,
                 block_size: int = 64,
                 dimension: Optional[int] = None):
        super().__init__(store, block_size)
        points = np.asarray(points, dtype=float)
        if points.size == 0 and points.ndim != 2:
            if dimension is None:
                raise ValueError(
                    "cannot infer the dimension of an empty point set; "
                    "pass FullScanIndex(..., dimension=d) explicitly")
            points = points.reshape(0, dimension)
        if points.ndim != 2:
            raise ValueError("points must have shape (N, d)")
        if dimension is not None and points.shape[1] != dimension:
            raise ValueError(
                "points have dimension %d but dimension=%d was given"
                % (points.shape[1], dimension))
        self._dimension = points.shape[1]
        self._num_points = len(points)
        self._begin_space_accounting()
        self._data = DiskArray(self._store, [tuple(point) for point in points])
        self._end_space_accounting()

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def size(self) -> int:
        return self._num_points

    def estimated_query_ios(self, constraint: LinearConstraint,
                            expected_output: Optional[int] = None) -> float:
        """Exact: a scan reads every data block regardless of the query."""
        del constraint, expected_output
        return float(max(1, self._store.blocks_for(max(1, self.size))))

    def query(self, constraint: LinearConstraint) -> List[Point]:
        """Report satisfying points by scanning all ⌈N/B⌉ blocks."""
        if constraint.dimension != self._dimension:
            raise ValueError("constraint dimension %d does not match data "
                             "dimension %d" % (constraint.dimension, self._dimension))
        return kernels.filter_constraint(self._data, constraint)
