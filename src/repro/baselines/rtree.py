"""A Sort-Tile-Recursive (STR) packed R-tree baseline.

R-trees [29] and their packed variants are the workhorse spatial indexes of
database systems.  The STR bulk-loading used here sorts points by x, cuts
them into vertical slices, sorts each slice by y and packs leaves of B
points; internal levels pack B child bounding rectangles per node.
Halfspace queries descend into every child whose rectangle is crossed by
the constraint boundary — the same O(n) worst case as the other heuristics
on the paper's adversarial input.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels
from repro.core.interface import ExternalIndex, Point
from repro.geometry.boxes import Box, CellRelation
from repro.geometry.primitives import LinearConstraint
from repro.io.disk_array import DiskArray
from repro.io.store import BlockStore


class _RNode:
    __slots__ = ("is_leaf", "box", "points_array", "child_table", "children")

    def __init__(self, is_leaf, box, points_array=None, child_table=None,
                 children=None):
        self.is_leaf = is_leaf
        self.box = box
        self.points_array = points_array
        self.child_table = child_table
        self.children = children or []


class RTreeIndex(ExternalIndex):
    """STR-packed R-tree over the simulated disk (any dimension >= 2)."""

    def __init__(self, points: Sequence[Sequence[float]],
                 store: Optional[BlockStore] = None,
                 block_size: int = 64,
                 leaf_capacity: Optional[int] = None,
                 fanout: Optional[int] = None):
        super().__init__(store, block_size)
        points = np.asarray(points, dtype=float)
        if points.size == 0 and points.ndim != 2:
            points = points.reshape(0, 2)
        if points.ndim != 2:
            raise ValueError("points must have shape (N, d)")
        self._points = points
        self._num_points = len(points)
        self._dimension = points.shape[1]
        self._leaf_capacity = leaf_capacity if leaf_capacity is not None else self.block_size
        self._fanout = fanout if fanout is not None else max(4, self.block_size)
        self._nodes: List[_RNode] = []
        self._last_nodes_visited = 0
        self._begin_space_accounting()
        self._root = self._bulk_load() if self._num_points else None
        self._end_space_accounting()

    # ------------------------------------------------------------------
    # STR bulk loading
    # ------------------------------------------------------------------
    def _bulk_load(self) -> int:
        order = np.argsort(self._points[:, 0], kind="mergesort")
        leaves_per_slice = max(1, int(math.ceil(
            math.sqrt(self._num_points / self._leaf_capacity))))
        slice_size = leaves_per_slice * self._leaf_capacity
        leaf_ids: List[int] = []
        for slice_start in range(0, self._num_points, slice_size):
            slice_indices = order[slice_start:slice_start + slice_size]
            by_y = slice_indices[np.argsort(self._points[slice_indices, 1],
                                            kind="mergesort")]
            for leaf_start in range(0, len(by_y), self._leaf_capacity):
                leaf_indices = by_y[leaf_start:leaf_start + self._leaf_capacity]
                leaf_ids.append(self._make_leaf(leaf_indices))
        level = leaf_ids
        while len(level) > 1:
            level = self._pack_level(level)
        return level[0]

    def _make_leaf(self, indices: np.ndarray) -> int:
        records = [tuple(self._points[index]) for index in indices]
        box = Box.of_points(records)
        node = _RNode(True, box, points_array=DiskArray(self._store, records))
        self._nodes.append(node)
        return len(self._nodes) - 1

    def _pack_level(self, level: List[int]) -> List[int]:
        parents: List[int] = []
        for start in range(0, len(level), self._fanout):
            child_ids = level[start:start + self._fanout]
            lower = tuple(min(self._nodes[c].box.lower[axis] for c in child_ids)
                          for axis in range(self._dimension))
            upper = tuple(max(self._nodes[c].box.upper[axis] for c in child_ids)
                          for axis in range(self._dimension))
            box = Box(lower, upper)
            table_records = [(child, self._nodes[child].box.lower,
                              self._nodes[child].box.upper) for child in child_ids]
            node = _RNode(False, box,
                          child_table=DiskArray(self._store, table_records),
                          children=list(child_ids))
            self._nodes.append(node)
            parents.append(len(self._nodes) - 1)
        return parents

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def size(self) -> int:
        return self._num_points

    @property
    def last_nodes_visited(self) -> int:
        """Nodes visited by the most recent query."""
        return self._last_nodes_visited

    def query(self, constraint: LinearConstraint) -> List[Point]:
        """Report satisfying points by descending into crossed rectangles."""
        if constraint.dimension != self._dimension:
            raise ValueError("constraint dimension %d does not match data "
                             "dimension %d" % (constraint.dimension, self._dimension))
        if self._root is None:
            return []
        results: List[Point] = []
        self._last_nodes_visited = 0
        self._visit(self._root, constraint, results)
        return results

    def _visit(self, node_id: int, constraint: LinearConstraint,
               results: List[Point]) -> None:
        node = self._nodes[node_id]
        self._last_nodes_visited += 1
        if node.is_leaf:
            kernels.filter_constraint(node.points_array, constraint,
                                      out=results)
            return
        hyperplane = constraint.hyperplane
        for record in node.child_table.scan():
            child_id, lower, upper = record
            relation = Box(lower, upper).classify_halfspace(hyperplane)
            if relation is CellRelation.ABOVE:
                continue
            if relation is CellRelation.BELOW:
                self._report_subtree(child_id, results)
            else:
                self._visit(child_id, constraint, results)

    def _report_subtree(self, node_id: int, results: List[Point]) -> None:
        node = self._nodes[node_id]
        self._last_nodes_visited += 1
        if node.is_leaf:
            kernels.collect_records(node.points_array, out=results)
            return
        for record in node.child_table.scan():
            self._report_subtree(record[0], results)
