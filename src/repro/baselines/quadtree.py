"""An external bucket PR quad-tree (Section 1.2 baseline).

Each node covers a square region; leaves hold up to B points, internal
nodes have four children covering the quadrants.  Halfspace queries recurse
into every child whose square is crossed by the boundary line.  On
uniformly distributed points the expected cost is O(sqrt(n) + t) I/Os, but
on the diagonal input with a slightly rotated query line the boundary
crosses Ω(n) squares — the degradation the paper highlights.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core import kernels
from repro.core.interface import ExternalIndex, Point
from repro.geometry.boxes import Box, CellRelation
from repro.geometry.primitives import LinearConstraint
from repro.io.disk_array import DiskArray
from repro.io.store import BlockStore


class _QuadNode:
    __slots__ = ("is_leaf", "box", "points_array", "child_table", "children")

    def __init__(self, is_leaf, box, points_array=None, child_table=None,
                 children=None):
        self.is_leaf = is_leaf
        self.box = box
        self.points_array = points_array
        self.child_table = child_table
        self.children = children or []


class QuadTreeIndex(ExternalIndex):
    """Bucket PR quad-tree over the simulated disk (2-D points only)."""

    def __init__(self, points: Sequence[Sequence[float]],
                 store: Optional[BlockStore] = None,
                 block_size: int = 64,
                 leaf_capacity: Optional[int] = None,
                 max_depth: int = 32):
        super().__init__(store, block_size)
        points = np.asarray(points, dtype=float)
        if points.size == 0 and points.ndim != 2:
            points = points.reshape(0, 2)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("QuadTreeIndex expects points of shape (N, 2)")
        self._points = points
        self._num_points = len(points)
        self._leaf_capacity = leaf_capacity if leaf_capacity is not None else self.block_size
        self._max_depth = max_depth
        self._nodes: List[_QuadNode] = []
        self._last_nodes_visited = 0
        self._begin_space_accounting()
        if self._num_points:
            lo = points.min(axis=0)
            hi = points.max(axis=0)
            pad = 1e-9 + 1e-9 * float(np.abs(points).max())
            root_box = Box((float(lo[0]) - pad, float(lo[1]) - pad),
                           (float(hi[0]) + pad, float(hi[1]) + pad))
            self._root = self._build(np.arange(self._num_points), root_box, 0)
        else:
            self._root = None
        self._end_space_accounting()

    def _build(self, indices: np.ndarray, box: Box, depth: int) -> int:
        if len(indices) <= self._leaf_capacity or depth >= self._max_depth:
            records = [tuple(self._points[index]) for index in indices]
            node = _QuadNode(True, box, points_array=DiskArray(self._store, records))
            self._nodes.append(node)
            return len(self._nodes) - 1
        mid_x = (box.lower[0] + box.upper[0]) / 2.0
        mid_y = (box.lower[1] + box.upper[1]) / 2.0
        quadrant_boxes = [
            Box((box.lower[0], box.lower[1]), (mid_x, mid_y)),
            Box((mid_x, box.lower[1]), (box.upper[0], mid_y)),
            Box((box.lower[0], mid_y), (mid_x, box.upper[1])),
            Box((mid_x, mid_y), (box.upper[0], box.upper[1])),
        ]
        xs = self._points[indices, 0]
        ys = self._points[indices, 1]
        masks = [
            (xs <= mid_x) & (ys <= mid_y),
            (xs > mid_x) & (ys <= mid_y),
            (xs <= mid_x) & (ys > mid_y),
            (xs > mid_x) & (ys > mid_y),
        ]
        children = []
        table_records = []
        for quadrant_box, mask in zip(quadrant_boxes, masks):
            child_indices = indices[mask]
            child_id = self._build(child_indices, quadrant_box, depth + 1)
            children.append(child_id)
            table_records.append((child_id, quadrant_box.lower, quadrant_box.upper))
        node = _QuadNode(False, box,
                         child_table=DiskArray(self._store, table_records),
                         children=children)
        self._nodes.append(node)
        return len(self._nodes) - 1

    @property
    def dimension(self) -> int:
        return 2

    @property
    def size(self) -> int:
        return self._num_points

    @property
    def last_nodes_visited(self) -> int:
        """Nodes visited by the most recent query (the degradation metric)."""
        return self._last_nodes_visited

    def query(self, constraint: LinearConstraint) -> List[Point]:
        """Report satisfying points by recursing into crossed quadrants."""
        if constraint.dimension != 2:
            raise ValueError("QuadTreeIndex answers 2-D constraints only")
        if self._root is None:
            return []
        results: List[Point] = []
        self._last_nodes_visited = 0
        self._visit(self._root, constraint, results)
        return results

    def _visit(self, node_id: int, constraint: LinearConstraint,
               results: List[Point]) -> None:
        node = self._nodes[node_id]
        self._last_nodes_visited += 1
        if node.is_leaf:
            kernels.filter_constraint(node.points_array, constraint,
                                      out=results)
            return
        hyperplane = constraint.hyperplane
        for record in node.child_table.scan():
            child_id, lower, upper = record
            relation = Box(lower, upper).classify_halfspace(hyperplane)
            if relation is CellRelation.ABOVE:
                continue
            if relation is CellRelation.BELOW:
                self._report_subtree(child_id, results)
            else:
                self._visit(child_id, constraint, results)

    def _report_subtree(self, node_id: int, results: List[Point]) -> None:
        node = self._nodes[node_id]
        self._last_nodes_visited += 1
        if node.is_leaf:
            kernels.collect_records(node.points_array, out=results)
            return
        for record in node.child_table.scan():
            self._report_subtree(record[0], results)
