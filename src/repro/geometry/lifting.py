"""The paraboloid lifting behind the k-nearest-neighbour reduction.

Theorem 4.3 maps each planar point ``(a, b)`` to the plane
``z = a^2 + b^2 - 2 a x - 2 b y``; the k nearest neighbours of a query
``(p, q)`` are exactly the k lowest of these planes along the vertical line
through ``(p, q, 0)``, because the height of the lifted plane at ``(p, q)``
equals ``|pq|^2 - (p^2 + q^2)`` — a constant shift of the squared distance.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.geometry.primitives import Plane3


def lift_point(point: Sequence[float]) -> Plane3:
    """Lift a planar point ``(a, b)`` to its distance plane."""
    a, b = float(point[0]), float(point[1])
    return Plane3(a=-2.0 * a, b=-2.0 * b, c=a * a + b * b)


def lifted_height_is_shifted_squared_distance(point: Sequence[float],
                                              query: Sequence[float]) -> Tuple[float, float]:
    """Return (plane height at query, squared distance minus |query|^2).

    The two values are equal; the helper exists so the property tests can
    assert the identity the reduction relies on.
    """
    plane = lift_point(point)
    px, py = float(query[0]), float(query[1])
    height = plane.z_at(px, py)
    squared_distance = (point[0] - px) ** 2 + (point[1] - py) ** 2
    return height, squared_distance - (px * px + py * py)


def distance_from_height(height: float, query: Sequence[float]) -> float:
    """Recover the true distance from a lifted-plane height at ``query``."""
    px, py = float(query[0]), float(query[1])
    squared = height + px * px + py * py
    return math.sqrt(max(squared, 0.0))
