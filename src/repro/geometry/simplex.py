"""Simplices and simplex queries (Section 5, Remark i).

The paper defines a d-dimensional simplex as the intersection of ``d + 1``
halfspaces; the linear-size partition tree can report the points inside such
a simplex within the same I/O bound as a halfspace query.  This module
provides the simplex object used by that query path, including the
conservative cell-vs-simplex tests the traversal needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.boxes import Box


@dataclass(frozen=True)
class Halfspace:
    """A closed halfspace ``normal . x <= offset`` in R^d."""

    normal: Tuple[float, ...]
    offset: float

    def contains(self, point: Sequence[float], eps: float = 1e-9) -> bool:
        """True if ``point`` satisfies ``normal . x <= offset``."""
        value = sum(n * x for n, x in zip(self.normal, point))
        return value <= self.offset + eps

    def contains_many(self, points: np.ndarray,
                      eps: float = 1e-9) -> np.ndarray:
        """Vectorized :meth:`contains`: a boolean mask over the rows.

        Replays the scalar accumulation order (one coefficient at a
        time) so boundary points resolve identically to :meth:`contains`.
        """
        values = np.zeros(points.shape[0], dtype=np.float64)
        for index, coefficient in enumerate(self.normal):
            if index >= points.shape[1]:
                break
            values += coefficient * points[:, index]
        return values <= self.offset + eps

    def excludes_box(self, box: Box, eps: float = 1e-9) -> bool:
        """True if no point of ``box`` satisfies the halfspace (exact test).

        The minimum of ``normal . x`` over an axis-aligned box is attained
        corner-wise, so the test picks the minimising corner directly.
        """
        minimum = 0.0
        for coefficient, low, high in zip(self.normal, box.lower, box.upper):
            minimum += coefficient * (low if coefficient >= 0 else high)
        return minimum > self.offset + eps


@dataclass(frozen=True)
class Simplex:
    """A convex polytope given as an intersection of halfspaces.

    Despite the name the class accepts any number of halfspaces, so convex
    polytopes with more facets (the paper's Remark i triangulates them into
    simplices; we simply query with the polytope directly) work too.
    """

    halfspaces: Tuple[Halfspace, ...]

    @classmethod
    def from_vertices_2d(cls, vertices: Sequence[Tuple[float, float]]) -> "Simplex":
        """Build the simplex (convex polygon) spanned by 2-D ``vertices``.

        Vertices must be in counter-clockwise order; each edge contributes
        one halfspace.
        """
        if len(vertices) < 3:
            raise ValueError("a 2-D simplex needs at least 3 vertices")
        halfspaces: List[Halfspace] = []
        count = len(vertices)
        for index in range(count):
            ax, ay = vertices[index]
            bx, by = vertices[(index + 1) % count]
            # Inward side of the directed edge a->b for a CCW polygon is the
            # left side: (b-a) x (p-a) >= 0, i.e. -(by-ay)*px + (bx-ax)*py <= c.
            normal = (by - ay, -(bx - ax))
            offset = normal[0] * ax + normal[1] * ay
            halfspaces.append(Halfspace(normal=normal, offset=offset))
        return cls(tuple(halfspaces))

    @property
    def dimension(self) -> int:
        """Ambient dimension (taken from the first halfspace)."""
        return len(self.halfspaces[0].normal)

    def contains(self, point: Sequence[float], eps: float = 1e-9) -> bool:
        """True if ``point`` satisfies every halfspace."""
        return all(halfspace.contains(point, eps) for halfspace in self.halfspaces)

    def contains_many(self, points: np.ndarray,
                      eps: float = 1e-9) -> np.ndarray:
        """Vectorized :meth:`contains` over an ``(n, d)`` point matrix.

        Short-circuits the way the scalar ``all(...)`` does, but per
        batch: each facet is evaluated only on the rows still alive
        after the previous facets (cumulative masking), so later facets
        touch shrinking submatrices.
        """
        active = points
        indices = np.arange(points.shape[0])
        for halfspace in self.halfspaces:
            inside = halfspace.contains_many(active, eps)
            if not inside.all():
                indices = indices[inside]
                active = active[inside]
                if indices.size == 0:
                    break
        mask = np.zeros(points.shape[0], dtype=bool)
        mask[indices] = True
        return mask

    def contains_box(self, box: Box, eps: float = 1e-9) -> bool:
        """Exact test: every point of ``box`` lies inside the simplex."""
        return all(self.contains(corner, eps) for corner in box.corners())

    def certainly_disjoint_from_box(self, box: Box, eps: float = 1e-9) -> bool:
        """Conservative test: some facet halfspace excludes the whole box.

        True certifies disjointness; False means "maybe intersects" and the
        traversal recurses (correct, possibly slightly slower).
        """
        return any(halfspace.excludes_box(box, eps)
                   for halfspace in self.halfspaces)

    def filter(self, points: Sequence[Sequence[float]]) -> List[Sequence[float]]:
        """In-memory reference filter used by the tests."""
        return [point for point in points if self.contains(point)]
