"""Convex polygon utilities (clipping, area, triangulation).

Used to turn the cells of a plane-envelope minimisation diagram into
bounded convex polygons (clipped to a query domain) and to represent the
cells of the ham-sandwich partitioner.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

Point2 = Tuple[float, float]


def rectangle_polygon(xmin: float, xmax: float, ymin: float,
                      ymax: float) -> List[Point2]:
    """Counter-clockwise rectangle polygon for the given bounds."""
    if xmin >= xmax or ymin >= ymax:
        raise ValueError("degenerate rectangle [%r, %r] x [%r, %r]"
                         % (xmin, xmax, ymin, ymax))
    return [(xmin, ymin), (xmax, ymin), (xmax, ymax), (xmin, ymax)]


def clip_polygon_halfplane(polygon: Sequence[Point2], a: float, b: float,
                           c: float, eps: float = 1e-12) -> List[Point2]:
    """Clip a convex polygon to the halfplane ``a*x + b*y <= c``.

    Standard Sutherland–Hodgman step; returns the (possibly empty) clipped
    polygon with vertices in the original orientation.
    """
    if not polygon:
        return []
    result: List[Point2] = []
    count = len(polygon)
    for index in range(count):
        current = polygon[index]
        nxt = polygon[(index + 1) % count]
        current_inside = a * current[0] + b * current[1] <= c + eps
        next_inside = a * nxt[0] + b * nxt[1] <= c + eps
        if current_inside:
            result.append(current)
            if not next_inside:
                crossing = _halfplane_crossing(current, nxt, a, b, c)
                if crossing is not None:
                    result.append(crossing)
        elif next_inside:
            crossing = _halfplane_crossing(current, nxt, a, b, c)
            if crossing is not None:
                result.append(crossing)
    return _dedupe(result)


def _halfplane_crossing(p: Point2, q: Point2, a: float, b: float,
                        c: float) -> Optional[Point2]:
    fp = a * p[0] + b * p[1] - c
    fq = a * q[0] + b * q[1] - c
    denom = fp - fq
    if abs(denom) < 1e-300:
        return None
    t = fp / denom
    t = min(max(t, 0.0), 1.0)
    return (p[0] + t * (q[0] - p[0]), p[1] + t * (q[1] - p[1]))


def _dedupe(polygon: List[Point2], eps: float = 1e-12) -> List[Point2]:
    """Remove consecutive (near-)duplicate vertices."""
    if not polygon:
        return []
    cleaned: List[Point2] = []
    for vertex in polygon:
        if cleaned and abs(vertex[0] - cleaned[-1][0]) <= eps \
                and abs(vertex[1] - cleaned[-1][1]) <= eps:
            continue
        cleaned.append(vertex)
    while len(cleaned) > 1 and abs(cleaned[0][0] - cleaned[-1][0]) <= eps \
            and abs(cleaned[0][1] - cleaned[-1][1]) <= eps:
        cleaned.pop()
    return cleaned


def polygon_area(polygon: Sequence[Point2]) -> float:
    """Unsigned area of a simple polygon (shoelace formula)."""
    if len(polygon) < 3:
        return 0.0
    total = 0.0
    count = len(polygon)
    for index in range(count):
        x1, y1 = polygon[index]
        x2, y2 = polygon[(index + 1) % count]
        total += x1 * y2 - x2 * y1
    return abs(total) / 2.0


def fan_triangulate(polygon: Sequence[Point2]) -> List[Tuple[Point2, Point2, Point2]]:
    """Triangulate a convex polygon by fanning from its first vertex."""
    if len(polygon) < 3:
        return []
    triangles = []
    for index in range(1, len(polygon) - 1):
        triangles.append((polygon[0], polygon[index], polygon[index + 1]))
    return triangles


def polygon_contains(polygon: Sequence[Point2], x: float, y: float,
                     eps: float = 1e-9) -> bool:
    """True if the convex polygon (CCW or CW) contains ``(x, y)``."""
    if len(polygon) < 3:
        return False
    sign = 0
    count = len(polygon)
    for index in range(count):
        x1, y1 = polygon[index]
        x2, y2 = polygon[(index + 1) % count]
        cross = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1)
        if cross > eps:
            current = 1
        elif cross < -eps:
            current = -1
        else:
            continue
        if sign == 0:
            sign = current
        elif sign != current:
            return False
    return True


def polygon_centroid(polygon: Sequence[Point2]) -> Point2:
    """Arithmetic mean of the polygon vertices (inside a convex polygon)."""
    if not polygon:
        raise ValueError("centroid of an empty polygon is undefined")
    sx = sum(p[0] for p in polygon)
    sy = sum(p[1] for p in polygon)
    return (sx / len(polygon), sy / len(polygon))
