"""Envelopes of lines in the plane.

The lower envelope of a set of lines is its 0-level (Section 2.3); it is the
graph of the pointwise minimum, a concave piecewise-linear function.  These
helpers are used by the test-suite to cross-check the generic k-level walk
of :mod:`repro.geometry.arrangement2d` (the 0-level of both must agree) and
by the ham-sandwich partitioner.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry.primitives import Line2


def lower_envelope(lines: Sequence[Line2]) -> List[Tuple[int, float, float]]:
    """Compute the lower envelope of ``lines``.

    Returns a list of ``(line_index, x_from, x_to)`` triples, ordered left to
    right, describing which input line realises the minimum on each maximal
    x-interval.  ``x_from`` of the first entry is ``-inf`` and ``x_to`` of
    the last is ``+inf``.
    """
    return _envelope(lines, lower=True)


def upper_envelope(lines: Sequence[Line2]) -> List[Tuple[int, float, float]]:
    """Compute the upper envelope (pointwise maximum) of ``lines``."""
    return _envelope(lines, lower=False)


def envelope_value(envelope: List[Tuple[int, float, float]],
                   lines: Sequence[Line2], x: float) -> float:
    """Evaluate an envelope (as returned above) at abscissa ``x``."""
    for line_index, x_from, x_to in envelope:
        if x_from <= x <= x_to:
            return lines[line_index].y_at(x)
    raise ValueError("abscissa %r not covered by the envelope" % x)


def _envelope(lines: Sequence[Line2], lower: bool) -> List[Tuple[int, float, float]]:
    if not lines:
        return []
    # Sort by slope; for the lower envelope, among equal slopes only the one
    # with the smallest intercept can ever appear (largest for the upper).
    order = sorted(range(len(lines)),
                   key=lambda i: (lines[i].slope,
                                  lines[i].intercept if lower else -lines[i].intercept))
    filtered: List[int] = []
    for index in order:
        if filtered and abs(lines[filtered[-1]].slope - lines[index].slope) < 1e-15:
            continue
        filtered.append(index)
    if lower:
        # For the lower envelope, process slopes in decreasing order: the line
        # with the largest slope is lowest at x = -inf.
        filtered.reverse()
    # Incremental stack construction: maintain the envelope as a sequence of
    # line indices with the breakpoints between consecutive ones increasing.
    stack: List[int] = []
    breakpoints: List[float] = []  # breakpoints[i] = x where stack[i] hands over to stack[i+1]
    for index in filtered:
        line = lines[index]
        while stack:
            x_cross = lines[stack[-1]].intersection_x(line)
            if breakpoints and x_cross <= breakpoints[-1] + 1e-15:
                # The current top never realises the envelope once ``line``
                # arrives: drop it and try against the new top.
                stack.pop()
                breakpoints.pop()
            else:
                breakpoints.append(x_cross)
                break
        stack.append(index)
    result: List[Tuple[int, float, float]] = []
    for position, index in enumerate(stack):
        x_from = float("-inf") if position == 0 else breakpoints[position - 1]
        x_to = float("inf") if position == len(stack) - 1 else breakpoints[position]
        result.append((index, x_from, x_to))
    return result


def lines_strictly_below(lines: Sequence[Line2], x: float, y: float,
                         eps: float = 1e-9) -> List[int]:
    """Indices of the lines passing strictly below the point ``(x, y)``."""
    return [i for i, line in enumerate(lines) if line.y_at(x) < y - eps]


def lines_strictly_above(lines: Sequence[Line2], x: float, y: float,
                         eps: float = 1e-9) -> List[int]:
    """Indices of the lines passing strictly above the point ``(x, y)``."""
    return [i for i, line in enumerate(lines) if line.y_at(x) > y + eps]
