"""Axis-aligned boxes used as partition cells by the partition trees.

Matoušek's Theorem 5.1 only requires, of the cells of a simplicial
partition, that (a) each cell contains its subset of points and (b) few
cells are *crossed* by any query hyperplane.  The partition trees of
Sections 5 and 6 therefore work with any cell type exposing a
``classify(hyperplane)`` test; this module provides axis-aligned boxes (the
cells produced by the median-cut partitioner) and the classification logic
against hyperplanes and simplices.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from itertools import product
from typing import Sequence, Tuple

from repro.geometry.primitives import EPS, Hyperplane


class CellRelation(Enum):
    """How a cell relates to the halfspace below a query hyperplane."""

    BELOW = "below"      # every point of the cell satisfies the constraint
    ABOVE = "above"      # no point of the cell satisfies the constraint
    CROSSES = "crosses"  # the hyperplane intersects the cell


@dataclass(frozen=True)
class Box:
    """A closed axis-aligned box ``[lower_i, upper_i]`` in R^d."""

    lower: Tuple[float, ...]
    upper: Tuple[float, ...]

    def __post_init__(self):
        if len(self.lower) != len(self.upper):
            raise ValueError("lower and upper corners have different dimensions")
        for low, high in zip(self.lower, self.upper):
            if low > high:
                raise ValueError("box has lower > upper: %r > %r" % (low, high))

    @property
    def dimension(self) -> int:
        """Ambient dimension d."""
        return len(self.lower)

    @classmethod
    def of_points(cls, points: Sequence[Sequence[float]]) -> "Box":
        """The bounding box of a non-empty point set."""
        if not points:
            raise ValueError("bounding box of an empty point set is undefined")
        dimension = len(points[0])
        lower = tuple(min(p[axis] for p in points) for axis in range(dimension))
        upper = tuple(max(p[axis] for p in points) for axis in range(dimension))
        return cls(lower, upper)

    def contains(self, point: Sequence[float], eps: float = EPS) -> bool:
        """True if ``point`` lies inside the (closed) box."""
        return all(low - eps <= coordinate <= high + eps
                   for low, coordinate, high in zip(self.lower, point, self.upper))

    def corners(self) -> list:
        """All 2^d corner points of the box."""
        axes = [(low, high) for low, high in zip(self.lower, self.upper)]
        return [tuple(choice) for choice in product(*axes)]

    def extent(self, axis: int) -> float:
        """Side length along ``axis``."""
        return self.upper[axis] - self.lower[axis]

    def widest_axis(self) -> int:
        """The axis along which the box is widest."""
        return max(range(self.dimension), key=self.extent)

    def classify_halfspace(self, hyperplane: Hyperplane,
                           eps: float = EPS) -> CellRelation:
        """Relate the box to the halfspace on or below ``hyperplane``.

        Because the constraint ``x_d <= h(x_1..x_{d-1})`` is linear, its
        extrema over the box are attained at corners, so checking the 2^d
        corners is exact.
        """
        below_any = False
        above_any = False
        for corner in self.corners():
            if hyperplane.point_below(corner, eps):
                below_any = True
            else:
                above_any = True
            if below_any and above_any:
                return CellRelation.CROSSES
        return CellRelation.BELOW if below_any else CellRelation.ABOVE

    def disjoint_from_halfspaces(self, halfspaces: Sequence[Hyperplane],
                                 eps: float = EPS) -> bool:
        """Conservative test: the box misses the intersection of halfspaces.

        True is returned when some halfspace excludes the whole box, which
        certifies emptiness; False means "maybe intersects".  Used by the
        simplex-query traversal of Section 5 (Remark i).
        """
        for hyperplane in halfspaces:
            if self.classify_halfspace(hyperplane, eps) is CellRelation.ABOVE:
                return True
        return False

    def split(self, axis: int, value: float) -> Tuple["Box", "Box"]:
        """Split the box at ``value`` along ``axis`` into (lower, upper) halves."""
        if not self.lower[axis] <= value <= self.upper[axis]:
            raise ValueError("split value %r outside box extent on axis %d"
                             % (value, axis))
        upper_of_low = list(self.upper)
        upper_of_low[axis] = value
        lower_of_high = list(self.lower)
        lower_of_high[axis] = value
        return (Box(self.lower, tuple(upper_of_low)),
                Box(tuple(lower_of_high), self.upper))

    def volume(self) -> float:
        """Product of the side lengths."""
        result = 1.0
        for axis in range(self.dimension):
            result *= self.extent(axis)
        return result

    def __repr__(self) -> str:
        return "Box(%s)" % " x ".join("[%.4g, %.4g]" % (low, high)
                                       for low, high in zip(self.lower, self.upper))
