"""Basic geometric predicates (orientation and above/below tests).

All predicates take an explicit tolerance so callers can trade robustness
for strictness; the defaults are appropriate for the double-precision random
workloads used in the benchmarks.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.geometry.primitives import EPS, Hyperplane, Line2, Plane3


def orientation(p: Sequence[float], q: Sequence[float], r: Sequence[float],
                eps: float = EPS) -> int:
    """Orientation of the ordered triple ``p, q, r`` in the plane.

    Returns +1 for a counter-clockwise turn, -1 for clockwise and 0 for
    (numerically) collinear points.
    """
    cross = (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])
    if cross > eps:
        return 1
    if cross < -eps:
        return -1
    return 0


def point_below_line(point: Sequence[float], line: Line2,
                     eps: float = EPS) -> bool:
    """True if ``point`` lies strictly below ``line``."""
    return point[1] < line.y_at(point[0]) - eps


def point_above_line(point: Sequence[float], line: Line2,
                     eps: float = EPS) -> bool:
    """True if ``point`` lies strictly above ``line``."""
    return point[1] > line.y_at(point[0]) + eps


def line_below_point(line: Line2, point: Sequence[float],
                     eps: float = EPS) -> bool:
    """True if ``line`` passes strictly below ``point`` (the dual-query test)."""
    return line.y_at(point[0]) < point[1] - eps


def point_below_plane(point: Sequence[float], plane: Plane3,
                      eps: float = EPS) -> bool:
    """True if the 3-D ``point`` lies strictly below ``plane``."""
    return point[2] < plane.z_at(point[0], point[1]) - eps


def plane_below_point(plane: Plane3, point: Sequence[float],
                      eps: float = EPS) -> bool:
    """True if ``plane`` passes strictly below the 3-D ``point``."""
    return plane.z_at(point[0], point[1]) < point[2] - eps


def point_below_hyperplane(point: Sequence[float], hyperplane: Hyperplane,
                           eps: float = EPS) -> bool:
    """True if ``point`` lies strictly below ``hyperplane`` (any dimension)."""
    return point[-1] < hyperplane.height_at(point) - eps


def point_on_or_below_hyperplane(point: Sequence[float],
                                 hyperplane: Hyperplane,
                                 eps: float = EPS) -> bool:
    """True if ``point`` lies on or below ``hyperplane``.

    This is the reporting condition of the paper's query (points satisfying
    the linear constraint).
    """
    return point[-1] <= hyperplane.height_at(point) + eps


def segment_intersects_vertical(x: float,
                                p: Sequence[float],
                                q: Sequence[float],
                                eps: float = EPS) -> bool:
    """True if the segment ``pq`` crosses the vertical line at ``x``."""
    lo, hi = (p[0], q[0]) if p[0] <= q[0] else (q[0], p[0])
    return lo - eps <= x <= hi + eps


def point_in_triangle(point: Sequence[float],
                      a: Sequence[float],
                      b: Sequence[float],
                      c: Sequence[float],
                      eps: float = 1e-9) -> bool:
    """True if ``point`` lies inside (or on the boundary of) triangle ``abc``."""
    d1 = orientation(point, a, b, eps)
    d2 = orientation(point, b, c, eps)
    d3 = orientation(point, c, a, eps)
    has_neg = (d1 < 0) or (d2 < 0) or (d3 < 0)
    has_pos = (d1 > 0) or (d2 > 0) or (d3 > 0)
    return not (has_neg and has_pos)


def triangle_area(a: Sequence[float], b: Sequence[float],
                  c: Sequence[float]) -> float:
    """Unsigned area of triangle ``abc``."""
    return abs((b[0] - a[0]) * (c[1] - a[1])
               - (b[1] - a[1]) * (c[0] - a[0])) / 2.0


def bounding_box(points: Sequence[Sequence[float]]) -> Tuple[Tuple[float, ...],
                                                              Tuple[float, ...]]:
    """Axis-aligned bounding box ``(lower_corner, upper_corner)`` of ``points``."""
    if not points:
        raise ValueError("bounding_box of an empty point set is undefined")
    dimension = len(points[0])
    lower = [min(p[axis] for p in points) for axis in range(dimension)]
    upper = [max(p[axis] for p in points) for axis in range(dimension)]
    return tuple(lower), tuple(upper)
