"""Geometric primitives: lines, planes, hyperplanes and linear constraints.

The paper phrases queries as *linear constraints*
``x_d <= a_0 + sum_i a_i x_i`` over points in R^d; geometrically this asks
for the points on or below a non-vertical hyperplane.  The primitives here
use the same explicit ("non-vertical") representation, which is also what
the duality transform of Section 2.1 expects:

* :class:`Line2` — ``y = slope * x + intercept``.
* :class:`Plane3` — ``z = a * x + b * y + c``.
* :class:`Hyperplane` — ``x_d = coeffs . (x_1 .. x_{d-1}) + offset``.
* :class:`LinearConstraint` — the query object of the public API; wraps a
  hyperplane together with the direction of the inequality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

#: Tolerance used by strict above/below comparisons throughout the library.
EPS = 1e-9


@dataclass(frozen=True)
class Line2:
    """A non-vertical line ``y = slope * x + intercept`` in the plane."""

    slope: float
    intercept: float

    def y_at(self, x: float) -> float:
        """The line's y-coordinate at abscissa ``x``."""
        return self.slope * x + self.intercept

    def is_below_point(self, x: float, y: float, eps: float = EPS) -> bool:
        """True if the line passes strictly below the point ``(x, y)``."""
        return self.y_at(x) < y - eps

    def is_above_point(self, x: float, y: float, eps: float = EPS) -> bool:
        """True if the line passes strictly above the point ``(x, y)``."""
        return self.y_at(x) > y + eps

    def passes_through(self, x: float, y: float, eps: float = 1e-7) -> bool:
        """True if ``(x, y)`` lies on the line (within tolerance)."""
        return abs(self.y_at(x) - y) <= eps

    def intersection_x(self, other: "Line2") -> float:
        """The x-coordinate where this line meets ``other``.

        Returns ``math.inf`` for parallel lines (no finite intersection).
        """
        denominator = self.slope - other.slope
        if abs(denominator) < 1e-15:
            return math.inf
        return (other.intercept - self.intercept) / denominator

    def intersection(self, other: "Line2") -> Tuple[float, float]:
        """The intersection point with ``other`` (x may be ``inf``)."""
        x = self.intersection_x(other)
        if math.isinf(x):
            return (x, math.inf)
        return (x, self.y_at(x))

    def __repr__(self) -> str:
        return "Line2(y = %.6g*x + %.6g)" % (self.slope, self.intercept)


@dataclass(frozen=True)
class Plane3:
    """A non-vertical plane ``z = a * x + b * y + c`` in R^3."""

    a: float
    b: float
    c: float

    def z_at(self, x: float, y: float) -> float:
        """The plane's height above the point ``(x, y)``."""
        return self.a * x + self.b * y + self.c

    def is_below_point(self, x: float, y: float, z: float,
                       eps: float = EPS) -> bool:
        """True if the plane passes strictly below the point ``(x, y, z)``."""
        return self.z_at(x, y) < z - eps

    def is_above_point(self, x: float, y: float, z: float,
                       eps: float = EPS) -> bool:
        """True if the plane passes strictly above the point ``(x, y, z)``."""
        return self.z_at(x, y) > z + eps

    def coefficients(self) -> Tuple[float, float, float]:
        """The ``(a, b, c)`` triple (used by the dual-hull computations)."""
        return (self.a, self.b, self.c)

    def __repr__(self) -> str:
        return "Plane3(z = %.6g*x + %.6g*y + %.6g)" % (self.a, self.b, self.c)


@dataclass(frozen=True)
class Hyperplane:
    """A non-vertical hyperplane ``x_d = coeffs . (x_1..x_{d-1}) + offset``."""

    coeffs: Tuple[float, ...]
    offset: float

    @property
    def dimension(self) -> int:
        """Ambient dimension d (one more than the number of coefficients)."""
        return len(self.coeffs) + 1

    def height_at(self, point: Sequence[float]) -> float:
        """The hyperplane's x_d value above the first d-1 coordinates of ``point``."""
        return sum(c * x for c, x in zip(self.coeffs, point)) + self.offset

    def is_below_point(self, point: Sequence[float], eps: float = EPS) -> bool:
        """True if the hyperplane passes strictly below ``point``."""
        return self.height_at(point) < point[-1] - eps

    def point_below(self, point: Sequence[float], eps: float = EPS) -> bool:
        """True if ``point`` lies on or below the hyperplane.

        This is the containment test of the paper's query: report all points
        ``p`` with ``p_d <= a_0 + sum a_i p_i``.
        """
        return point[-1] <= self.height_at(point) + eps

    def height_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`height_at` over an ``(n, d)`` point matrix.

        Accumulates one coefficient at a time, in coefficient order, so
        every row reproduces the scalar left-to-right fold
        ``sum(c * x for ...)`` bit for bit (a BLAS dot product may round
        differently and flip points sitting exactly on the boundary).
        """
        heights = np.full(points.shape[0], self.offset, dtype=np.float64)
        total = np.zeros(points.shape[0], dtype=np.float64)
        for index, coefficient in enumerate(self.coeffs):
            total += coefficient * points[:, index]
        heights += total
        return heights

    def point_below_many(self, points: np.ndarray,
                         eps: float = EPS) -> np.ndarray:
        """Vectorized :meth:`point_below`: a boolean mask over the rows."""
        return points[:, -1] <= self.height_many(points) + eps

    def as_line2(self) -> Line2:
        """View a 2-D hyperplane as a :class:`Line2`."""
        if self.dimension != 2:
            raise ValueError("hyperplane has dimension %d, expected 2"
                             % self.dimension)
        return Line2(self.coeffs[0], self.offset)

    def as_plane3(self) -> Plane3:
        """View a 3-D hyperplane as a :class:`Plane3`."""
        if self.dimension != 3:
            raise ValueError("hyperplane has dimension %d, expected 3"
                             % self.dimension)
        return Plane3(self.coeffs[0], self.coeffs[1], self.offset)

    def __repr__(self) -> str:
        terms = " + ".join("%.4g*x%d" % (c, i + 1)
                           for i, c in enumerate(self.coeffs))
        return "Hyperplane(x%d = %s + %.4g)" % (self.dimension, terms, self.offset)


@dataclass(frozen=True)
class LinearConstraint:
    """A linear-constraint query ``x_d <= a_0 + sum_{i<d} a_i x_i``.

    This is the public query object of the library (the paper's Section 1.1
    problem statement).  ``LinearConstraint.below(point)`` decides whether a
    point satisfies the constraint; the indexes in :mod:`repro.core` report
    all stored points that do.

    The convenience constructor :meth:`from_inequality` accepts the general
    form ``sum_i c_i x_i <= rhs`` as long as the coefficient of the last
    coordinate is non-zero (the constraint is then normalised so that the
    last coordinate is isolated, flipping the inequality if needed).
    """

    coeffs: Tuple[float, ...]
    offset: float

    @classmethod
    def from_inequality(cls, coefficients: Sequence[float],
                        rhs: float) -> "LinearConstraint":
        """Normalise ``sum_i c_i x_i <= rhs`` into the paper's query form."""
        coefficients = tuple(float(c) for c in coefficients)
        if not coefficients:
            raise ValueError("a constraint needs at least one coefficient")
        last = coefficients[-1]
        if abs(last) < 1e-15:
            raise ValueError(
                "the coefficient of the last coordinate must be non-zero; "
                "rotate the coordinate frame or restate the constraint")
        if last < 0:
            # c_d < 0: dividing flips the inequality into x_d >= ..., which we
            # turn back into <= by negating the point set's last axis.  To keep
            # the library simple we instead reject and ask the caller to flip.
            raise ValueError(
                "constraints of the form x_d >= ... are 'upper' halfspaces; "
                "negate all coefficients and the right-hand side to query the "
                "complementary halfspace, or negate the data's last axis")
        scaled = tuple(-c / last for c in coefficients[:-1])
        return cls(coeffs=scaled, offset=rhs / last)

    @property
    def dimension(self) -> int:
        """Ambient dimension of the constraint."""
        return len(self.coeffs) + 1

    @property
    def hyperplane(self) -> Hyperplane:
        """The boundary hyperplane ``x_d = a_0 + sum a_i x_i``."""
        return Hyperplane(self.coeffs, self.offset)

    def below(self, point: Sequence[float], eps: float = EPS) -> bool:
        """True if ``point`` satisfies the constraint (lies on/below the plane)."""
        return self.hyperplane.point_below(point, eps)

    def filter(self, points) -> list:
        """Return the subset of ``points`` satisfying the constraint.

        This in-memory helper is the ground truth the test-suite compares
        every index against.
        """
        return [p for p in points if self.below(p)]

    def below_many(self, points: np.ndarray, eps: float = EPS) -> np.ndarray:
        """Vectorized :meth:`below`: a boolean mask over an ``(n, d)`` matrix.

        Guaranteed to agree with per-point :meth:`below` on every row,
        including points exactly on the boundary hyperplane: the fold
        below replays the scalar ``sum(c * x for ...) + offset`` one
        coefficient at a time (a BLAS dot product may round differently
        and flip boundary points).  Inlined rather than delegated to
        :meth:`Hyperplane.point_below_many` — this runs once per scanned
        block, where constructing a throwaway Hyperplane and the extra
        temporaries measurably slow the hot path.
        """
        total = np.zeros(points.shape[0], dtype=np.float64)
        for index, coefficient in enumerate(self.coeffs):
            total += coefficient * points[:, index]
        total += self.offset
        total += eps
        return points[:, -1] <= total

    def filter_many(self, points: np.ndarray,
                    eps: float = EPS) -> np.ndarray:
        """The rows of ``points`` satisfying the constraint (a submatrix)."""
        return points[self.below_many(points, eps)]

    def __repr__(self) -> str:
        terms = " + ".join("%.4g*x%d" % (c, i + 1)
                           for i, c in enumerate(self.coeffs))
        return "LinearConstraint(x%d <= %s + %.4g)" % (
            self.dimension, terms, self.offset)
