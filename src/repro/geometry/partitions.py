"""Balanced simplicial partitions (the Theorem 5.1 interface).

Matoušek's theorem guarantees, for any point set S and parameter r, a
*balanced simplicial partition* ``{(S_1, Δ_1), ..., (S_r, Δ_r)}`` — disjoint
subsets of roughly equal size, each enclosed in a simplex — such that any
hyperplane crosses only O(r^{1-1/d}) simplices.  The partition trees of
Sections 5 and 6 use nothing else about the construction.

Two partitioners are provided:

* :func:`median_cut_partition` — recursive median splits along alternating
  axes, producing axis-aligned boxes.  A hyperplane crosses O(r^{1-1/d})
  cells of such a grid-like partition, which is the property Theorem 5.1 is
  used for; this is the default (and the substitution documented in
  DESIGN.md).
* :func:`ham_sandwich_partition` (2-D only, in :mod:`repro.geometry.hamsandwich`)
  — Willard-style partitions by ham-sandwich cuts, used by the ablation
  benchmark.

Both return :class:`PartitionCell` objects pairing a point subset with a
cell that supports the classification tests the trees need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.boxes import Box, CellRelation
from repro.geometry.primitives import Hyperplane


@dataclass
class PartitionCell:
    """One pair ``(S_i, Δ_i)`` of a simplicial partition.

    ``indices`` are positions into the original point array, so callers can
    keep a single copy of the data and address subsets by index.
    """

    indices: np.ndarray
    cell: Box

    @property
    def size(self) -> int:
        """Number of points assigned to the cell."""
        return int(len(self.indices))


def median_cut_partition(points: np.ndarray, r: int,
                         indices: Optional[np.ndarray] = None
                         ) -> List[PartitionCell]:
    """Partition ``points`` into at most ``r`` balanced box cells.

    The split tree halves the current subset at the median of its widest
    axis until ``r`` leaves exist; each leaf yields one cell whose box is the
    bounding box of its points.  Subset sizes differ by at most a factor of
    two, as required by the definition of a *balanced* partition.
    """
    if r < 1:
        raise ValueError("partition size r must be >= 1, got %r" % r)
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array of shape (N, d)")
    if indices is None:
        indices = np.arange(len(points))
    if len(indices) == 0:
        return []
    pieces: List[np.ndarray] = [indices]
    # Repeatedly split the largest piece until we have r pieces (or pieces of
    # size one).  Splitting the largest first keeps the partition balanced.
    while len(pieces) < r:
        largest_position = max(range(len(pieces)), key=lambda i: len(pieces[i]))
        largest = pieces[largest_position]
        if len(largest) <= 1:
            break
        first_half, second_half = _median_split(points, largest)
        pieces[largest_position] = first_half
        pieces.append(second_half)
    cells: List[PartitionCell] = []
    for piece in pieces:
        if len(piece) == 0:
            continue
        box = Box.of_points(points[piece].tolist())
        cells.append(PartitionCell(indices=piece, cell=box))
    return cells


def _median_split(points: np.ndarray,
                  indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``indices`` at the median of the widest axis of their spread."""
    subset = points[indices]
    spreads = subset.max(axis=0) - subset.min(axis=0)
    axis = int(np.argmax(spreads))
    order = np.argsort(subset[:, axis], kind="mergesort")
    middle = len(order) // 2
    return indices[order[:middle]], indices[order[middle:]]


def crossing_number(cells: Sequence[PartitionCell],
                    hyperplane: Hyperplane) -> int:
    """Number of cells crossed by ``hyperplane`` (the Theorem 5.1 quantity)."""
    return sum(1 for cell in cells
               if cell.cell.classify_halfspace(hyperplane) is CellRelation.CROSSES)


def max_crossing_number(cells: Sequence[PartitionCell],
                        hyperplanes: Sequence[Hyperplane]) -> int:
    """Maximum crossing number over a family of query hyperplanes."""
    return max((crossing_number(cells, hyperplane) for hyperplane in hyperplanes),
               default=0)


def is_balanced(cells: Sequence[PartitionCell], total: int,
                slack: float = 2.0) -> bool:
    """Check the balance condition ``N/r <= |S_i| <= slack * N/r`` loosely.

    Cells created from very small subsets (fewer points than cells) are
    exempt, mirroring the way the partition trees only request partitions of
    subsets with many more points than the fan-out.
    """
    if not cells:
        return True
    r = len(cells)
    target = total / r
    for cell in cells:
        if cell.size > slack * target + 1:
            return False
    return True
