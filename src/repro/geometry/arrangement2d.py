"""k-levels of arrangements of lines in the plane (Section 2.3).

The k-level ``A_k(L)`` of a set ``L`` of lines is the closure of the points
that lie strictly above exactly ``k`` lines of ``L``; it is an x-monotone
polygonal chain.  The optimal 2-D structure of Section 3 repeatedly computes
a (random) level with ``k`` around ``B log_B n`` and compresses it into a
greedy clustering.

This module walks a level from left to right, reporting its vertices.  At
each vertex the walk records whether it is *convex* (downward — the level's
slope increases and one line drops strictly below the level, Lemma 3.2's
"add the minimum-slope line" event) or *concave* (upward — nothing enters
the region below the level).  The walk is vectorised with numpy so that
levels of tens of thousands of lines can be traversed in seconds; the paper
instead uses the Edelsbrunner–Welzl sweep [22], a substitution documented in
DESIGN.md that affects construction time only, never query I/Os.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.geometry.primitives import Line2

#: Relative tolerance used when grouping concurrent lines at a level vertex.
_VERTEX_EPS = 1e-9


@dataclass
class LevelVertex:
    """One vertex of a k-level.

    ``entering_lines`` are the lines that are strictly below the level just
    to the right of the vertex but were not strictly below it just to the
    left — exactly the lines the greedy clustering of Lemma 3.2 may have to
    add when it sweeps past this vertex.  They are non-empty only at convex
    vertices.
    """

    x: float
    y: float
    line_before: int
    line_after: int
    is_convex: bool
    entering_lines: List[int] = field(default_factory=list)


@dataclass
class Level:
    """The k-level of an arrangement of lines, as an x-monotone chain."""

    k: int
    lines: Sequence[Line2]
    initial_line: int
    vertices: List[LevelVertex]

    @property
    def complexity(self) -> int:
        """Number of vertices of the level (the paper's |Λ|)."""
        return len(self.vertices)

    def line_at(self, x: float) -> int:
        """Index of the line realising the level at abscissa ``x``."""
        current = self.initial_line
        for vertex in self.vertices:
            if vertex.x > x:
                break
            current = vertex.line_after
        return current

    def y_at(self, x: float) -> float:
        """Height of the level at abscissa ``x``."""
        return self.lines[self.line_at(x)].y_at(x)

    def sample_point_before_first_vertex(self) -> float:
        """An abscissa strictly to the left of every vertex of the level."""
        if not self.vertices:
            return 0.0
        return self.vertices[0].x - 1.0


def level_of_point(lines: Sequence[Line2], x: float, y: float,
                   eps: float = _VERTEX_EPS) -> int:
    """Number of lines strictly below the point ``(x, y)`` (its *level*)."""
    return sum(1 for line in lines if line.y_at(x) < y - eps)


def compute_level(lines: Sequence[Line2], k: int) -> Level:
    """Walk the k-level of ``lines`` from left to right.

    ``k`` counts lines strictly below, so ``k = 0`` is the lower envelope.
    Raises :class:`ValueError` unless ``0 <= k < len(lines)``.
    """
    count = len(lines)
    if not 0 <= k < count:
        raise ValueError("level index k=%d out of range for %d lines" % (k, count))
    slopes = np.array([line.slope for line in lines], dtype=float)
    intercepts = np.array([line.intercept for line in lines], dtype=float)

    # At x = -infinity the lines are ordered bottom-to-top by decreasing
    # slope (ties broken by intercept), so the line with exactly k lines
    # below it is the one of rank k in that order.
    order = sorted(range(count),
                   key=lambda i: (-lines[i].slope, lines[i].intercept))
    current = order[k]
    current_x = -math.inf

    vertices: List[LevelVertex] = []
    initial_line = current

    while True:
        step = _next_vertex(lines, slopes, intercepts, k, current, current_x)
        if step is None:
            break
        vertex, new_current = step
        vertices.append(vertex)
        current = new_current
        current_x = vertex.x
        if len(vertices) > 4 * count * count:
            raise RuntimeError(
                "level walk did not terminate; the input is too degenerate "
                "for the floating-point tolerances in use")
    return Level(k=k, lines=lines, initial_line=initial_line, vertices=vertices)


def _next_vertex(lines: Sequence[Line2], slopes: np.ndarray,
                 intercepts: np.ndarray, k: int, current: int,
                 current_x: float):
    """Advance the walk by one vertex; return (vertex, next line) or None."""
    count = len(lines)
    slope_cur = slopes[current]
    intercept_cur = intercepts[current]
    with np.errstate(divide="ignore", invalid="ignore"):
        denom = slope_cur - slopes
        cross_x = (intercepts - intercept_cur) / denom
    cross_x[current] = np.inf
    cross_x[np.abs(denom) < 1e-15] = np.inf
    # Only crossings strictly to the right of the current position matter.
    if math.isinf(current_x):
        candidates = cross_x
    else:
        scale = max(1.0, abs(current_x))
        candidates = np.where(cross_x > current_x + _VERTEX_EPS * scale,
                              cross_x, np.inf)
    next_x = float(np.min(candidates))
    if math.isinf(next_x):
        return None
    next_y = float(lines[current].y_at(next_x))

    # Gather every line passing through the vertex (handles concurrences).
    heights = slopes * next_x + intercepts
    tolerance = _VERTEX_EPS * max(1.0, abs(next_y), abs(next_x))
    through = np.nonzero(np.abs(heights - next_y) <= tolerance)[0]
    below_outside = int(np.sum(heights < next_y - tolerance))

    # Just to the right of the vertex the concurrent lines are ordered
    # bottom-to-top by increasing slope; the level continues on the one with
    # exactly k lines below it overall.
    through_sorted = sorted(through.tolist(), key=lambda i: (slopes[i], intercepts[i]))
    rank = k - below_outside
    if rank < 0:
        rank = 0
    if rank >= len(through_sorted):
        rank = len(through_sorted) - 1
    new_current = through_sorted[rank]

    # Lines of the bundle that are strictly below the level just right of the
    # vertex but were not strictly below it just left of it.  To the left the
    # bundle is ordered bottom-to-top by *decreasing* slope, and the lines
    # strictly below the old level line are those with a larger slope.
    before_slope = slopes[current]
    after_slope = slopes[new_current]
    entering = [i for i in through_sorted
                if slopes[i] < after_slope - 1e-15
                and slopes[i] <= before_slope + 1e-15]
    is_convex = after_slope > before_slope + 1e-15

    vertex = LevelVertex(
        x=next_x,
        y=next_y,
        line_before=current,
        line_after=new_current,
        is_convex=is_convex,
        entering_lines=entering,
    )
    return vertex, new_current


def lines_below_point(lines: Sequence[Line2], x: float, y: float,
                      eps: float = _VERTEX_EPS) -> Set[int]:
    """Set of indices of lines passing strictly below ``(x, y)``.

    Used by the greedy clustering to seed each cluster with ``L_w`` (the
    lines below a boundary point) and by the tests as ground truth.
    """
    result: Set[int] = set()
    scale = max(1.0, abs(y))
    for index, line in enumerate(lines):
        if line.y_at(x) < y - eps * scale:
            result.add(index)
    return result


def lines_below_point_fast(slopes: np.ndarray, intercepts: np.ndarray,
                           x: float, y: float,
                           eps: float = _VERTEX_EPS) -> Set[int]:
    """Vectorised version of :func:`lines_below_point`."""
    heights = slopes * x + intercepts
    scale = max(1.0, abs(y))
    return set(np.nonzero(heights < y - eps * scale)[0].tolist())


def expected_level_complexity(num_lines: int, k: int) -> float:
    """The Clarkson–Shor expectation of Lemma 2.2 specialised to the plane.

    For a random level between ``k`` and ``2k`` the expected number of
    vertices is O(N): this helper returns the un-normalised reference value
    ``N`` used by the Figure-2 benchmark to compare measured complexities
    against the lemma.
    """
    if num_lines <= 0:
        raise ValueError("num_lines must be positive")
    if k <= 0:
        return float(num_lines)
    return float(num_lines)
