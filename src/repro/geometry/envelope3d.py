"""Triangulated lower envelopes of planes in R^3 with conflict lists.

The 3-D structure of Section 4 stores, for every random sample ``R_i`` of
the (dual) planes, a triangulation ``Δ(R_i)`` of the lower envelope of
``R_i`` together with the *conflict list* ``K(Δ)`` of every triangle — the
planes of ``H \\ R_i`` that pass below some point of the triangle
(Clarkson–Shor, Lemma 4.1).

This module computes those objects:

* :func:`compute_lower_envelope` — the minimisation diagram of the planes,
  clipped to a rectangular query domain and fan-triangulated.  Two backends
  are available: an exact O(m^2) construction (each cell is the query domain
  clipped by the halfplanes induced by every other plane) used for small
  samples and as the reference in tests, and a dual convex-hull backend
  (scipy/qhull) that only clips against the hull neighbours of each plane.
  The paper instead invokes the external algorithm of Crauser et al. [18];
  the substitution affects construction cost only (see DESIGN.md).
* :func:`conflict_lists` — vectorised computation of the triangle conflict
  lists (a plane conflicts with a triangle iff it passes strictly below one
  of the triangle's vertices, by linearity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.polygons import (
    clip_polygon_halfplane,
    fan_triangulate,
    polygon_area,
    polygon_contains,
    rectangle_polygon,
)
from repro.geometry.primitives import Plane3

Point3 = Tuple[float, float, float]

#: Cells with less than this area after clipping are discarded as slivers.
_MIN_CELL_AREA = 1e-18

#: Samples up to this size always use the exact O(m^2) backend.
_EXACT_BACKEND_LIMIT = 96


@dataclass
class EnvelopeTriangle:
    """One triangle of the triangulated lower envelope.

    ``plane_index`` refers to the *sample-local* index of the plane that
    realises the envelope over the triangle; ``vertices`` are the three 3-D
    corners (lying on that plane).
    """

    plane_index: int
    vertices: Tuple[Point3, Point3, Point3]

    def xy_vertices(self) -> Tuple[Tuple[float, float], ...]:
        """The triangle's projection onto the xy-plane."""
        return tuple((v[0], v[1]) for v in self.vertices)


@dataclass
class TriangulatedEnvelope:
    """A triangulated lower envelope of a set of planes over a query domain."""

    planes: Sequence[Plane3]
    triangles: List[EnvelopeTriangle]
    domain: Tuple[float, float, float, float]

    @property
    def size(self) -> int:
        """Number of triangles."""
        return len(self.triangles)

    def lowest_plane_at(self, x: float, y: float) -> int:
        """Index of the plane minimising the height at ``(x, y)`` (reference)."""
        best_index = 0
        best_value = self.planes[0].z_at(x, y)
        for index in range(1, len(self.planes)):
            value = self.planes[index].z_at(x, y)
            if value < best_value:
                best_value = value
                best_index = index
        return best_index

    def locate_brute(self, x: float, y: float) -> Optional[int]:
        """Index of a triangle containing ``(x, y)`` by linear scan (reference)."""
        for index, triangle in enumerate(self.triangles):
            a, b, c = triangle.xy_vertices()
            if polygon_contains([a, b, c], x, y):
                return index
        return None

    def envelope_height(self, x: float, y: float) -> float:
        """Height of the lower envelope at ``(x, y)``."""
        plane = self.planes[self.lowest_plane_at(x, y)]
        return plane.z_at(x, y)

    def covered_area(self) -> float:
        """Total area of the triangles (should equal the domain area)."""
        total = 0.0
        for triangle in self.triangles:
            a, b, c = triangle.xy_vertices()
            total += polygon_area([a, b, c])
        return total

    def domain_area(self) -> float:
        xmin, xmax, ymin, ymax = self.domain
        return (xmax - xmin) * (ymax - ymin)

    def contains_xy(self, x: float, y: float) -> bool:
        """True if ``(x, y)`` lies inside the triangulated query domain."""
        xmin, xmax, ymin, ymax = self.domain
        return xmin <= x <= xmax and ymin <= y <= ymax


def compute_lower_envelope(planes: Sequence[Plane3],
                           domain: Tuple[float, float, float, float],
                           backend: str = "auto") -> TriangulatedEnvelope:
    """Triangulate the lower envelope of ``planes`` over ``domain``.

    Parameters
    ----------
    planes:
        The input planes (``z = a*x + b*y + c``).
    domain:
        ``(xmin, xmax, ymin, ymax)`` rectangle over which the envelope is
        triangulated.  Queries outside the domain must be handled by the
        caller (the 3-D structure falls back to scanning the sample).
    backend:
        ``"exact"`` forces the O(m^2) construction, ``"hull"`` forces the
        dual convex-hull construction, ``"auto"`` (default) picks by size.
    """
    if not planes:
        raise ValueError("cannot build the envelope of an empty set of planes")
    xmin, xmax, ymin, ymax = domain
    if xmin >= xmax or ymin >= ymax:
        raise ValueError("degenerate query domain %r" % (domain,))
    if backend not in ("auto", "exact", "hull"):
        raise ValueError("unknown backend %r" % backend)

    if backend == "exact" or (backend == "auto"
                              and len(planes) <= _EXACT_BACKEND_LIMIT):
        neighbor_sets = [
            [j for j in range(len(planes)) if j != i] for i in range(len(planes))
        ]
        triangles = _cells_to_triangles(planes, neighbor_sets, domain)
        return TriangulatedEnvelope(planes=planes, triangles=triangles,
                                    domain=domain)

    triangles = _hull_backend(planes, domain)
    if triangles is None:
        # Degenerate input for qhull (coplanar dual points, ...): fall back.
        neighbor_sets = [
            [j for j in range(len(planes)) if j != i] for i in range(len(planes))
        ]
        triangles = _cells_to_triangles(planes, neighbor_sets, domain)
    return TriangulatedEnvelope(planes=planes, triangles=triangles, domain=domain)


def _hull_backend(planes: Sequence[Plane3],
                  domain: Tuple[float, float, float, float]
                  ) -> Optional[List[EnvelopeTriangle]]:
    """Neighbour discovery via the lower convex hull of the dual points."""
    try:
        from scipy.spatial import ConvexHull  # type: ignore
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return None
    try:
        from scipy.spatial import QhullError  # type: ignore
    except ImportError:  # pragma: no cover - older scipy releases
        from scipy.spatial.qhull import QhullError  # type: ignore
    coefficients = np.array([plane.coefficients() for plane in planes], dtype=float)
    try:
        hull = ConvexHull(coefficients)
    except (QhullError, ValueError):
        return None
    # Facets of the lower hull (with respect to the c-axis) have an outward
    # normal with negative last component.
    neighbor_sets: List[set] = [set() for _ in planes]
    on_lower_hull = [False] * len(planes)
    for simplex, equation in zip(hull.simplices, hull.equations):
        if equation[2] >= -1e-12:
            continue
        for vertex in simplex:
            on_lower_hull[vertex] = True
        for a_index in simplex:
            for b_index in simplex:
                if a_index != b_index:
                    neighbor_sets[a_index].add(int(b_index))
    if not any(on_lower_hull):
        return None
    neighbor_lists = [sorted(neighbors) for neighbors in neighbor_sets]
    participating = [index for index, flag in enumerate(on_lower_hull) if flag]
    triangles = _cells_to_triangles(planes, neighbor_lists, domain,
                                    candidates=participating)
    # Sanity: the cells must tile the domain; if clipping lost too much area
    # (extreme degeneracies), fall back to the exact backend.
    xmin, xmax, ymin, ymax = domain
    domain_area = (xmax - xmin) * (ymax - ymin)
    covered = sum(polygon_area(list(t.xy_vertices())) for t in triangles)
    if covered < 0.999 * domain_area:
        return None
    return triangles


def _cells_to_triangles(planes: Sequence[Plane3],
                        neighbor_sets: Sequence[Sequence[int]],
                        domain: Tuple[float, float, float, float],
                        candidates: Optional[Sequence[int]] = None
                        ) -> List[EnvelopeTriangle]:
    """Clip each candidate plane's minimisation cell and fan-triangulate it."""
    xmin, xmax, ymin, ymax = domain
    base_polygon = rectangle_polygon(xmin, xmax, ymin, ymax)
    if candidates is None:
        candidates = range(len(planes))
    triangles: List[EnvelopeTriangle] = []
    for index in candidates:
        plane = planes[index]
        cell = list(base_polygon)
        for other_index in neighbor_sets[index]:
            other = planes[other_index]
            # Cell of ``index``: a*x + b*y + c <= a'*x + b'*y + c'.
            a = plane.a - other.a
            b = plane.b - other.b
            c = other.c - plane.c
            cell = clip_polygon_halfplane(cell, a, b, c)
            if len(cell) < 3:
                break
        if len(cell) < 3 or polygon_area(cell) < _MIN_CELL_AREA:
            continue
        for corner_a, corner_b, corner_c in fan_triangulate(cell):
            vertices = tuple(
                (float(px), float(py), float(plane.z_at(px, py)))
                for px, py in (corner_a, corner_b, corner_c)
            )
            triangles.append(EnvelopeTriangle(plane_index=index, vertices=vertices))
    return triangles


def conflict_lists(all_planes: Sequence[Plane3],
                   sample_indices: Sequence[int],
                   envelope: TriangulatedEnvelope,
                   eps: float = 1e-9,
                   chunk: int = 256) -> List[List[int]]:
    """Conflict list of every triangle of ``envelope``.

    Parameters
    ----------
    all_planes:
        The full set ``H`` of planes (global indices).
    sample_indices:
        Global indices of the planes in the sample ``R`` (excluded from the
        conflict lists, as in the paper).
    envelope:
        The triangulated lower envelope of the sample.
    eps:
        Strictness tolerance for "passes below".

    Returns
    -------
    A list with one entry per triangle: the global indices of the planes of
    ``H \\ R`` passing strictly below at least one vertex of the triangle.
    """
    num_planes = len(all_planes)
    in_sample = np.zeros(num_planes, dtype=bool)
    for index in sample_indices:
        in_sample[index] = True

    coefficients = np.array([plane.coefficients() for plane in all_planes],
                            dtype=float)
    a_column = coefficients[:, 0]
    b_column = coefficients[:, 1]
    c_column = coefficients[:, 2]

    results: List[List[int]] = [[] for _ in range(envelope.size)]
    triangle_indices = list(range(envelope.size))
    for start in range(0, len(triangle_indices), chunk):
        batch = triangle_indices[start:start + chunk]
        if not batch:
            continue
        # Stack the 3 vertices of each triangle in the batch: (3*batch, 3).
        vertices = np.array(
            [vertex for t in batch for vertex in envelope.triangles[t].vertices],
            dtype=float)
        # heights[p, v] = height of plane p above vertex v's xy position.
        heights = (a_column[:, None] * vertices[None, :, 0]
                   + b_column[:, None] * vertices[None, :, 1]
                   + c_column[:, None])
        below = heights < (vertices[None, :, 2] - eps)
        below[in_sample, :] = False
        for offset, triangle_index in enumerate(batch):
            columns = slice(3 * offset, 3 * offset + 3)
            mask = below[:, columns].any(axis=1)
            results[triangle_index] = np.nonzero(mask)[0].tolist()
    return results


def planes_below_point(planes: Sequence[Plane3], x: float, y: float, z: float,
                       eps: float = 1e-9) -> List[int]:
    """Indices of the planes passing strictly below the point (reference)."""
    return [index for index, plane in enumerate(planes)
            if plane.z_at(x, y) < z - eps]


def default_domain(planes: Sequence[Plane3], margin: float = 2.0,
                   minimum_half_width: float = 4.0
                   ) -> Tuple[float, float, float, float]:
    """A square query domain large enough for typical dual-query positions.

    The dual point of a query plane has xy-coordinates equal to the plane's
    slope coefficients, so a domain proportional to the spread of the input
    planes' own coefficients (times ``margin``) covers every reasonable
    query.  The domain is deliberately kept tight: triangles reaching far
    outside the populated region accumulate needlessly large conflict lists,
    which inflates both space and query I/Os.  Callers whose queries can
    fall outside the default should pass an explicit domain (queries outside
    the domain remain correct — the index falls back to a scan).
    """
    scale = 0.0
    for plane in planes:
        scale = max(scale, abs(plane.a), abs(plane.b))
    half_width = max(minimum_half_width, margin * scale)
    return (-half_width, half_width, -half_width, half_width)
