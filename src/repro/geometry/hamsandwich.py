"""Two-dimensional ham-sandwich cuts and Willard-style partitions.

A ham-sandwich cut of two planar point sets is a line that simultaneously
bisects both.  Willard's classic partition tree splits a point set into four
quadrants by a pair of such cuts; any query line then misses at least one
quadrant, which yields an O(n^{log_4 3}) query bound.  We use this
partitioner as an *ablation* against the default median-cut partitioner of
:mod:`repro.geometry.partitions` (benchmark ABL-PART in DESIGN.md).

The cut itself is found by a practical rotating-direction search: for a
fixed direction the line bisecting the first set is unique (median of the
projections), and by the ham-sandwich theorem its imbalance on the second
set changes sign as the direction rotates by pi; a sign-change bracket plus
bisection finds a direction where both sets are bisected up to a one-point
tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.boxes import Box
from repro.geometry.partitions import PartitionCell


@dataclass(frozen=True)
class OrientedLine:
    """A directed line ``{p : normal . p = offset}`` used for bisections."""

    normal: Tuple[float, float]
    offset: float

    def side(self, point: Sequence[float]) -> float:
        """Signed value ``normal . p - offset`` (positive on one side)."""
        return self.normal[0] * point[0] + self.normal[1] * point[1] - self.offset


def _median_line_for_direction(points: np.ndarray, angle: float) -> OrientedLine:
    """The line orthogonal to ``angle`` splitting ``points`` at the median."""
    normal = (math.cos(angle), math.sin(angle))
    projections = points[:, 0] * normal[0] + points[:, 1] * normal[1]
    offset = float(np.median(projections))
    return OrientedLine(normal=normal, offset=offset)


def _imbalance(points: np.ndarray, line: OrientedLine) -> int:
    """(# points strictly on the positive side) - (# strictly negative)."""
    values = points[:, 0] * line.normal[0] + points[:, 1] * line.normal[1] - line.offset
    positive = int(np.sum(values > 1e-12))
    negative = int(np.sum(values < -1e-12))
    return positive - negative


def ham_sandwich_cut(red: np.ndarray, blue: np.ndarray,
                     samples: int = 64, refinements: int = 40,
                     tolerance: int = 1) -> Optional[OrientedLine]:
    """Find a line simultaneously bisecting ``red`` and ``blue``.

    Returns a line whose imbalance on each set is at most ``tolerance``
    points, or None if the search fails (degenerate inputs).  The search
    samples directions, brackets a sign change of the blue imbalance of the
    red-median line, and bisects the bracket.
    """
    red = np.asarray(red, dtype=float)
    blue = np.asarray(blue, dtype=float)
    if len(red) == 0 or len(blue) == 0:
        return None

    def blue_imbalance(angle: float) -> Tuple[int, OrientedLine]:
        line = _median_line_for_direction(red, angle)
        return _imbalance(blue, line), line

    best_line: Optional[OrientedLine] = None
    best_score = None
    previous_angle = 0.0
    previous_value, previous_line = blue_imbalance(previous_angle)
    if abs(previous_value) <= tolerance and abs(_imbalance(red, previous_line)) <= tolerance:
        return previous_line
    for step in range(1, samples + 1):
        angle = math.pi * step / samples
        value, line = blue_imbalance(angle)
        score = abs(value) + abs(_imbalance(red, line))
        if best_score is None or score < best_score:
            best_score = score
            best_line = line
        if abs(value) <= tolerance and abs(_imbalance(red, line)) <= tolerance:
            return line
        if (previous_value > 0) != (value > 0):
            refined = _refine_bracket(red, blue, previous_angle, angle,
                                      refinements, tolerance)
            if refined is not None:
                return refined
        previous_angle, previous_value = angle, value
    # Fall back to the best line seen; callers treat imbalanced cuts as a
    # degraded but still correct partition (correctness never depends on the
    # cut being an exact bisection).
    return best_line


def _refine_bracket(red: np.ndarray, blue: np.ndarray, low: float, high: float,
                    refinements: int, tolerance: int) -> Optional[OrientedLine]:
    low_value = _imbalance(blue, _median_line_for_direction(red, low))
    for __ in range(refinements):
        middle = (low + high) / 2.0
        line = _median_line_for_direction(red, middle)
        value = _imbalance(blue, line)
        if abs(value) <= tolerance and abs(_imbalance(red, line)) <= tolerance:
            return line
        if (value > 0) == (low_value > 0):
            low, low_value = middle, value
        else:
            high = middle
    return None


def ham_sandwich_partition(points: np.ndarray, r: int,
                           indices: Optional[np.ndarray] = None
                           ) -> List[PartitionCell]:
    """Partition a planar point set into ~r cells by recursive ham-sandwich cuts.

    Each recursion step splits the current subset into the four quadrants of
    a pair of cuts (first a median line by x, then a ham-sandwich cut of the
    two halves), quartering the subset; recursion proceeds on the largest
    piece until ``r`` pieces exist.  Cells are reported as bounding boxes of
    their subsets, exactly like the median-cut partitioner, so the partition
    trees can consume either interchangeably.
    """
    if r < 1:
        raise ValueError("partition size r must be >= 1, got %r" % r)
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("ham_sandwich_partition expects planar points (N, 2)")
    if indices is None:
        indices = np.arange(len(points))
    if len(indices) == 0:
        return []
    pieces: List[np.ndarray] = [indices]
    while len(pieces) < r:
        largest_position = max(range(len(pieces)), key=lambda i: len(pieces[i]))
        largest = pieces[largest_position]
        if len(largest) <= 4:
            break
        quadrants = _quarter(points, largest)
        if quadrants is None:
            break
        pieces.pop(largest_position)
        pieces.extend(quadrants)
    cells: List[PartitionCell] = []
    for piece in pieces:
        if len(piece) == 0:
            continue
        box = Box.of_points(points[piece].tolist())
        cells.append(PartitionCell(indices=piece, cell=box))
    return cells


def _quarter(points: np.ndarray, indices: np.ndarray) -> Optional[List[np.ndarray]]:
    """Split ``indices`` into four quadrants via a median line + ham-sandwich cut."""
    subset = points[indices]
    order = np.argsort(subset[:, 0], kind="mergesort")
    middle = len(order) // 2
    left, right = indices[order[:middle]], indices[order[middle:]]
    if len(left) == 0 or len(right) == 0:
        return None
    cut = ham_sandwich_cut(points[left], points[right])
    if cut is None:
        return None
    quadrants: List[np.ndarray] = []
    for half in (left, right):
        values = (points[half, 0] * cut.normal[0]
                  + points[half, 1] * cut.normal[1] - cut.offset)
        quadrants.append(half[values <= 0])
        quadrants.append(half[values > 0])
    return [quadrant for quadrant in quadrants if len(quadrant) > 0]
