"""Computational-geometry substrate.

Everything the paper's data structures need from geometry lives here:

* :mod:`repro.geometry.primitives` — points, lines, planes, hyperplanes and
  the linear-constraint query object.
* :mod:`repro.geometry.predicates` — orientation / above–below tests.
* :mod:`repro.geometry.duality` — the paper's duality transform (Lemma 2.1).
* :mod:`repro.geometry.lines` — lower/upper envelopes of lines in the plane.
* :mod:`repro.geometry.arrangement2d` — k-levels of line arrangements
  (Section 2.3) used by the optimal 2-D structure.
* :mod:`repro.geometry.envelope3d` — triangulated lower envelopes of planes
  with conflict lists (Section 4 / Clarkson–Shor).
* :mod:`repro.geometry.point_location` — external-memory point location over
  a triangulated planar subdivision.
* :mod:`repro.geometry.boxes` / :mod:`repro.geometry.simplex` — cells used by
  the partition trees of Sections 5–6.
* :mod:`repro.geometry.partitions` — balanced simplicial partitions
  (Matoušek's Theorem 5.1 interface).
* :mod:`repro.geometry.hamsandwich` — 2-D ham-sandwich cuts (alternative
  partitioner, used for the ablation study).
* :mod:`repro.geometry.lifting` — the paraboloid lifting behind the
  k-nearest-neighbour reduction (Theorem 4.3).
"""

from repro.geometry.primitives import (
    Line2,
    LinearConstraint,
    Plane3,
    Hyperplane,
)
from repro.geometry.duality import (
    dual_line_of_point,
    dual_point_of_line,
    dual_plane_of_point,
    dual_point_of_plane,
    dual_hyperplane_of_point,
    dual_point_of_hyperplane,
)

__all__ = [
    "Line2",
    "Plane3",
    "Hyperplane",
    "LinearConstraint",
    "dual_line_of_point",
    "dual_point_of_line",
    "dual_plane_of_point",
    "dual_point_of_plane",
    "dual_hyperplane_of_point",
    "dual_point_of_hyperplane",
]
