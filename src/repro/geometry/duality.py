"""The paper's duality transform (Section 2.1, Lemma 2.1).

The dual of a point ``(a_1, ..., a_d)`` is the hyperplane
``x_d = -a_1 x_1 - ... - a_{d-1} x_{d-1} + a_d`` and the dual of a
hyperplane ``x_d = b_1 x_1 + ... + b_{d-1} x_{d-1} + b_d`` is the point
``(b_1, ..., b_d)``.  The transform preserves the above/below relation
(Lemma 2.1), which turns *"report the points of S below a query hyperplane
h"* into *"report the hyperplanes of S* below the query point h*"* — the
formulation every structure in :mod:`repro.core` actually works with.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.geometry.primitives import Hyperplane, Line2, Plane3


def dual_line_of_point(point: Sequence[float]) -> Line2:
    """Dual line ``y = -a1 * x + a2`` of a point ``(a1, a2)`` in the plane."""
    a1, a2 = point[0], point[1]
    return Line2(slope=-a1, intercept=a2)


def dual_point_of_line(line: Line2) -> Tuple[float, float]:
    """Dual point ``(b1, b2)`` of the line ``y = b1 * x + b2``."""
    return (line.slope, line.intercept)


def primal_point_of_dual_line(line: Line2) -> Tuple[float, float]:
    """Invert :func:`dual_line_of_point`: recover the point whose dual is ``line``."""
    return (-line.slope, line.intercept)


def dual_plane_of_point(point: Sequence[float]) -> Plane3:
    """Dual plane ``z = -a1*x - a2*y + a3`` of a point ``(a1, a2, a3)``."""
    a1, a2, a3 = point[0], point[1], point[2]
    return Plane3(a=-a1, b=-a2, c=a3)


def dual_point_of_plane(plane: Plane3) -> Tuple[float, float, float]:
    """Dual point ``(b1, b2, b3)`` of the plane ``z = b1*x + b2*y + b3``."""
    return (plane.a, plane.b, plane.c)


def primal_point_of_dual_plane(plane: Plane3) -> Tuple[float, float, float]:
    """Invert :func:`dual_plane_of_point`."""
    return (-plane.a, -plane.b, plane.c)


def dual_hyperplane_of_point(point: Sequence[float]) -> Hyperplane:
    """Dual hyperplane of a d-dimensional point (general-dimension form)."""
    coeffs = tuple(-c for c in point[:-1])
    return Hyperplane(coeffs=coeffs, offset=point[-1])


def dual_point_of_hyperplane(hyperplane: Hyperplane) -> Tuple[float, ...]:
    """Dual point of a d-dimensional hyperplane."""
    return tuple(hyperplane.coeffs) + (hyperplane.offset,)


def primal_point_of_dual_hyperplane(hyperplane: Hyperplane) -> Tuple[float, ...]:
    """Invert :func:`dual_hyperplane_of_point`."""
    return tuple(-c for c in hyperplane.coeffs) + (hyperplane.offset,)
