"""External-memory point location over a set of triangles tiling a rectangle.

The 3-D structure (Section 4) needs, for every random sample, a structure
that finds the triangle of the triangulated lower envelope lying above/below
a query point of the xy-plane in O(log_B n) I/Os.  The paper cites the
external planar point-location structures of [7, 27]; this module provides
an engineering substitution with the same role (documented in DESIGN.md): a
*blocked bounding-interval tree* over the triangles.

The tree recursively splits the bounding rectangle at the median triangle
centroid (alternating axes); a triangle is handed to every child whose
region its bounding box overlaps, so leaves contain a handful of candidate
triangles.  Nodes are packed ``B`` per disk block, so a root-to-leaf descent
touches O(depth / B)+O(1) blocks in the best case and O(depth) in the worst;
leaf candidate triangles are stored inline in the leaf record.  Measured
I/Os are reported as-is by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geometry.predicates import point_in_triangle
from repro.io.store import BlockStore

Point2 = Tuple[float, float]
Triangle2 = Tuple[Point2, Point2, Point2]

_KIND_INTERNAL = 0
_KIND_LEAF = 1


@dataclass
class _BuildNode:
    """In-memory node used while constructing the tree."""

    kind: int
    axis: int = 0
    split: float = 0.0
    left: int = -1
    right: int = -1
    payload: Optional[List[Tuple[int, Triangle2]]] = None


class ExternalPointLocator:
    """Block-resident point location over a collection of labelled triangles.

    Parameters
    ----------
    store:
        Simulated disk to hold the tree.
    triangles:
        ``(label, ((x,y), (x,y), (x,y)))`` pairs.  Labels are returned by
        :meth:`locate`; they are typically indices into a triangle table.
    leaf_capacity:
        Maximum number of candidate triangles per leaf (before the depth cap
        forces larger leaves).
    max_depth:
        Hard bound on the recursion depth.
    """

    def __init__(self, store: BlockStore,
                 triangles: Sequence[Tuple[int, Triangle2]],
                 leaf_capacity: int = 8,
                 max_depth: int = 32):
        if leaf_capacity < 1:
            raise ValueError("leaf_capacity must be >= 1")
        self._store = store
        self._nodes: List[_BuildNode] = []
        items = [(label, tri, _bbox(tri)) for label, tri in triangles]
        if items:
            self._root = self._build(items, depth=0, axis=0,
                                     leaf_capacity=leaf_capacity,
                                     max_depth=max_depth)
        else:
            self._root = self._add_node(_BuildNode(kind=_KIND_LEAF, payload=[]))
        self._block_of_node: List[int] = []
        self._slot_of_node: List[int] = []
        self._pack_nodes()

    # ------------------------------------------------------------------
    # construction (in memory)
    # ------------------------------------------------------------------
    def _add_node(self, node: _BuildNode) -> int:
        self._nodes.append(node)
        return len(self._nodes) - 1

    def _build(self, items, depth: int, axis: int, leaf_capacity: int,
               max_depth: int) -> int:
        if len(items) <= leaf_capacity or depth >= max_depth:
            payload = [(label, tri) for label, tri, __ in items]
            return self._add_node(_BuildNode(kind=_KIND_LEAF, payload=payload))
        centroids = sorted(( (bbox[0][axis] + bbox[1][axis]) / 2.0
                             for __, __, bbox in items))
        split = centroids[len(centroids) // 2]
        left_items = [item for item in items if item[2][0][axis] <= split]
        right_items = [item for item in items if item[2][1][axis] >= split]
        if len(left_items) == len(items) and len(right_items) == len(items):
            # No progress possible (all triangles straddle the split): leaf.
            payload = [(label, tri) for label, tri, __ in items]
            return self._add_node(_BuildNode(kind=_KIND_LEAF, payload=payload))
        node_index = self._add_node(_BuildNode(kind=_KIND_INTERNAL, axis=axis,
                                               split=split))
        next_axis = 1 - axis
        left = self._build(left_items, depth + 1, next_axis, leaf_capacity,
                           max_depth)
        right = self._build(right_items, depth + 1, next_axis, leaf_capacity,
                            max_depth)
        self._nodes[node_index].left = left
        self._nodes[node_index].right = right
        return node_index

    # ------------------------------------------------------------------
    # disk layout
    # ------------------------------------------------------------------
    def _pack_nodes(self) -> None:
        """Write nodes to disk in DFS order, ``B`` node records per block."""
        order: List[int] = []
        stack = [self._root]
        seen = set()
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            order.append(index)
            node = self._nodes[index]
            if node.kind == _KIND_INTERNAL:
                stack.append(node.right)
                stack.append(node.left)
        position_of = {node_index: position for position, node_index in enumerate(order)}
        B = self._store.block_size
        self._block_of_node = [0] * len(self._nodes)
        self._slot_of_node = [0] * len(self._nodes)
        block_ids: List[int] = []
        for start in range(0, len(order), B):
            chunk = order[start:start + B]
            records = []
            for slot, node_index in enumerate(chunk):
                node = self._nodes[node_index]
                if node.kind == _KIND_LEAF:
                    records.append((_KIND_LEAF, node.payload))
                else:
                    records.append((_KIND_INTERNAL, node.axis, node.split,
                                    position_of[node.left],
                                    position_of[node.right]))
                self._block_of_node[node_index] = len(block_ids)
                self._slot_of_node[node_index] = slot
            block_ids.append(self._store.allocate(records))
        self._block_ids = block_ids
        self._position_order = order
        self._root_position = position_of[self._root]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def space_blocks(self) -> int:
        """Number of disk blocks occupied by the locator."""
        return len(self._block_ids)

    @property
    def num_nodes(self) -> int:
        """Number of tree nodes."""
        return len(self._nodes)

    def locate(self, x: float, y: float) -> Optional[int]:
        """Return the label of a triangle containing ``(x, y)``, or None.

        Every block touched during the descent is read through the store, so
        the caller's I/O counters reflect the true access cost.
        """
        B = self._store.block_size
        position = self._root_position
        current_block = -1
        current_records: List = []
        while True:
            block_index, slot = divmod(position, B)
            if block_index != current_block:
                current_records = self._store.read(self._block_ids[block_index])
                current_block = block_index
            record = current_records[slot]
            if record[0] == _KIND_LEAF:
                for label, triangle in record[1]:
                    if point_in_triangle((x, y), *triangle):
                        return label
                return None
            __, axis, split, left_position, right_position = record
            coordinate = x if axis == 0 else y
            position = left_position if coordinate <= split else right_position


def _bbox(triangle: Triangle2) -> Tuple[Point2, Point2]:
    xs = [vertex[0] for vertex in triangle]
    ys = [vertex[1] for vertex in triangle]
    return ((min(xs), min(ys)), (max(xs), max(ys)))
