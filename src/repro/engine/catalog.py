"""The engine's catalog: datasets, registered indexes and build statistics.

The :class:`Catalog` is the system-of-record the rest of the engine works
from.  It owns one shared :class:`~repro.io.store.BlockStore` per dataset
(so every index over the same data competes for the same buffer pool, as
it would on a real disk), knows how to bulk-build any combination of
:class:`~repro.core.interface.ExternalIndex` implementations over a
dataset, and records what each build cost (wall-clock, write I/Os, space).

Datasets come in two shapes: a plain :class:`Dataset` (one store, one index
suite) and a :class:`~repro.engine.sharding.ShardedDataset` (K per-shard
stores, a router, one index suite per shard).  Each store's *backend* —
in-memory dict or a real file — is chosen per catalog or per dataset; see
:mod:`repro.io.backend`.

The catalog also attaches a pluggable *selectivity model* (see
:mod:`repro.engine.stats`) to every dataset — and to every shard child,
so sharded planning is priced with shard-local statistics.  The default
``"uniform"`` model evaluates constraints on a small in-memory sample
(O(sample) arithmetic, zero I/Os); ``"histogram"`` maintains equi-depth
directional histograms that resolve skewed data like the §1.2 diagonal;
``"ensemble"`` runs both side by side and blends them with online
e-value-style weights learned from observed per-query q-error.
Either way the estimate turns the paper's output-sensitive bounds into
concrete per-query cost predictions.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.baselines import (
    FullScanIndex,
    KDBTreeIndex,
    PagedDualIndex2D,
    QuadTreeIndex,
    RTreeIndex,
)
from repro.core import (
    DynamicPartitionTreeIndex,
    ExternalIndex,
    HalfplaneIndex2D,
    HalfspaceIndex3D,
    HybridIndex3D,
    PartitionTreeIndex,
    ShallowPartitionTreeIndex,
)
from repro.engine.sharding import (
    RangeShardRouter,
    Shard,
    ShardedDataset,
    make_router,
    selectivity_on_sample,
)
from repro.engine.stats import SelectivityModel, make_model
from repro.geometry.primitives import LinearConstraint
from repro.io.backend import make_backend
from repro.io.store import BlockStore, IOStats


@dataclass(frozen=True)
class IndexKind:
    """One buildable index family: constructor plus its dimension domain."""

    name: str
    factory: type
    dimensions: Optional[Tuple[int, ...]] = None  # None = any dimension >= 2

    def supports(self, dimension: int) -> bool:
        """True if this kind can index points of the given dimension."""
        return self.dimensions is None or dimension in self.dimensions


#: Every index family the catalog can build, keyed by its short kind name.
INDEX_KINDS: Dict[str, IndexKind] = {
    kind.name: kind
    for kind in (
        IndexKind("halfplane2d", HalfplaneIndex2D, (2,)),
        IndexKind("halfspace3d", HalfspaceIndex3D, (3,)),
        IndexKind("hybrid3d", HybridIndex3D, (3,)),
        IndexKind("partition_tree", PartitionTreeIndex, None),
        IndexKind("shallow_tree", ShallowPartitionTreeIndex, None),
        IndexKind("full_scan", FullScanIndex, None),
        IndexKind("rtree", RTreeIndex, None),
        IndexKind("kdb_tree", KDBTreeIndex, None),
        IndexKind("quadtree", QuadTreeIndex, (2,)),
        IndexKind("paged_cgl", PagedDualIndex2D, (2,)),
        IndexKind("dynamic", DynamicPartitionTreeIndex, None),
    )
}


def default_suite(dimension: int) -> List[str]:
    """The kinds the engine builds when the caller does not choose.

    One optimal structure for the dimension (when the paper provides one),
    the linear-size partition tree (handles conjunctions natively), and
    the full scan as the always-correct floor.
    """
    if dimension == 2:
        return ["halfplane2d", "partition_tree", "full_scan"]
    if dimension == 3:
        return ["halfspace3d", "partition_tree", "full_scan"]
    return ["partition_tree", "shallow_tree", "full_scan"]


@dataclass
class BuildRecord:
    """What one index build cost (what the catalog's stats report)."""

    dataset: str
    index_name: str
    kind: str
    num_points: int
    space_blocks: int
    build_seconds: float
    build_ios: Optional[IOStats]
    params: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        """JSON-friendly view (benchmarks persist these)."""
        return {
            "dataset": self.dataset,
            "index": self.index_name,
            "kind": self.kind,
            "num_points": self.num_points,
            "space_blocks": self.space_blocks,
            "build_seconds": self.build_seconds,
            "build_ios": self.build_ios.total if self.build_ios else None,
        }


@dataclass
class Dataset:
    """One registered point set: its store, indexes, sample and statistics."""

    name: str
    points: np.ndarray
    store: BlockStore
    sample: np.ndarray
    indexes: Dict[str, ExternalIndex] = field(default_factory=dict)
    build_records: Dict[str, BuildRecord] = field(default_factory=dict)
    #: Set by the engine's mutation hooks when a dynamic index on this
    #: dataset accepts an insert/delete.  Statically-built sibling indexes
    #: are stale from that point on, so the planner stops routing to them.
    mutated: bool = False
    #: Pluggable selectivity model (None = estimate on the sample).
    stats: Optional[SelectivityModel] = None

    @property
    def dimension(self) -> int:
        """Ambient dimension of the stored points."""
        return int(self.points.shape[1])

    @property
    def size(self) -> int:
        """Number of stored points at build time (the paper's N)."""
        return int(self.points.shape[0])

    @property
    def live_size(self) -> int:
        """Current point count, observed mutations included."""
        return self.stats.size if self.stats is not None else self.size

    def estimate_selectivity(self, constraint: LinearConstraint) -> float:
        """Fraction of points expected to satisfy ``constraint``.

        Delegated to the dataset's selectivity model (sample scan or
        directional histograms); pure arithmetic either way — estimation
        never touches the simulated disk.
        """
        if self.stats is not None:
            return self.stats.estimate_selectivity(constraint)
        return selectivity_on_sample(self.sample, self.dimension, constraint)

    def estimate_output(self, constraint: LinearConstraint) -> int:
        """Expected number of reported points (the paper's T)."""
        if self.stats is not None:
            return self.stats.estimate_output(constraint)
        return int(round(self.estimate_selectivity(constraint) * self.size))


class Catalog:
    """Registry of datasets and the indexes built over them.

    Parameters
    ----------
    block_size:
        Default block size B for datasets registered without one.
    cache_blocks:
        Default buffer-pool size for each dataset's shared store.
    sample_size:
        Number of points kept in memory per dataset for selectivity
        estimation (the whole dataset if smaller).
    seed:
        Seed for sampling and for the randomised index builds.
    backend:
        Default storage backend for every dataset's store(s): ``"memory"``
        (default), ``"file"``, ``"mmap"``, or a factory (see
        :func:`repro.io.backend.make_backend`).
    data_dir:
        Directory for file-backed (``"file"``/``"mmap"``) stores
        registered without an explicit path (one ``<dataset>.blocks`` file
        each); a temporary file per store when omitted.
    stats_model / stats_params:
        Default selectivity model for every dataset (and shard child):
        ``"uniform"`` (default), ``"histogram"``, ``"ensemble"``, or a
        factory — see
        :func:`repro.engine.stats.make_model`; ``stats_params`` are
        forwarded to the model constructor.
    """

    def __init__(self, block_size: int = 64, cache_blocks: int = 4,
                 sample_size: int = 512, seed: Optional[int] = None,
                 backend: object = "memory",
                 data_dir: Optional[str] = None,
                 stats_model: object = "uniform",
                 stats_params: Optional[Dict[str, object]] = None):
        self._block_size = block_size
        self._cache_blocks = cache_blocks
        self._sample_size = sample_size
        self._seed = seed
        self._backend = backend
        self._data_dir = data_dir
        self._stats_model = stats_model
        self._stats_params = dict(stats_params or {})
        self._datasets: Dict[str, Dataset] = {}
        self._sharded: Dict[str, ShardedDataset] = {}

    @property
    def seed(self) -> Optional[int]:
        """The catalog's sampling/build seed (workers replicate with it)."""
        return self._seed

    @property
    def sample_size(self) -> int:
        """The per-dataset selectivity-sample size."""
        return self._sample_size

    @property
    def stats_model(self) -> object:
        """The catalog-wide default selectivity-model kind (or factory)."""
        return self._stats_model

    @property
    def stats_params(self) -> Dict[str, object]:
        """The catalog-wide default selectivity-model parameters."""
        return dict(self._stats_params)

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------
    def _check_name_free(self, name: str) -> None:
        if name in self._datasets or name in self._sharded:
            raise ValueError("dataset %r is already registered" % name)

    def _as_points(self, points: Sequence[Sequence[float]]) -> np.ndarray:
        array = np.asarray(points, dtype=float)
        if array.ndim != 2 or array.shape[0] == 0 or array.shape[1] < 2:
            raise ValueError("points must have shape (N >= 1, d >= 2), got %r"
                             % (array.shape,))
        return array

    def _sample_of(self, array: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(self._seed)
        if len(array) <= self._sample_size:
            return array.copy()
        chosen = rng.choice(len(array), size=self._sample_size, replace=False)
        return array[chosen]

    @staticmethod
    def _block_file_name(name: str) -> str:
        """Injective dataset-name -> file-name mapping.

        Every character outside [A-Za-z0-9.-] becomes ``_XXXXXX`` (its
        codepoint as exactly six hex digits; ``_`` itself included), so two
        distinct dataset names (e.g. the shard child ``sh#0`` and a plain
        dataset ``sh_0``, or ``€`` vs ``ac``-with-junk) can never
        collide on one block file: the escape is fixed-width, hence
        prefix-free.
        """
        safe = "".join(
            ch if (ch.isascii() and ch.isalnum()) or ch in ".-"
            else "_%06x" % ord(ch)
            for ch in name)
        return "%s.blocks" % safe

    def _make_store(self, name: str, block_size: Optional[int],
                    cache_blocks: Optional[int],
                    backend: object) -> BlockStore:
        spec = self._backend if backend is None else backend
        path = None
        if spec in ("file", "mmap") and self._data_dir is not None:
            path = os.path.join(self._data_dir, self._block_file_name(name))
        return BlockStore(
            block_size=block_size or self._block_size,
            cache_blocks=(self._cache_blocks if cache_blocks is None
                          else cache_blocks),
            backend=make_backend(spec, path=path))

    def _make_stats(self, array: np.ndarray, sample: np.ndarray,
                    stats_model: object = None,
                    stats_params: Optional[Dict[str, object]] = None
                    ) -> SelectivityModel:
        """Build the selectivity model for one (child) dataset.

        A per-dataset ``stats_model`` override does *not* inherit the
        catalog-wide ``stats_params``: those are specific to the
        catalog's model kind (e.g. histogram bucket counts would crash a
        uniform model), so an override starts from empty params unless
        it brings its own.
        """
        if stats_model is None:
            spec = self._stats_model
            params = self._stats_params if stats_params is None \
                else stats_params
        else:
            spec = stats_model
            params = stats_params or {}
        return make_model(spec, array, sample, seed=self._seed, **params)

    def _make_dataset(self, name: str, array: np.ndarray,
                      block_size: Optional[int], cache_blocks: Optional[int],
                      backend: object,
                      stats_model: object = None,
                      stats_params: Optional[Dict[str, object]] = None,
                      stats: Optional[SelectivityModel] = None) -> Dataset:
        """One (child) dataset; ``stats`` shares a pre-built model
        instead of constructing a new one (shard replicas hold identical
        data, so one model serves all of them)."""
        store = self._make_store(name, block_size, cache_blocks, backend)
        sample = self._sample_of(array)
        return Dataset(name=name, points=array, store=store, sample=sample,
                       stats=(stats if stats is not None else
                              self._make_stats(array, sample, stats_model,
                                               stats_params)))

    def register_dataset(self, name: str, points: Sequence[Sequence[float]],
                         block_size: Optional[int] = None,
                         cache_blocks: Optional[int] = None,
                         backend: object = None,
                         stats_model: object = None,
                         stats_params: Optional[Dict[str, object]] = None
                         ) -> Dataset:
        """Register a point set under ``name`` with its own shared store.

        ``stats_model`` / ``stats_params`` override the catalog-wide
        selectivity model for this dataset.
        """
        self._check_name_free(name)
        array = self._as_points(points)
        dataset = self._make_dataset(name, array, block_size, cache_blocks,
                                     backend, stats_model, stats_params)
        self._datasets[name] = dataset
        return dataset

    def adopt_replica(self, name: str, points: Sequence[Sequence[float]],
                      suite_builds: Sequence[Dict[str, object]],
                      dimension: Optional[int] = None,
                      materialized: bool = False) -> Dataset:
        """Rebuild one shard replica in *this* catalog, bit-for-bit.

        A shard-worker process calls this on its fresh mini-catalog to
        reconstruct the replica it serves: the build-time point chunk
        plus a replay of the parent's recorded ``suite_builds``.  Because
        the catalog seeds samples and randomized index builds from its
        own seed (which the worker copies from the parent), the stores
        and structures come out identical to the parent's replica — the
        foundation of process-mode I/O parity.

        ``materialized`` marks a lazily-materialized (zero-build-point)
        shard, replaying :meth:`materialize_shard`'s dimension defaulting
        for dynamic builds; ``dimension`` is then required to shape the
        empty array.
        """
        self._check_name_free(name)
        array = np.asarray(points, dtype=float)
        if array.size == 0:
            array = array.reshape(0, int(dimension))
        # A zero-point (materialized) replica mirrors materialize_shard's
        # provisional uniform model: histogram/ensemble models need at
        # least one build point.
        dataset = self._make_dataset(
            name, array, None, None, None,
            "uniform" if len(array) == 0 else None)
        self._datasets[name] = dataset
        for build in suite_builds:
            params = dict(build["params"])
            if materialized and build["kind"] == "dynamic":
                params.setdefault("dimension", array.shape[1])
            self._build_index_on(dataset, build["kind"],
                                 build["index_name"], **params)
        return dataset

    @staticmethod
    def _replica_name(name: str, shard_id: int, replica_id: int,
                      generation: int = 0) -> str:
        """Child-dataset name of one shard replica (replica 0 = primary).

        Re-split generations get a ``@g<G>`` infix so a rebuilt shard's
        block file can never collide with (and recover blocks from) the
        file its predecessor used.
        """
        base = name if generation == 0 else "%s@g%d" % (name, generation)
        if replica_id == 0:
            return "%s#%d" % (base, shard_id)
        return "%s#%d@r%d" % (base, shard_id, replica_id)

    def _make_shards(self, name: str, array: np.ndarray, router,
                     replicas: int, params: Dict[str, object],
                     generation: int = 0) -> List[Shard]:
        """Per-shard child datasets (with stores, samples and models)."""
        shards: List[Shard] = []
        for shard_id, rows in enumerate(router.assign(array)):
            if len(rows) == 0:
                shards.append(Shard(shard_id=shard_id))
                continue
            chunk = array[rows]
            children: List[Dataset] = []
            for replica_id in range(replicas):
                children.append(self._make_dataset(
                    self._replica_name(name, shard_id, replica_id,
                                       generation),
                    chunk, params.get("block_size"),
                    params.get("cache_blocks"), params.get("backend"),
                    params.get("stats_model"), params.get("stats_params"),
                    # Replicas are identical copies: the primary's model
                    # serves every replica (mutations pin to one replica,
                    # whose point hooks keep the shared model current).
                    stats=children[0].stats if children else None))
            shards.append(Shard(
                shard_id=shard_id, replicas=children,
                lows=tuple(chunk.min(axis=0).tolist()),
                highs=tuple(chunk.max(axis=0).tolist())))
        return shards

    def register_sharded_dataset(self, name: str,
                                 points: Sequence[Sequence[float]],
                                 num_shards: int,
                                 sharding: str = "range",
                                 shard_attribute: int = 0,
                                 replicas: int = 1,
                                 block_size: Optional[int] = None,
                                 cache_blocks: Optional[int] = None,
                                 backend: object = None,
                                 stats_model: object = None,
                                 stats_params: Optional[Dict[str, object]]
                                 = None) -> ShardedDataset:
        """Partition ``points`` across ``num_shards`` per-shard stores.

        ``sharding`` picks the router (``"range"`` on ``shard_attribute``,
        or ``"hash"``); each non-empty shard gets ``replicas`` child
        datasets — the primary named ``<name>#<shard>``, further replicas
        ``<name>#<shard>@r<replica>`` — each with its own store (and
        backend) plus its own sample and selectivity model, and records
        the bounding box of its points for pruning.  Replicas hold
        identical copies of the shard's points, so the executor can
        overlap concurrent queries on the same shard by picking the
        least-loaded replica.  The registration parameters are kept on
        the returned :class:`~repro.engine.sharding.ShardedDataset` so a
        later re-split (:meth:`resplit_sharded_dataset`) rebuilds shards
        with identical settings.
        """
        self._check_name_free(name)
        if replicas < 1:
            raise ValueError("replicas must be >= 1, got %r" % replicas)
        array = self._as_points(points)
        router = make_router(sharding, array, num_shards,
                             attribute=shard_attribute)
        params: Dict[str, object] = {
            "block_size": block_size, "cache_blocks": cache_blocks,
            "backend": backend, "stats_model": stats_model,
            "stats_params": stats_params, "replicas": replicas,
        }
        sample = self._sample_of(array)
        sharded = ShardedDataset(
            name=name, points=array, sample=sample, router=router,
            shards=self._make_shards(name, array, router, replicas, params),
            stats=self._make_stats(array, sample, stats_model, stats_params),
            register_params=params)
        self._sharded[name] = sharded
        return sharded

    def _remove_store_file(self, store: BlockStore) -> None:
        """Delete a retired store's block file, if the catalog assigned it.

        Temp-file backends delete themselves on close; files the catalog
        placed under ``data_dir`` do not (the backend does not own an
        explicit path), so a re-split would otherwise orphan one full
        copy of the dataset per generation.  Files outside ``data_dir``
        (caller-managed backends) are left alone.
        """
        path = getattr(store.backend, "path", None)
        if not path or self._data_dir is None:
            return
        directory = os.path.dirname(os.path.abspath(path))
        if directory != os.path.abspath(self._data_dir):
            return
        try:
            os.unlink(path)
        except OSError:
            pass

    @staticmethod
    def mutable_index_of(dataset: Dataset) -> ExternalIndex:
        """The (child) dataset's mutation-capable index — the write target.

        The engine-level write path routes ``insert``/``delete`` here.  A
        suite built without a mutation-capable kind cannot be upgraded in
        place (its statically-built structures would silently go stale),
        so the error says how to register the dataset writable instead.
        """
        for index in dataset.indexes.values():
            if callable(getattr(index, "insert", None)) \
                    and callable(getattr(index, "delete", None)):
                return index
        raise ValueError(
            "dataset %r accepts no engine-level writes: its index suite "
            "was built statically (no mutation-capable index).  Register "
            "it with kinds including 'dynamic' (e.g. kinds=[\"dynamic\", "
            "\"full_scan\"]) to route inserts and deletes through it."
            % dataset.name)

    @staticmethod
    def live_points_of(dataset: Dataset) -> np.ndarray:
        """A (child) dataset's current points, mutations included.

        When a mutation-aware index exists, its own ``live_points`` (the
        dynamic partition tree's exact live set) is the truth — the
        build array no longer reflects the data after inserts/deletes.
        The index is consulted even when the ``mutated`` flag is unset:
        the flag is wired by *engine*-built suites, and an index built
        directly through the catalog must not lose its updates in a
        re-split just because nobody subscribed to it.
        """
        for index in dataset.indexes.values():
            live = getattr(index, "live_points", None)
            if callable(live):
                return np.asarray(live(), dtype=float).reshape(
                    -1, dataset.dimension)
        return dataset.points

    def resplit_sharded_dataset(self, name: str) -> Dict[str, object]:
        """Re-split a range-sharded dataset at fresh quantiles.

        Collects the live points of every shard (from each shard's
        planning replica, so post-mutation data is included), computes new
        quantile boundaries on the original shard attribute, rebuilds the
        per-shard child datasets — stores, samples, selectivity models
        and the recorded index-suite kinds — with the registration-time
        parameters, and swaps them into the existing
        :class:`~repro.engine.sharding.ShardedDataset` *in place* (so
        references held by the planner and executor stay valid), bumping
        its ``generation``.  The old shards' stores are closed afterwards.

        This is the mechanism under
        :class:`~repro.engine.sharding.RebalanceManager`; callers above
        the catalog should go through the manager (or the engine facade),
        which also invalidates result caches and re-wires mutation hooks.
        """
        sharded = self.sharded(name)
        if not isinstance(sharded.router, RangeShardRouter):
            raise ValueError(
                "only range-sharded datasets can be re-split; %r uses %r "
                "routing" % (name, sharded.router.scheme))
        # Hold the dataset's write barrier for the whole
        # collect-swap-rebuild window: an engine-level write holds the
        # same lock for its route+fanout, so no mutation can land in the
        # retiring shards after their live points were collected (it
        # would vanish from the rebuilt layout), and no write routes
        # against a half-swapped router/shard list or a suite that is
        # still being rebuilt.
        with sharded.write_lock:
            old_sizes = sharded.shard_live_sizes()
            chunks = [self.live_points_of(shard.planning_dataset())
                      for shard in sharded.nonempty_shards()]
            chunks = [chunk for chunk in chunks if len(chunk)]
            if not chunks:
                raise ValueError("cannot re-split %r: it holds no live "
                                 "points" % name)
            array = np.concatenate(chunks)
            params = sharded.register_params
            replicas = int(params.get("replicas") or 1)
            router = RangeShardRouter.from_points(
                array, sharded.router.num_shards,
                attribute=sharded.router.attribute)
            generation = sharded.generation + 1
            old_stores = [replica.store
                          for shard in sharded.nonempty_shards()
                          for replica in shard.replicas]
            sample = self._sample_of(array)
            sharded.points = array
            sharded.sample = sample
            sharded.stats = self._make_stats(array, sample,
                                             params.get("stats_model"),
                                             params.get("stats_params"))
            sharded.router = router
            sharded.shards = self._make_shards(name, array, router,
                                               replicas, params, generation)
            sharded.generation = generation
            for build in list(sharded.suite_builds):
                self.build_sharded_index(name, build["kind"],
                                         build["index_name"],
                                         **dict(build["params"]))
        for store in old_stores:
            # Close under the store's lock: an in-flight fan-out that
            # still holds references to the retiring layout finishes its
            # shard read before the store (and its file) disappears.
            with store.lock:
                store.close()
                self._remove_store_file(store)
        return {
            "dataset": name,
            "generation": generation,
            "old_sizes": old_sizes,
            "new_sizes": [shard.size for shard in sharded.shards],
            "boundaries": list(router.boundaries),
            "num_points": int(len(array)),
        }

    def materialize_shard(self, name: str, shard_id: int) -> Shard:
        """Build an empty shard's replicas, stores and index suite in place.

        A range shard that received no build points holds no replicas, so
        the first insert routed into it has nowhere to land.  This builds
        the shard's child datasets from a zero-point array — one store,
        sample and suite per replica, exactly as registration would have —
        and attaches them to the existing :class:`Shard` object, so live
        ingest over the write path works on a fresh shard instead of
        erroring.  No-op when the shard already has replicas.

        The caller must hold the dataset's ``write_lock`` (the write path
        does); the engine facade re-wires its mutation hooks onto the new
        indexes through the write path's materialize listener.

        The shard's bounding box starts stale: there are no points to
        bound, and pruning must not skip the shard once its first insert
        lands.  Histogram selectivity models need at least one build
        point, so a materialized shard starts from the uniform sample
        model regardless of the configured kind; the shard is marked
        ``stats_provisional`` so the engine's point hooks can promote it
        onto the configured model once it holds enough live points
        (:meth:`upgrade_shard_stats`) — a re-split also rebuilds it with
        the registered model over real points.
        """
        sharded = self.sharded(name)
        shard = sharded.shards[shard_id]
        if not shard.is_empty:
            return shard
        params = sharded.register_params
        replicas = int(params.get("replicas") or 1)
        empty = np.empty((0, sharded.dimension), dtype=float)
        children: List[Dataset] = []
        for replica_id in range(replicas):
            children.append(self._make_dataset(
                self._replica_name(name, shard_id, replica_id,
                                   sharded.generation),
                empty, params.get("block_size"), params.get("cache_blocks"),
                params.get("backend"), "uniform", None,
                stats=children[0].stats if children else None))
        for build in sharded.suite_builds:
            build_params = dict(build["params"])
            if build["kind"] == "dynamic":
                # A dynamic index built from zero points cannot infer the
                # dimension from its build array.
                build_params.setdefault("dimension", sharded.dimension)
            for replica in children:
                self._build_index_on(replica, build["kind"],
                                     build["index_name"], **build_params)
        # Attach only after every build succeeded, so a failed build
        # leaves the shard empty (and the write that triggered it fails)
        # instead of half-materialized.
        shard.replicas = children
        shard.lows = None
        shard.highs = None
        shard.box_stale = True
        shard.stats_provisional = True
        return shard

    def upgrade_shard_stats(self, name: str, shard_id: int,
                            min_points: int) -> bool:
        """Promote a provisional shard onto the configured stats model.

        A lazily materialized shard starts on the uniform model (it had
        no build points to fit a histogram over).  Once its live point
        count reaches ``min_points``, this re-fits the dataset's
        *registered* model — kind and params — over the shard's current
        live points and a fresh sample, and rebinds it on every replica
        (replicas share one model object, so one rebind serves all).
        Returns True when the upgrade happened; False while the shard is
        still too small, no longer provisional, or empty of live points.

        The caller must hold the dataset's ``write_lock`` (the engine's
        point hook fires inside the write path, which does).
        """
        sharded = self.sharded(name)
        shard = sharded.shards[shard_id]
        if not shard.stats_provisional or shard.is_empty:
            return False
        primary = shard.planning_dataset()
        live = self.live_points_of(primary)
        if len(live) < max(1, int(min_points)):
            return False
        params = sharded.register_params
        sample = self._sample_of(live)
        stats = self._make_stats(live, sample, params.get("stats_model"),
                                 params.get("stats_params"))
        for replica in shard.replicas:
            replica.sample = sample
            replica.stats = stats
        shard.stats_provisional = False
        return True

    def dataset(self, name: str) -> Dataset:
        """Look up a plain registered dataset (KeyError with known names)."""
        if name not in self._datasets:
            if name in self._sharded:
                raise KeyError("dataset %r is sharded; use sharded(%r)"
                               % (name, name))
            raise KeyError("unknown dataset %r (registered: %s)"
                           % (name, self.datasets() or "none"))
        return self._datasets[name]

    def sharded(self, name: str) -> ShardedDataset:
        """Look up a sharded dataset (KeyError if unknown or unsharded)."""
        if name not in self._sharded:
            raise KeyError("unknown sharded dataset %r (sharded: %s)"
                           % (name, sorted(self._sharded) or "none"))
        return self._sharded[name]

    def is_sharded(self, name: str) -> bool:
        """True if ``name`` is registered as a sharded dataset."""
        return name in self._sharded

    def entry(self, name: str) -> Union[Dataset, ShardedDataset]:
        """Either shape of registered dataset, by name."""
        if name in self._sharded:
            return self._sharded[name]
        return self.dataset(name)

    def datasets(self) -> List[str]:
        """Names of every registered dataset (plain and sharded)."""
        return sorted(set(self._datasets) | set(self._sharded))

    def stores(self, name: str) -> List[BlockStore]:
        """Every store backing a dataset: one, or one per shard replica."""
        if name in self._sharded:
            return [replica.store
                    for shard in self._sharded[name].nonempty_shards()
                    for replica in shard.replicas]
        return [self.dataset(name).store]

    def close(self) -> None:
        """Close every store's backend (file handles, temp files)."""
        for name in self.datasets():
            for store in self.stores(name):
                store.close()

    # ------------------------------------------------------------------
    # index builds
    # ------------------------------------------------------------------
    def _build_index_on(self, dataset: Dataset, kind: str,
                        index_name: Optional[str] = None,
                        **params) -> BuildRecord:
        """Bulk-build one index of the given kind over a (child) dataset."""
        if kind not in INDEX_KINDS:
            raise KeyError("unknown index kind %r (known: %s)"
                           % (kind, sorted(INDEX_KINDS)))
        index_kind = INDEX_KINDS[kind]
        if not index_kind.supports(dataset.dimension):
            raise ValueError("index kind %r does not support dimension %d"
                             % (kind, dataset.dimension))
        index_name = index_name or kind
        if index_name in dataset.indexes:
            raise ValueError("index %r already exists on dataset %r"
                             % (index_name, dataset.name))
        if self._seed is not None and kind in ("halfplane2d", "halfspace3d",
                                               "hybrid3d"):
            params.setdefault("seed", self._seed)
        started = time.perf_counter()
        index = index_kind.factory(dataset.points, store=dataset.store,
                                   **params)
        elapsed = time.perf_counter() - started
        record = BuildRecord(
            dataset=dataset.name,
            index_name=index_name,
            kind=kind,
            num_points=dataset.size,
            space_blocks=index.space_blocks,
            build_seconds=elapsed,
            build_ios=index.build_ios,
            params=dict(params),
        )
        dataset.indexes[index_name] = index
        dataset.build_records[index_name] = record
        return record

    def build_index(self, dataset_name: str, kind: str,
                    index_name: Optional[str] = None,
                    **params) -> BuildRecord:
        """Bulk-build one index of the given kind over a plain dataset.

        The index shares the dataset's store; the returned record captures
        the build's wall-clock time, write I/Os and space.  For sharded
        datasets use :meth:`build_sharded_index` (one build per shard).
        """
        if self.is_sharded(dataset_name):
            raise ValueError("dataset %r is sharded; use "
                             "build_sharded_index()" % dataset_name)
        return self._build_index_on(self.dataset(dataset_name), kind,
                                    index_name, **params)

    def build_sharded_index(self, dataset_name: str, kind: str,
                            index_name: Optional[str] = None,
                            **params) -> List[BuildRecord]:
        """Build one kind on every replica of every non-empty shard.

        The build — kind, index name *and* parameters — is recorded on
        the sharded dataset's ``suite_builds`` so a re-split
        (:meth:`resplit_sharded_dataset`) rebuilds the identical suite
        over the new shards.
        """
        sharded = self.sharded(dataset_name)
        records = [self._build_index_on(replica, kind, index_name,
                                        **dict(params))
                   for shard in sharded.nonempty_shards()
                   for replica in shard.replicas]
        # Record only after the builds succeeded: a phantom entry for a
        # failed build would make every later re-split fail mid-rebuild.
        effective_name = index_name or kind
        if all(build["index_name"] != effective_name
               for build in sharded.suite_builds):
            sharded.suite_builds.append({
                "kind": kind, "index_name": effective_name,
                "params": dict(params)})
        return records

    def build_suite(self, dataset_name: str,
                    kinds: Optional[Sequence[str]] = None) -> List[BuildRecord]:
        """Build a set of kinds (default: :func:`default_suite`) over a dataset.

        For a sharded dataset every kind is built on every non-empty shard
        (the per-shard records are returned in shard order per kind).
        """
        entry = self.entry(dataset_name)
        chosen = list(kinds) if kinds is not None else default_suite(
            entry.dimension)
        if self.is_sharded(dataset_name):
            records: List[BuildRecord] = []
            for kind in chosen:
                records.extend(self.build_sharded_index(dataset_name, kind))
            return records
        return [self.build_index(dataset_name, kind) for kind in chosen]

    @staticmethod
    def _sharded_key(shard_id: int, replica_id: int, index_name: str) -> str:
        """The catalog's flat key for one shard replica's index."""
        if replica_id == 0:
            return "%d/%s" % (shard_id, index_name)
        return "%d@r%d/%s" % (shard_id, replica_id, index_name)

    def indexes(self, dataset_name: str) -> Dict[str, ExternalIndex]:
        """Every index registered on a plain dataset, keyed by index name.

        For a sharded dataset the keys are ``<shard_id>/<index_name>``
        (primary replica) and ``<shard_id>@r<replica>/<index_name>``.
        """
        if self.is_sharded(dataset_name):
            return {
                self._sharded_key(shard.shard_id, replica_id, index_name):
                    index
                for shard in self.sharded(dataset_name).nonempty_shards()
                for replica_id, replica in enumerate(shard.replicas)
                for index_name, index in replica.indexes.items()
            }
        return dict(self.dataset(dataset_name).indexes)

    def build_records(self, dataset_name: str) -> Dict[str, BuildRecord]:
        """Build statistics for every index on a dataset (sharded: per replica)."""
        if self.is_sharded(dataset_name):
            return {
                self._sharded_key(shard.shard_id, replica_id, index_name):
                    record
                for shard in self.sharded(dataset_name).nonempty_shards()
                for replica_id, replica in enumerate(shard.replicas)
                for index_name, record in replica.build_records.items()
            }
        return dict(self.dataset(dataset_name).build_records)
