"""The engine's catalog: datasets, registered indexes and build statistics.

The :class:`Catalog` is the system-of-record the rest of the engine works
from.  It owns one shared :class:`~repro.io.store.BlockStore` per dataset
(so every index over the same data competes for the same buffer pool, as
it would on a real disk), knows how to bulk-build any combination of
:class:`~repro.core.interface.ExternalIndex` implementations over a
dataset, and records what each build cost (wall-clock, write I/Os, space).

It also keeps a small in-memory *sample* of every dataset.  Sampling is
the engine's only data statistic: the planner estimates a constraint's
selectivity by evaluating it on the sample (O(sample) arithmetic, zero
I/Os), which turns the paper's output-sensitive bounds into concrete
per-query cost predictions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import (
    FullScanIndex,
    KDBTreeIndex,
    PagedDualIndex2D,
    QuadTreeIndex,
    RTreeIndex,
)
from repro.core import (
    ExternalIndex,
    HalfplaneIndex2D,
    HalfspaceIndex3D,
    HybridIndex3D,
    PartitionTreeIndex,
    ShallowPartitionTreeIndex,
)
from repro.geometry.primitives import LinearConstraint
from repro.io.store import BlockStore, IOStats


@dataclass(frozen=True)
class IndexKind:
    """One buildable index family: constructor plus its dimension domain."""

    name: str
    factory: type
    dimensions: Optional[Tuple[int, ...]] = None  # None = any dimension >= 2

    def supports(self, dimension: int) -> bool:
        """True if this kind can index points of the given dimension."""
        return self.dimensions is None or dimension in self.dimensions


#: Every index family the catalog can build, keyed by its short kind name.
INDEX_KINDS: Dict[str, IndexKind] = {
    kind.name: kind
    for kind in (
        IndexKind("halfplane2d", HalfplaneIndex2D, (2,)),
        IndexKind("halfspace3d", HalfspaceIndex3D, (3,)),
        IndexKind("hybrid3d", HybridIndex3D, (3,)),
        IndexKind("partition_tree", PartitionTreeIndex, None),
        IndexKind("shallow_tree", ShallowPartitionTreeIndex, None),
        IndexKind("full_scan", FullScanIndex, None),
        IndexKind("rtree", RTreeIndex, None),
        IndexKind("kdb_tree", KDBTreeIndex, None),
        IndexKind("quadtree", QuadTreeIndex, (2,)),
        IndexKind("paged_cgl", PagedDualIndex2D, (2,)),
    )
}


def default_suite(dimension: int) -> List[str]:
    """The kinds the engine builds when the caller does not choose.

    One optimal structure for the dimension (when the paper provides one),
    the linear-size partition tree (handles conjunctions natively), and
    the full scan as the always-correct floor.
    """
    if dimension == 2:
        return ["halfplane2d", "partition_tree", "full_scan"]
    if dimension == 3:
        return ["halfspace3d", "partition_tree", "full_scan"]
    return ["partition_tree", "shallow_tree", "full_scan"]


@dataclass
class BuildRecord:
    """What one index build cost (what the catalog's stats report)."""

    dataset: str
    index_name: str
    kind: str
    num_points: int
    space_blocks: int
    build_seconds: float
    build_ios: Optional[IOStats]
    params: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        """JSON-friendly view (benchmarks persist these)."""
        return {
            "dataset": self.dataset,
            "index": self.index_name,
            "kind": self.kind,
            "num_points": self.num_points,
            "space_blocks": self.space_blocks,
            "build_seconds": self.build_seconds,
            "build_ios": self.build_ios.total if self.build_ios else None,
        }


@dataclass
class Dataset:
    """One registered point set: its shared store, its indexes, its sample."""

    name: str
    points: np.ndarray
    store: BlockStore
    sample: np.ndarray
    indexes: Dict[str, ExternalIndex] = field(default_factory=dict)
    build_records: Dict[str, BuildRecord] = field(default_factory=dict)

    @property
    def dimension(self) -> int:
        """Ambient dimension of the stored points."""
        return int(self.points.shape[1])

    @property
    def size(self) -> int:
        """Number of stored points (the paper's N)."""
        return int(self.points.shape[0])

    def estimate_selectivity(self, constraint: LinearConstraint) -> float:
        """Fraction of points expected to satisfy ``constraint``.

        Evaluated on the in-memory sample with one vectorised residual
        computation; never touches the simulated disk.
        """
        if constraint.dimension != self.dimension:
            raise ValueError(
                "constraint dimension %d does not match dataset dimension %d"
                % (constraint.dimension, self.dimension))
        residuals = (self.sample[:, -1]
                     - self.sample[:, :-1] @ np.asarray(constraint.coeffs))
        return float(np.mean(residuals <= constraint.offset))

    def estimate_output(self, constraint: LinearConstraint) -> int:
        """Expected number of reported points (the paper's T)."""
        return int(round(self.estimate_selectivity(constraint) * self.size))


class Catalog:
    """Registry of datasets and the indexes built over them.

    Parameters
    ----------
    block_size:
        Default block size B for datasets registered without one.
    cache_blocks:
        Default buffer-pool size for each dataset's shared store.
    sample_size:
        Number of points kept in memory per dataset for selectivity
        estimation (the whole dataset if smaller).
    seed:
        Seed for sampling and for the randomised index builds.
    """

    def __init__(self, block_size: int = 64, cache_blocks: int = 4,
                 sample_size: int = 512, seed: Optional[int] = None):
        self._block_size = block_size
        self._cache_blocks = cache_blocks
        self._sample_size = sample_size
        self._seed = seed
        self._datasets: Dict[str, Dataset] = {}

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------
    def register_dataset(self, name: str, points: Sequence[Sequence[float]],
                         block_size: Optional[int] = None,
                         cache_blocks: Optional[int] = None) -> Dataset:
        """Register a point set under ``name`` with its own shared store."""
        if name in self._datasets:
            raise ValueError("dataset %r is already registered" % name)
        array = np.asarray(points, dtype=float)
        if array.ndim != 2 or array.shape[0] == 0 or array.shape[1] < 2:
            raise ValueError("points must have shape (N >= 1, d >= 2), got %r"
                             % (array.shape,))
        store = BlockStore(
            block_size=block_size or self._block_size,
            cache_blocks=(self._cache_blocks if cache_blocks is None
                          else cache_blocks))
        rng = np.random.default_rng(self._seed)
        if len(array) <= self._sample_size:
            sample = array.copy()
        else:
            chosen = rng.choice(len(array), size=self._sample_size,
                                replace=False)
            sample = array[chosen]
        dataset = Dataset(name=name, points=array, store=store, sample=sample)
        self._datasets[name] = dataset
        return dataset

    def dataset(self, name: str) -> Dataset:
        """Look up a registered dataset (KeyError with the known names)."""
        if name not in self._datasets:
            raise KeyError("unknown dataset %r (registered: %s)"
                           % (name, sorted(self._datasets) or "none"))
        return self._datasets[name]

    def datasets(self) -> List[str]:
        """Names of every registered dataset."""
        return sorted(self._datasets)

    # ------------------------------------------------------------------
    # index builds
    # ------------------------------------------------------------------
    def build_index(self, dataset_name: str, kind: str,
                    index_name: Optional[str] = None,
                    **params) -> BuildRecord:
        """Bulk-build one index of the given kind over a dataset.

        The index shares the dataset's store; the returned record captures
        the build's wall-clock time, write I/Os and space.
        """
        dataset = self.dataset(dataset_name)
        if kind not in INDEX_KINDS:
            raise KeyError("unknown index kind %r (known: %s)"
                           % (kind, sorted(INDEX_KINDS)))
        index_kind = INDEX_KINDS[kind]
        if not index_kind.supports(dataset.dimension):
            raise ValueError("index kind %r does not support dimension %d"
                             % (kind, dataset.dimension))
        index_name = index_name or kind
        if index_name in dataset.indexes:
            raise ValueError("index %r already exists on dataset %r"
                             % (index_name, dataset_name))
        if self._seed is not None and kind in ("halfplane2d", "halfspace3d",
                                               "hybrid3d"):
            params.setdefault("seed", self._seed)
        started = time.perf_counter()
        index = index_kind.factory(dataset.points, store=dataset.store,
                                   **params)
        elapsed = time.perf_counter() - started
        record = BuildRecord(
            dataset=dataset_name,
            index_name=index_name,
            kind=kind,
            num_points=dataset.size,
            space_blocks=index.space_blocks,
            build_seconds=elapsed,
            build_ios=index.build_ios,
            params=dict(params),
        )
        dataset.indexes[index_name] = index
        dataset.build_records[index_name] = record
        return record

    def build_suite(self, dataset_name: str,
                    kinds: Optional[Sequence[str]] = None) -> List[BuildRecord]:
        """Build a set of kinds (default: :func:`default_suite`) over a dataset."""
        dataset = self.dataset(dataset_name)
        chosen = list(kinds) if kinds is not None else default_suite(
            dataset.dimension)
        return [self.build_index(dataset_name, kind) for kind in chosen]

    def indexes(self, dataset_name: str) -> Dict[str, ExternalIndex]:
        """Every index registered on a dataset, keyed by index name."""
        return dict(self.dataset(dataset_name).indexes)

    def build_records(self, dataset_name: str) -> Dict[str, BuildRecord]:
        """Build statistics for every index on a dataset."""
        return dict(self.dataset(dataset_name).build_records)
