"""The cost-based planner: route each query to the cheapest index.

For a dataset with several registered indexes, the planner predicts what
each index would charge for a given constraint and picks the minimum.  The
prediction has two factors:

* the *model* term — each index's
  :meth:`~repro.core.interface.ExternalIndex.estimated_query_ios`, i.e. the
  paper's asymptotic bound (``log_B n + t`` for the optimal structures,
  ``n^{1-1/d} + t`` for the partition tree, ``n`` for a scan) evaluated
  with the expected output size from the dataset's selectivity model
  (:mod:`repro.engine.stats` — a uniform sample by default, directional
  histograms for skewed data; sharded datasets are priced with each
  shard child's *own* model);
* a *calibration* factor — an exponentially-weighted running ratio of
  observed I/Os (from ``query_with_stats`` history fed back by the
  executor) to predicted I/Os, per (dataset, index).  Asymptotic bounds
  drop constants; calibration learns them from traffic, so a structure
  whose real constant is large gradually loses ties it should lose.

For a sharded dataset the planner prices a query as the *sum over relevant
shards* of the per-shard paper bound: it asks the dataset which shards the
constraint can touch (range shards outside the constraint's reach are
pruned via their bounding boxes), plans each relevant shard independently
over its own index suite, and returns a :class:`ShardedPlan` whose cost is
the fan-out total.  Calibration is keyed by (dataset, index) *across*
shards — shards of one dataset are statistically alike, so they share and
jointly sharpen one learned constant per structure.

Calibration state is exportable/restorable as a plain dict so a serving
deployment can persist what it learned across restarts (see
:mod:`repro.engine.calibration` for the on-disk store with age-out).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import repro.engine.tracing as tracing
from repro.core.conjunction import ConstraintConjunction
from repro.engine.catalog import Catalog, Dataset
from repro.engine.sharding import Shard, ShardedDataset
from repro.engine.stats.conformal import ConformalCalibrator
from repro.geometry.primitives import LinearConstraint

#: One calibration feedback sample: (index_name, model_ios, observed_ios).
Observation = Tuple[str, float, int]

#: Calibration factors are clamped to this range so one outlier
#: observation can never permanently blacklist (or anoint) an index.
MIN_FACTOR = 0.05
MAX_FACTOR = 20.0


@dataclass(frozen=True)
class CandidateEstimate:
    """The planner's prediction for one candidate index."""

    index_name: str
    model_ios: float
    calibration: float

    @property
    def cost(self) -> float:
        """Calibrated predicted I/Os (what the planner minimises)."""
        return self.model_ios * self.calibration


@dataclass(frozen=True)
class Plan:
    """The planner's decision for one query."""

    dataset: str
    index_name: str
    expected_output: int
    estimates: Tuple[CandidateEstimate, ...]
    #: Conformal interval around ``expected_output`` (None while the
    #: dataset's calibration window is cold — estimates are then points
    #: with no certified uncertainty).
    output_interval: Optional[Tuple[int, int]] = None

    @property
    def estimated_ios(self) -> float:
        """Predicted cost of the chosen index."""
        return self.chosen.cost

    @property
    def chosen(self) -> CandidateEstimate:
        """The winning candidate's estimate."""
        for estimate in self.estimates:
            if estimate.index_name == self.index_name:
                return estimate
        raise AssertionError("plan lost its own chosen index %r"
                             % self.index_name)

    def explain(self) -> str:
        """One line per candidate, winner first (for logs and examples)."""
        ordered = sorted(self.estimates, key=lambda est: est.cost)
        band = "" if self.output_interval is None \
            else " in [%d, %d]" % self.output_interval
        lines = ["plan for dataset %r (expected T=%d%s):"
                 % (self.dataset, self.expected_output, band)]
        for rank, estimate in enumerate(ordered):
            marker = "->" if rank == 0 else "  "
            lines.append("  %s %-16s %8.1f predicted I/Os"
                         " (model %.1f x calibration %.2f)"
                         % (marker, estimate.index_name, estimate.cost,
                            estimate.model_ios, estimate.calibration))
        return "\n".join(lines)


@dataclass(frozen=True)
class ShardedPlan:
    """The planner's decision for one query against a sharded dataset.

    ``shard_plans`` holds one (shard_id, :class:`Plan`) pair per relevant
    shard — shards whose bounding box cannot contain a satisfying point
    are pruned and appear only in the ``shards_pruned`` count.
    """

    dataset: str
    expected_output: int
    shard_plans: Tuple[Tuple[int, Plan], ...]
    num_shards: int
    #: The sharded dataset's re-split generation this plan was made
    #: against; the executor re-plans when a rebalance has bumped it.
    generation: int = 0
    #: Element-wise sum of the relevant shards' conformal intervals
    #: (None until every relevant shard's dataset window is warm).
    output_interval: Optional[Tuple[int, int]] = None

    @property
    def estimated_ios(self) -> float:
        """Predicted fan-out cost: sum of the per-shard chosen costs."""
        return sum(plan.estimated_ios for __, plan in self.shard_plans)

    @property
    def shards_queried(self) -> int:
        """How many shards the query fans out to."""
        return len(self.shard_plans)

    @property
    def shards_pruned(self) -> int:
        """How many shards the leading-attribute/box pruning skipped."""
        return self.num_shards - len(self.shard_plans)

    @property
    def index_name(self) -> str:
        """Summary label of the chosen per-shard indexes (for metrics)."""
        names = sorted({plan.index_name for __, plan in self.shard_plans})
        if not names:
            return "pruned"
        if len(names) == 1:
            return names[0]
        return "mixed(%s)" % "+".join(names)

    def explain(self) -> str:
        """Fan-out summary plus each relevant shard's plan."""
        band = "" if self.output_interval is None \
            else " in [%d, %d]" % self.output_interval
        lines = ["sharded plan for dataset %r (expected T=%d%s): "
                 "%d/%d shards relevant, %d pruned, %.1f predicted I/Os"
                 % (self.dataset, self.expected_output, band,
                    self.shards_queried,
                    self.num_shards, self.shards_pruned, self.estimated_ios)]
        for shard_id, plan in self.shard_plans:
            lines.append("  shard %d -> %s (%.1f predicted I/Os)"
                         % (shard_id, plan.index_name, plan.estimated_ios))
        return "\n".join(lines)


#: What :meth:`Planner.plan` returns: a single-store plan or a fan-out plan.
AnyPlan = Union[Plan, ShardedPlan]


@dataclass
class _Calibration:
    """Running observed/predicted ratio for one (dataset, index)."""

    factor: float = 1.0
    observations: int = 0
    updated_at: float = 0.0


class Planner:
    """Pick the cheapest index for each constraint, learning from history.

    Parameters
    ----------
    catalog:
        The catalog holding datasets and their candidate indexes.
    ewma_alpha:
        Weight of the newest observed/predicted ratio in the calibration
        factor (0 disables learning, 1 trusts only the last query).
    conformal:
        Optional :class:`ConformalCalibrator` (the engine passes its
        stats') — when set, every plan carries a conformal
        ``output_interval`` around ``expected_output`` once the
        dataset's calibration window is warm.
    """

    def __init__(self, catalog: Catalog, ewma_alpha: float = 0.25,
                 conformal: Optional[ConformalCalibrator] = None):
        if not 0.0 <= ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must lie in [0, 1], got %r"
                             % ewma_alpha)
        self._catalog = catalog
        self._alpha = ewma_alpha
        self._conformal = conformal
        self._calibrations: Dict[Tuple[str, str], _Calibration] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    @staticmethod
    def _routable_indexes(dataset: Dataset) -> Dict[str, object]:
        """The candidate indexes the planner may route to.

        Once a dataset has mutated (an insert/delete through a dynamic
        index), its statically-built indexes no longer reflect the data —
        routing to them would silently drop the update.  Only
        mutation-aware indexes (those publishing ``add_mutation_listener``)
        stay routable from that point on.
        """
        if not dataset.mutated:
            return dataset.indexes
        fresh = {
            name: index for name, index in dataset.indexes.items()
            if callable(getattr(index, "add_mutation_listener", None))}
        return fresh or dataset.indexes

    def _plan_dataset(self, dataset: Dataset, calibration_name: str,
                      constraint: LinearConstraint) -> Plan:
        """Plan over one concrete dataset (a plain one or a shard child)."""
        if not dataset.indexes:
            raise ValueError("dataset %r has no indexes to plan over"
                             % dataset.name)
        expected_output = dataset.estimate_output(constraint)
        estimates = tuple(
            CandidateEstimate(
                index_name=name,
                model_ios=index.estimated_query_ios(constraint,
                                                    expected_output),
                calibration=self.calibration_factor(calibration_name, name),
            )
            for name, index in sorted(
                self._routable_indexes(dataset).items()))
        winner = min(estimates, key=lambda est: (est.cost, est.index_name))
        # Conformal residuals are calibrated per *dataset* (shard children
        # feed their parent's window through note_estimation), so shard
        # plans are banded by the parent's key.
        interval = None if self._conformal is None else \
            self._conformal.interval(calibration_name, expected_output,
                                     population=dataset.live_size)
        return Plan(dataset=dataset.name,
                    index_name=winner.index_name,
                    expected_output=expected_output, estimates=estimates,
                    output_interval=interval)

    def plan(self, dataset_name: str,
             constraint: LinearConstraint) -> AnyPlan:
        """Choose the cheapest index (or per-shard indexes) for a constraint.

        Plain datasets yield a :class:`Plan`; sharded datasets yield a
        :class:`ShardedPlan` covering exactly the relevant shards.
        """
        with tracing.span("planner.plan") as span:
            if self._catalog.is_sharded(dataset_name):
                sharded = self._catalog.sharded(dataset_name)
                plan = self._plan_sharded(
                    sharded, constraint, sharded.relevant_shards(constraint))
            else:
                plan = self._plan_dataset(
                    self._catalog.dataset(dataset_name), dataset_name,
                    constraint)
            if span.enabled:
                self._annotate_plan_span(span, dataset_name, plan)
            return plan

    def _plan_sharded(self, sharded: ShardedDataset,
                      constraint: LinearConstraint,
                      relevant: "list[Shard]") -> ShardedPlan:
        # Plan against each shard's *routing* replica: before any mutation
        # that is replica 0, and after a mutation it is the replica holding
        # the fresh data (whose routable indexes exclude stale statics).
        shard_plans = tuple(
            (shard.shard_id,
             self._plan_dataset(shard.planning_dataset(), sharded.name,
                                constraint))
            for shard in relevant)
        # The fan-out's expected output is the sum of the *shard-local*
        # estimates (each shard child owns its own selectivity model) —
        # on skewed data the per-shard models see their shard's
        # distribution, where the single global estimate would not.
        # Its interval is the element-wise sum of the shard intervals
        # (every relevant shard banded, or no band at all).
        intervals = [plan.output_interval for __, plan in shard_plans]
        interval = None
        if intervals and all(pair is not None for pair in intervals):
            interval = (sum(low for low, __ in intervals),
                        sum(high for __, high in intervals))
        return ShardedPlan(dataset=sharded.name,
                           expected_output=sum(
                               plan.expected_output
                               for __, plan in shard_plans),
                           shard_plans=shard_plans,
                           num_shards=sharded.num_shards,
                           generation=sharded.generation,
                           output_interval=interval)

    def plan_conjunction(self, dataset_name: str,
                         conjunction: ConstraintConjunction) -> AnyPlan:
        """Choose an index for a conjunction of constraints.

        Non-simplex indexes answer a conjunction by running its most
        selective conjunct and filtering (see :mod:`repro.core.conjunction`),
        so each candidate is costed with that conjunct's expected output;
        the executor then evaluates the conjunction through
        :func:`~repro.core.conjunction.query_conjunction`.  On a sharded
        dataset every conjunct participates in pruning (any one conjunct
        missing a shard's box excludes the shard).
        """
        with tracing.span("planner.plan_conjunction",
                          conjuncts=len(conjunction.constraints)) as span:
            if self._catalog.is_sharded(dataset_name):
                sharded = self._catalog.sharded(dataset_name)
                best = min(conjunction.constraints,
                           key=lambda c: sharded.estimate_output(c))
                plan = self._plan_sharded(
                    sharded, best,
                    sharded.relevant_shards_conjunction(conjunction))
            else:
                dataset = self._catalog.dataset(dataset_name)
                best = min(
                    conjunction.constraints,
                    key=lambda constraint:
                    dataset.estimate_output(constraint))
                plan = self.plan(dataset_name, best)
            if span.enabled:
                self._annotate_plan_span(span, dataset_name, plan)
            return plan

    def _annotate_plan_span(self, span, dataset_name: str,
                            plan: AnyPlan) -> None:
        """Attach the chosen plan's estimates to an open planner span."""
        span.set_many({
            "dataset": dataset_name,
            "index": plan.index_name,
            "expected_output": round(float(plan.expected_output), 2),
            "estimated_ios": round(float(plan.estimated_ios), 2),
        })
        if plan.output_interval is not None:
            span.set("output_interval", list(plan.output_interval))
        if isinstance(plan, ShardedPlan):
            span.set_many({
                "shards_queried": len(plan.shard_plans),
                "shards_pruned":
                    plan.num_shards - len(plan.shard_plans),
                "generation": plan.generation,
            })
        else:
            span.set("calibration",
                     round(plan.chosen.calibration, 4))

    # ------------------------------------------------------------------
    # calibration
    # ------------------------------------------------------------------
    def calibration_factor(self, dataset_name: str, index_name: str) -> float:
        """Current observed/predicted ratio for one (dataset, index)."""
        with self._lock:
            entry = self._calibrations.get((dataset_name, index_name))
            return entry.factor if entry else 1.0

    def _observe_locked(self, dataset_name: str, index_name: str,
                        model_ios: float, observed_ios: int) -> None:
        """One EWMA update; the caller must hold :attr:`_lock`."""
        if model_ios <= 0:
            return
        ratio = max(observed_ios, 1) / model_ios
        key = (dataset_name, index_name)
        entry = self._calibrations.setdefault(key, _Calibration())
        if entry.observations == 0:
            blended = ratio
        else:
            blended = (1.0 - self._alpha) * entry.factor \
                + self._alpha * ratio
        entry.factor = min(MAX_FACTOR, max(MIN_FACTOR, blended))
        entry.observations += 1
        entry.updated_at = time.time()

    def observe(self, dataset_name: str, index_name: str,
                model_ios: float, observed_ios: int) -> None:
        """Feed back one executed query's (model estimate, observed) pair.

        ``model_ios`` must be the *uncalibrated* estimate (the
        ``estimated_query_ios`` value): the EWMA of ``observed / model``
        then converges to the structure's true constant factor.  The very
        first observation snaps the factor directly so a cold planner
        learns a grossly mispredicted constant after one query.

        The read-modify-write of the EWMA happens entirely under the
        planner's lock, so concurrent feedback from fan-out workers or the
        async executor can never lose an update.
        """
        with self._lock:
            self._observe_locked(dataset_name, index_name, model_ios,
                                 observed_ios)

    def observe_many(self, dataset_name: str,
                     observations: Sequence[Observation]) -> None:
        """Apply a batch of feedback samples under one lock acquisition.

        The sharded fan-out path produces one (model, observed) pair per
        relevant shard; merging them per query keeps the per-shard EWMA
        semantics of calling :meth:`observe` in a loop while making the
        whole batch atomic with respect to concurrent planners — and it
        halves the lock traffic the async executor generates.
        """
        with self._lock:
            for index_name, model_ios, observed_ios in observations:
                self._observe_locked(dataset_name, index_name, model_ios,
                                     observed_ios)

    def export_calibration(self) -> Dict[str, Dict[str, object]]:
        """Calibration state as a JSON-friendly dict (persist across runs).

        Each entry carries the wall-clock time of its last observation so
        the on-disk store (:mod:`repro.engine.calibration`) can age out
        constants learned from traffic that is no longer representative.
        """
        with self._lock:
            return {
                "%s/%s" % key: {"factor": entry.factor,
                                "observations": entry.observations,
                                "updated_at": entry.updated_at}
                for key, entry in self._calibrations.items()
            }

    def load_calibration(self, state: Dict[str, Dict[str, object]]) -> None:
        """Restore calibration exported by :meth:`export_calibration`."""
        with self._lock:
            for joined, payload in state.items():
                dataset_name, _, index_name = joined.partition("/")
                self._calibrations[(dataset_name, index_name)] = _Calibration(
                    factor=float(payload["factor"]),
                    observations=int(payload["observations"]),
                    updated_at=float(payload.get("updated_at", 0.0)),
                )
