"""The cost-based planner: route each query to the cheapest index.

For a dataset with several registered indexes, the planner predicts what
each index would charge for a given constraint and picks the minimum.  The
prediction has two factors:

* the *model* term — each index's
  :meth:`~repro.core.interface.ExternalIndex.estimated_query_ios`, i.e. the
  paper's asymptotic bound (``log_B n + t`` for the optimal structures,
  ``n^{1-1/d} + t`` for the partition tree, ``n`` for a scan) evaluated
  with the expected output size from the catalog's sample;
* a *calibration* factor — an exponentially-weighted running ratio of
  observed I/Os (from ``query_with_stats`` history fed back by the
  executor) to predicted I/Os, per (dataset, index).  Asymptotic bounds
  drop constants; calibration learns them from traffic, so a structure
  whose real constant is large gradually loses ties it should lose.

Calibration state is exportable/restorable as a plain dict so a serving
deployment can persist what it learned across restarts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.conjunction import ConstraintConjunction
from repro.engine.catalog import Catalog
from repro.geometry.primitives import LinearConstraint

#: Calibration factors are clamped to this range so one outlier
#: observation can never permanently blacklist (or anoint) an index.
MIN_FACTOR = 0.05
MAX_FACTOR = 20.0


@dataclass(frozen=True)
class CandidateEstimate:
    """The planner's prediction for one candidate index."""

    index_name: str
    model_ios: float
    calibration: float

    @property
    def cost(self) -> float:
        """Calibrated predicted I/Os (what the planner minimises)."""
        return self.model_ios * self.calibration


@dataclass(frozen=True)
class Plan:
    """The planner's decision for one query."""

    dataset: str
    index_name: str
    expected_output: int
    estimates: Tuple[CandidateEstimate, ...]

    @property
    def estimated_ios(self) -> float:
        """Predicted cost of the chosen index."""
        return self.chosen.cost

    @property
    def chosen(self) -> CandidateEstimate:
        """The winning candidate's estimate."""
        for estimate in self.estimates:
            if estimate.index_name == self.index_name:
                return estimate
        raise AssertionError("plan lost its own chosen index %r"
                             % self.index_name)

    def explain(self) -> str:
        """One line per candidate, winner first (for logs and examples)."""
        ordered = sorted(self.estimates, key=lambda est: est.cost)
        lines = ["plan for dataset %r (expected T=%d):"
                 % (self.dataset, self.expected_output)]
        for rank, estimate in enumerate(ordered):
            marker = "->" if rank == 0 else "  "
            lines.append("  %s %-16s %8.1f predicted I/Os"
                         " (model %.1f x calibration %.2f)"
                         % (marker, estimate.index_name, estimate.cost,
                            estimate.model_ios, estimate.calibration))
        return "\n".join(lines)


@dataclass
class _Calibration:
    """Running observed/predicted ratio for one (dataset, index)."""

    factor: float = 1.0
    observations: int = 0


class Planner:
    """Pick the cheapest index for each constraint, learning from history.

    Parameters
    ----------
    catalog:
        The catalog holding datasets and their candidate indexes.
    ewma_alpha:
        Weight of the newest observed/predicted ratio in the calibration
        factor (0 disables learning, 1 trusts only the last query).
    """

    def __init__(self, catalog: Catalog, ewma_alpha: float = 0.25):
        if not 0.0 <= ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must lie in [0, 1], got %r"
                             % ewma_alpha)
        self._catalog = catalog
        self._alpha = ewma_alpha
        self._calibrations: Dict[Tuple[str, str], _Calibration] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, dataset_name: str,
             constraint: LinearConstraint) -> Plan:
        """Choose the cheapest index for a single linear constraint."""
        dataset = self._catalog.dataset(dataset_name)
        if not dataset.indexes:
            raise ValueError("dataset %r has no indexes to plan over"
                             % dataset_name)
        expected_output = dataset.estimate_output(constraint)
        estimates = tuple(
            CandidateEstimate(
                index_name=name,
                model_ios=index.estimated_query_ios(constraint,
                                                    expected_output),
                calibration=self.calibration_factor(dataset_name, name),
            )
            for name, index in sorted(dataset.indexes.items()))
        winner = min(estimates, key=lambda est: (est.cost, est.index_name))
        return Plan(dataset=dataset_name, index_name=winner.index_name,
                    expected_output=expected_output, estimates=estimates)

    def plan_conjunction(self, dataset_name: str,
                         conjunction: ConstraintConjunction) -> Plan:
        """Choose an index for a conjunction of constraints.

        Non-simplex indexes answer a conjunction by running its most
        selective conjunct and filtering (see :mod:`repro.core.conjunction`),
        so each candidate is costed with that conjunct's expected output;
        the executor then evaluates the conjunction through
        :func:`~repro.core.conjunction.query_conjunction`.
        """
        dataset = self._catalog.dataset(dataset_name)
        best = min(conjunction.constraints,
                   key=lambda constraint: dataset.estimate_output(constraint))
        return self.plan(dataset_name, best)

    # ------------------------------------------------------------------
    # calibration
    # ------------------------------------------------------------------
    def calibration_factor(self, dataset_name: str, index_name: str) -> float:
        """Current observed/predicted ratio for one (dataset, index)."""
        with self._lock:
            entry = self._calibrations.get((dataset_name, index_name))
            return entry.factor if entry else 1.0

    def observe(self, dataset_name: str, index_name: str,
                model_ios: float, observed_ios: int) -> None:
        """Feed back one executed query's (model estimate, observed) pair.

        ``model_ios`` must be the *uncalibrated* estimate (the
        ``estimated_query_ios`` value): the EWMA of ``observed / model``
        then converges to the structure's true constant factor.  The very
        first observation snaps the factor directly so a cold planner
        learns a grossly mispredicted constant after one query.
        """
        if model_ios <= 0:
            return
        ratio = max(observed_ios, 1) / model_ios
        with self._lock:
            key = (dataset_name, index_name)
            entry = self._calibrations.setdefault(key, _Calibration())
            if entry.observations == 0:
                blended = ratio
            else:
                blended = (1.0 - self._alpha) * entry.factor \
                    + self._alpha * ratio
            entry.factor = min(MAX_FACTOR, max(MIN_FACTOR, blended))
            entry.observations += 1

    def export_calibration(self) -> Dict[str, Dict[str, object]]:
        """Calibration state as a JSON-friendly dict (persist across runs)."""
        with self._lock:
            return {
                "%s/%s" % key: {"factor": entry.factor,
                                "observations": entry.observations}
                for key, entry in self._calibrations.items()
            }

    def load_calibration(self, state: Dict[str, Dict[str, object]]) -> None:
        """Restore calibration exported by :meth:`export_calibration`."""
        with self._lock:
            for joined, payload in state.items():
                dataset_name, _, index_name = joined.partition("/")
                self._calibrations[(dataset_name, index_name)] = _Calibration(
                    factor=float(payload["factor"]),
                    observations=int(payload["observations"]),
                )
