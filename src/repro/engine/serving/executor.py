"""The asyncio executor: per-request scheduling for multi-tenant serving.

:class:`AsyncExecutor` is the asyncio twin of
:class:`~repro.engine.executor.BatchExecutor`.  The batch path serializes
each dataset's requests in arrival order, so one tenant issuing expensive
queries head-of-line-blocks every other tenant of that dataset.  This
executor instead schedules *per request*:

* requests wait in a :class:`~repro.engine.serving.queue.
  PriorityRequestQueue` ordered by (priority, deadline, arrival) —
  **mutations included**: an ``op="insert"``/``"delete"`` request rides
  the same queue and executes through the engine's routed write-fanout
  path (:class:`~repro.engine.writes.WritePath`), so writes obey the
  same priorities, deadlines and budgets as reads;
* before dispatch each request passes **admission control** — a
  token-bucket I/O budget per tenant with queue/reject/degrade policies
  (see :mod:`repro.engine.serving.admission`; an over-budget *write*
  under the degrade policy is rejected — there is no approximate
  insert);
* admitted requests execute on worker threads (up to ``max_concurrency``
  at once) through the *same*
  :class:`~repro.engine.executor.ExecutionCore` the synchronous path
  uses, so planning, calibration feedback, result caching and metrics
  cannot diverge between the two;
* observed I/Os are settled back into the tenant's bucket, and queue
  depth / admission decisions / per-replica load land in
  :class:`~repro.engine.metrics.EngineStats`.

Scheduling (queue pops, admission, settling) runs entirely on the event
loop; only plan execution leaves it.  The clock is injectable so tests
drive budgets deterministically.

The executor serves in two modes sharing the same scheduler steps:

* :meth:`AsyncExecutor.serve` — the original *wave* mode: one call takes
  a whole request sequence, runs it to completion and returns the
  outcomes in request order;
* the *long-lived* mode — :meth:`AsyncExecutor.start` spawns a
  persistent scheduler task on the running event loop, after which any
  number of concurrently-executing coroutines (the network front-end's
  connection handlers) :meth:`AsyncExecutor.submit` single requests and
  await their outcomes, all sharing one queue, one admission controller
  and one concurrency cap.  :meth:`AsyncExecutor.stop` drains: queued
  and in-flight requests finish, new submissions are refused.
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import repro.engine.tracing as tracing
from repro.engine.executor import ExecutedQuery, ExecutionCore, constraint_key
from repro.engine.metrics import percentile
from repro.engine.serving.admission import (
    AdmissionController,
    scaled_count_estimate,
)
from repro.engine.sharding import sample_hits
from repro.engine.serving.queue import (
    PriorityRequestQueue,
    QueuedRequest,
    ServingRequest,
)
from repro.engine.writes import MutationResult
from repro.io.store import IOStats

#: Floor on admission-deferral waits so a drained bucket cannot spin-loop.
_MIN_RETRY_S = 1e-3


@dataclass
class _RunState:
    """Mutable scheduling state of one :meth:`AsyncExecutor.serve` run."""

    #: Worker futures currently executing, with their queue items.
    in_flight: Dict[asyncio.Future, QueuedRequest] = field(
        default_factory=dict)
    #: The (dataset, constraint) keys currently executing (leaders).
    keys: Set[Tuple] = field(default_factory=set)
    #: Identical requests attached to an in-flight leader: later arrivals
    #: wait for the leader's answer instead of re-executing (and without
    #: re-charging their tenant's budget) — the async mirror of the batch
    #: path's constraint dedup.
    followers: Dict[Tuple, List[QueuedRequest]] = field(default_factory=dict)


@dataclass
class ServedRequest:
    """One request's outcome in an async serving run."""

    request: ServingRequest
    #: "served", "degraded", "rejected", "expired" or "failed".
    outcome: str
    answer: Optional[ExecutedQuery]
    #: Submission-to-completion wall time (what a client experiences).
    turnaround_s: float
    #: Time spent waiting in the queue (turnaround minus execution).
    queue_wait_s: float
    #: How many times admission control parked the request.
    deferrals: int = 0
    #: The exception message when ``outcome`` is "failed".
    error: Optional[str] = None
    #: The applied mutation when the request was an insert/delete
    #: (``answer`` stays None for mutations).
    mutation: Optional[MutationResult] = None


@dataclass
class ServeResult:
    """Outcome of one async serving run, in request order."""

    requests: List[ServedRequest]
    wall_seconds: float

    @property
    def total_ios(self) -> int:
        """Block transfers charged across every served request (writes
        included)."""
        return sum(item.answer.total_ios for item in self.requests
                   if item.answer is not None) \
            + sum(item.mutation.ios for item in self.requests
                  if item.mutation is not None)

    def outcomes(self) -> Dict[str, int]:
        """How many requests ended in each outcome."""
        return dict(Counter(item.outcome for item in self.requests))

    def for_tenant(self, tenant: str) -> List[ServedRequest]:
        """The subset of outcomes belonging to one tenant, in order."""
        return [item for item in self.requests
                if item.request.tenant == tenant]

    def turnaround_percentile(self, tenant: Optional[str] = None,
                              fraction: float = 0.95) -> float:
        """Turnaround percentile over (one tenant's) *completed* requests.

        Only requests that produced an answer ("served" / "degraded")
        participate: a rejected or expired request returns near-instantly
        precisely because it was dropped, and mixing those zeros in would
        make a mostly-shed tenant look fast.
        """
        chosen = self.requests if tenant is None else self.for_tenant(tenant)
        ordered = sorted(item.turnaround_s for item in chosen
                         if item.outcome in ("served", "degraded"))
        return percentile(ordered, fraction)


class AsyncExecutor:
    """Serve multi-tenant request streams with per-request scheduling.

    Parameters
    ----------
    core:
        The shared :class:`~repro.engine.executor.ExecutionCore` to run
        plans through (the engine facade passes its executor's core, so
        sync and async traffic share one result cache and one metrics
        sink).
    admission:
        Per-tenant budgets; an empty controller (admit everything) when
        omitted.
    max_concurrency:
        Requests executing at once; the rest wait in the queue.
    warm_cache_blocks:
        Buffer-pool size applied to the touched datasets' stores for the
        duration of a :meth:`serve` run (original sizes are restored).
    clock:
        Monotonic time source for deadlines and bucket refills; tests
        inject synthetic clocks.
    """

    def __init__(self, core: ExecutionCore,
                 admission: Optional[AdmissionController] = None,
                 max_concurrency: int = 8,
                 warm_cache_blocks: int = 64,
                 clock=time.monotonic):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1, got %r"
                             % max_concurrency)
        self._core = core
        self._admission = admission if admission is not None \
            else AdmissionController()
        self._max_concurrency = max_concurrency
        self._warm_cache_blocks = warm_cache_blocks
        self._clock = clock
        # Long-lived mode state (None until start() is awaited).
        self._live_queue: Optional[PriorityRequestQueue] = None
        self._live_state: Optional[_RunState] = None
        self._live_task: Optional[asyncio.Task] = None
        self._live_futures: Dict[int, asyncio.Future] = {}
        self._live_seq = 0
        self._wakeup: Optional[asyncio.Event] = None
        self._draining = False

    @property
    def admission(self) -> AdmissionController:
        """The admission controller (token balances are inspectable)."""
        return self._admission

    @property
    def stats(self):
        """The shared metrics sink (same object as the sync executor's)."""
        return self._core.stats

    @property
    def core(self):
        """The shared execution core (same object as the sync executor's)."""
        return self._core

    def rebind_admission(self, admission: AdmissionController) -> None:
        """Swap the admission controller while the scheduler is stopped.

        A restarted server binds a fresh key set (and therefore fresh
        budgets); swapping budget state out from under a *live*
        scheduler would silently reset every tenant's balance, so that
        raises instead.
        """
        if self.running:
            raise ValueError(
                "cannot rebind the admission controller of a running "
                "executor; stop it first (or reuse executor.admission)")
        self._admission = admission

    @property
    def warm_cache_blocks(self) -> int:
        """Buffer-pool size the serving paths warm touched stores to."""
        return self._warm_cache_blocks

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    async def serve(self, requests: Sequence[ServingRequest],
                    warm_cache: bool = True) -> ServeResult:
        """Serve a request stream; returns outcomes in request order.

        The scheduler loop pops the best runnable request, applies its
        tenant's admission policy, and dispatches admitted work to worker
        threads — so an over-budget or low-priority tenant's requests wait
        while everyone else's keep flowing.
        """
        started = time.perf_counter()
        if not requests:
            return ServeResult(requests=[], wall_seconds=0.0)
        queue = PriorityRequestQueue()
        submitted = self._clock()
        for seq, request in enumerate(requests):
            item = QueuedRequest(request=request, seq=seq,
                                 enqueued_at=submitted)
            item.span, item.trace, item.owns_trace = \
                self._open_request_span(request)
            queue.push(item)
        outcomes: List[Optional[ServedRequest]] = [None] * len(requests)
        state = _RunState()
        in_flight = state.in_flight
        loop = asyncio.get_running_loop()

        warmed = sorted({request.dataset for request in requests}) \
            if warm_cache else []
        with self._core.warm_stores(warmed, self._warm_cache_blocks):
            while queue or in_flight:
                self._core.stats.note_queue_depth(len(queue))
                while len(in_flight) < self._max_concurrency:
                    now = self._clock()
                    item = queue.pop_ready(now)
                    if item is None:
                        break
                    outcome = self._admit_one(loop, queue, state, item, now)
                    if outcome is not None:
                        outcomes[item.seq] = outcome
                if in_flight:
                    timeout = None
                    if len(in_flight) < self._max_concurrency:
                        # A parked request may become runnable before any
                        # in-flight query completes.
                        timeout = queue.next_ready_delay(self._clock())
                    done, __ = await asyncio.wait(
                        set(in_flight), timeout=timeout,
                        return_when=asyncio.FIRST_COMPLETED)
                    for future in done:
                        item = in_flight.pop(future)
                        for seq, outcome in self._complete(state, item,
                                                           future, queue):
                            outcomes[seq] = outcome
                elif queue:
                    before_sleep = self._clock()
                    delay = queue.next_ready_delay(before_sleep)
                    if delay:
                        await asyncio.sleep(delay)
                        if self._clock() <= before_sleep:
                            # An injected clock that does not advance with
                            # the event loop would park this request (and
                            # the scheduler) forever; fail loudly instead
                            # of livelocking.
                            raise RuntimeError(
                                "AsyncExecutor clock did not advance "
                                "across a %.3fs scheduler sleep; an "
                                "injected clock must move forward for "
                                "parked requests to become runnable"
                                % delay)
        return ServeResult(
            requests=[outcome for outcome in outcomes if outcome is not None],
            wall_seconds=time.perf_counter() - started)

    # ------------------------------------------------------------------
    # long-lived mode: a persistent scheduler fed one request at a time
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """True while the long-lived scheduler task is alive."""
        return self._live_task is not None and not self._live_task.done()

    async def start(self) -> None:
        """Spawn the persistent scheduler on the running event loop.

        Idempotent while running.  Unlike :meth:`serve`, the long-lived
        scheduler owns no buffer-pool warming (a server warms stores for
        its whole lifetime, not per wave) and never exits on an empty
        queue — it sleeps until :meth:`submit` wakes it, until
        :meth:`stop` drains it.
        """
        if self.running:
            return
        self._live_queue = PriorityRequestQueue()
        self._live_state = _RunState()
        self._live_futures = {}
        self._live_seq = 0
        self._draining = False
        self._wakeup = asyncio.Event()
        self._live_task = asyncio.get_running_loop().create_task(
            self._run_live())

    async def submit(self, request: ServingRequest) -> ServedRequest:
        """Enqueue one request on the persistent scheduler and await it.

        Any number of coroutines may submit concurrently; their requests
        share the priority queue, the admission controller's budgets,
        the follower dedup and the concurrency cap exactly as a
        :meth:`serve` wave would.  Raises :class:`RuntimeError` when the
        scheduler is not running or is draining.
        """
        if not self.running:
            raise RuntimeError(
                "the long-lived scheduler is not running; await start() "
                "before submitting requests")
        if self._draining:
            raise RuntimeError(
                "the executor is draining; new requests are refused")
        seq = self._live_seq
        self._live_seq += 1
        future = asyncio.get_running_loop().create_future()
        self._live_futures[seq] = future
        item = QueuedRequest(request=request, seq=seq,
                             enqueued_at=self._clock())
        item.span, item.trace, item.owns_trace = \
            self._open_request_span(request)
        self._live_queue.push(item)
        self._wakeup.set()
        try:
            return await future
        finally:
            self._live_futures.pop(seq, None)

    async def stop(self, drain: bool = True) -> None:
        """Shut the persistent scheduler down.

        With ``drain=True`` (the default) every queued and in-flight
        request finishes first — submitters awaiting :meth:`submit` all
        get their outcomes — and only new submissions are refused.  With
        ``drain=False`` the scheduler task is cancelled and still-pending
        submitters receive a :class:`RuntimeError`.
        """
        if self._live_task is None:
            return
        self._draining = True
        if self._wakeup is not None:
            self._wakeup.set()
        if not drain:
            self._live_task.cancel()
        try:
            await self._live_task
        except asyncio.CancelledError:
            pass
        finally:
            for future in self._live_futures.values():
                if not future.done():
                    future.set_exception(RuntimeError(
                        "the executor was stopped without draining"))
            self._live_task = None

    def estimate(self, request: ServingRequest) -> ExecutedQuery:
        """The degraded sample answer, outside the scheduler.

        The SSE streaming path sends this (estimate + confidence
        interval, zero I/Os) before the exact answer arrives, so it must
        not wait in the queue and must not land in the metrics as a
        second served query — hence ``record=False``.
        """
        return self._degraded_answer(request, record=False)

    async def _run_live(self) -> None:
        """The persistent scheduler loop (long-lived twin of serve())."""
        queue = self._live_queue
        state = self._live_state
        in_flight = state.in_flight
        loop = asyncio.get_running_loop()
        while True:
            if queue:
                self._core.stats.note_queue_depth(len(queue))
            while len(in_flight) < self._max_concurrency:
                now = self._clock()
                item = queue.pop_ready(now)
                if item is None:
                    break
                outcome = self._admit_one(loop, queue, state, item, now)
                if outcome is not None:
                    self._resolve_live(item.seq, outcome)
            if self._draining and not queue and not in_flight:
                return
            # Clear before computing the timeout: a submit() that lands
            # after the clear re-sets the event, and one that landed
            # before is already visible in the queue (push precedes set),
            # so next_ready_delay() returns 0 — no wake-up can be lost.
            self._wakeup.clear()
            timeout = None
            if len(in_flight) < self._max_concurrency:
                timeout = queue.next_ready_delay(self._clock())
            waker = asyncio.ensure_future(self._wakeup.wait())
            try:
                done, __ = await asyncio.wait(
                    set(in_flight) | {waker}, timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED)
            finally:
                if not waker.done():
                    waker.cancel()
            for future in done:
                if future is waker:
                    continue
                item = in_flight.pop(future)
                for seq, outcome in self._complete(state, item, future,
                                                   queue):
                    self._resolve_live(seq, outcome)

    def _resolve_live(self, seq: int, outcome: ServedRequest) -> None:
        """Hand one finished request back to its awaiting submitter."""
        future = self._live_futures.get(seq)
        if future is not None and not future.done():
            future.set_result(outcome)

    # ------------------------------------------------------------------
    # tracing seams
    # ------------------------------------------------------------------
    def _open_request_span(self, request: ServingRequest):
        """The request's span: a child of the caller's trace, or a new one.

        The HTTP front-end opens a trace per connection-level request and
        activates its root before awaiting :meth:`submit`, so when a trace
        is already current the request span nests under it (the HTTP layer
        finishes that trace).  Wave mode has no surrounding trace: each
        request gets its own, which the scheduler finishes at completion.
        Returns ``(span, trace, owns_trace)``; everything degrades to the
        null singletons when tracing is off.
        """
        parent = tracing.current_span()
        if parent.enabled:
            span = parent.child("serving.request", tenant=request.tenant,
                                dataset=request.dataset, op=request.op,
                                priority=request.priority)
            return span, parent.trace, False
        trace = self._core.tracer.start_trace(
            "serving.request", tenant=request.tenant,
            dataset=request.dataset, op=request.op,
            priority=request.priority)
        return trace.root, trace, True

    def _run_traced(self, span, fn, *args):
        """Run ``fn`` on a worker thread under the request's span.

        ``loop.run_in_executor`` does not copy contextvars into the
        worker, so the span is handed across the thread seam explicitly —
        the executor/store spans opened inside ``fn`` then nest under the
        right request.
        """
        with tracing.activate(span):
            return fn(*args)

    def _finish_span(self, item: QueuedRequest, outcome: str,
                     **attrs) -> None:
        """Stamp the request span with its outcome and close owned traces.

        The ``outcome`` attribute lands on the span (the trace *root* for
        scheduler-owned traces), which is what the tracer's slow-query
        log keys degraded-request retention off.
        """
        span = item.span
        if span is not None and getattr(span, "enabled", False):
            span.set("outcome", outcome)
            if item.deferrals:
                span.set("deferrals", item.deferrals)
            if attrs:
                span.set_many(attrs)
            span.finish()
        if item.owns_trace and item.trace is not None:
            item.trace.finish()

    def _note_decision(self, span, item: QueuedRequest, decision: str,
                       **attrs) -> None:
        """Record one admission attempt as a child of the request span.

        Every pop through the scheduler leaves one ``admission`` span
        carrying the verdict *and* the tenant's budget state at decision
        time, so a trace explains why a request was parked, shed or
        degraded instead of just showing the wait.
        """
        if not getattr(span, "enabled", False):
            return
        child = span.child("admission", decision=decision,
                           attempt=item.deferrals, **attrs)
        child.set("budget", self._admission.describe(item.request.tenant))
        child.finish()

    # ------------------------------------------------------------------
    # scheduler steps (all on the event loop)
    # ------------------------------------------------------------------
    def _admit_one(self, loop, queue: PriorityRequestQueue,
                   state: _RunState, item: QueuedRequest,
                   now: float) -> Optional[ServedRequest]:
        """Decide one popped request: dispatch, park, or finish it now.

        Returns a terminal :class:`ServedRequest` (cache hit, rejection,
        degraded answer, expiry) or None when the request was dispatched
        to a worker, attached to an identical in-flight request, or
        parked back into the queue.
        """
        request = item.request
        span = item.span if item.span is not None else tracing.NULL_SPAN
        if now > item.deadline_at:
            self._core.stats.note_admission("expired")
            self._note_decision(span, item, "expired")
            return self._finished(item, "expired", None, now)
        if request.is_mutation:
            return self._admit_mutation(loop, queue, state, item, now)

        cache_key = (request.dataset, constraint_key(request.constraint))
        cached = self._core.result_cache_get(cache_key,
                                             tenant=request.tenant)
        if cached is not None:
            self._note_decision(span, item, "cache_hit")
            return self._finished(item, "served", cached, now)
        if cache_key in state.keys:
            # An identical constraint is already executing: follow it and
            # share its answer instead of paying the I/O (and the budget
            # charge) again.
            self._note_decision(span, item, "follow")
            state.followers.setdefault(cache_key, []).append(item)
            return None

        # Plan once per request and keep it on the queue item: admission
        # deferrals would otherwise re-run the planner (sample scans over
        # every relevant shard) on the event loop at every retry.  A
        # planning failure (unknown dataset, wrong constraint dimension)
        # fails this one request, never the whole wave.
        if item.plan is None:
            try:
                with tracing.activate(span):
                    item.plan = self._core.planner.plan(request.dataset,
                                                        request.constraint)
            except Exception as exc:
                self._note_decision(span, item, "failed")
                return self._failed(item, exc, now)
        plan = item.plan
        decision = self._admission.decide(request.tenant, plan.estimated_ios,
                                          now)
        if decision.action == "admit":
            self._core.stats.note_admission("admit")
            self._note_decision(span, item, "admit",
                                estimated_ios=round(plan.estimated_ios, 2))
            # The bucket was just debited *this* plan's estimate; settle
            # must use the same figure or every deferral-admit cycle
            # leaks the difference.
            item.dispatched_at = now
            item.admitted_estimate = plan.estimated_ios
            if item.deferrals:
                # The cached plan only fed admission estimates while the
                # request was parked; the world may have moved since (a
                # mutation re-pins replicas and disqualifies static
                # indexes), so execute a freshly-made plan.  A failure
                # here must refund the bucket debit and fail only this
                # request.
                try:
                    with tracing.activate(span):
                        plan = self._core.planner.plan(request.dataset,
                                                       request.constraint)
                except Exception as exc:
                    self._admission.settle(request.tenant,
                                           item.admitted_estimate, 0.0)
                    return self._failed(item, exc, now)
            future = loop.run_in_executor(
                None, self._run_traced, span, self._core.dispatch,
                request.dataset, request.constraint, plan, cache_key, False,
                request.tenant)
            state.in_flight[future] = item
            state.keys.add(cache_key)
            return None
        if decision.action == "queue":
            not_before = now + max(decision.retry_after_s, _MIN_RETRY_S)
            if not_before > item.deadline_at:
                # The budget cannot clear before the deadline: expire now
                # instead of parking a request that is already dead (one
                # admission outcome per attempt — this is an expiry, not
                # a deferral).
                self._core.stats.note_admission("expired")
                self._note_decision(span, item, "expired",
                                    estimated_ios=round(plan.estimated_ios,
                                                        2))
                return self._finished(item, "expired", None, now)
            self._core.stats.note_admission("queue")
            self._note_decision(span, item, "queue",
                                estimated_ios=round(plan.estimated_ios, 2),
                                retry_after_s=round(decision.retry_after_s,
                                                    4))
            item.not_before = not_before
            item.deferrals += 1
            queue.push(item)
            return None
        self._core.stats.note_admission(decision.action)
        self._note_decision(span, item, decision.action,
                            estimated_ios=round(plan.estimated_ios, 2))
        if decision.action == "reject":
            return self._finished(item, "rejected", None, now)
        with tracing.activate(span):
            answer = self._degraded_answer(request)
        return self._finished(item, "degraded", answer, now)

    def _admit_mutation(self, loop, queue: PriorityRequestQueue,
                        state: _RunState, item: QueuedRequest,
                        now: float) -> Optional[ServedRequest]:
        """Decide one popped insert/delete request.

        Mutations skip the result cache and the follower (dedup)
        machinery — two identical writes are two writes — but pass the
        same token-bucket admission as reads, priced by the write path's
        fan-out estimate and settled against the observed I/Os.
        """
        request = item.request
        span = item.span if item.span is not None else tracing.NULL_SPAN
        try:
            estimate = self._core.writes.estimate_ios(request.dataset,
                                                      request.point)
        except Exception as exc:
            self._note_decision(span, item, "failed")
            return self._failed(item, exc, now)
        decision = self._admission.decide(request.tenant, estimate, now,
                                          write=True)
        if decision.action == "admit":
            self._core.stats.note_admission("admit")
            self._note_decision(span, item, "admit",
                                estimated_ios=round(estimate, 2))
            item.dispatched_at = now
            item.admitted_estimate = estimate
            future = loop.run_in_executor(
                None, self._run_traced, span, self._core.run_write,
                request.dataset, request.op, request.point)
            state.in_flight[future] = item
            return None
        if decision.action == "queue":
            not_before = now + max(decision.retry_after_s, _MIN_RETRY_S)
            if not_before > item.deadline_at:
                self._core.stats.note_admission("expired")
                self._note_decision(span, item, "expired",
                                    estimated_ios=round(estimate, 2))
                return self._finished(item, "expired", None, now)
            self._core.stats.note_admission("queue")
            self._note_decision(span, item, "queue",
                                estimated_ios=round(estimate, 2),
                                retry_after_s=round(decision.retry_after_s,
                                                    4))
            item.not_before = not_before
            item.deferrals += 1
            queue.push(item)
            return None
        # "reject" (the degrade policy maps to it for writes: there is
        # no approximate version of an insert).
        self._core.stats.note_admission("reject")
        self._note_decision(span, item, "reject",
                            estimated_ios=round(estimate, 2))
        return self._finished(item, "rejected", None, now)

    def _complete_mutation(self, item: QueuedRequest,
                           future: asyncio.Future
                           ) -> List[Tuple[int, ServedRequest]]:
        """Settle one finished write future into its (seq, outcome) pair."""
        now = self._clock()
        try:
            result: MutationResult = future.result()
        except Exception as exc:
            # The fan-out rolled back (or never started): settle against
            # what the aborted attempt really spent — the write path
            # annotates the exception with its apply+rollback I/Os, so a
            # tenant retrying failing writes still pays for the block
            # traffic they cause instead of looping for free.
            observed = float(getattr(exc, "write_ios_observed", 0.0))
            self._admission.settle(item.request.tenant,
                                   item.admitted_estimate, observed)
            return [(item.seq, self._failed(item, exc, now))]
        self._admission.settle(item.request.tenant, item.admitted_estimate,
                               float(result.ios))
        self._finish_span(item, "served", ios=result.ios,
                          applied=result.applied)
        outcome = ServedRequest(
            request=item.request, outcome="served", answer=None,
            turnaround_s=now - item.enqueued_at,
            queue_wait_s=item.dispatched_at - item.enqueued_at,
            deferrals=item.deferrals, mutation=result)
        return [(item.seq, outcome)]

    def _complete(self, state: _RunState, item: QueuedRequest,
                  future: asyncio.Future, queue: PriorityRequestQueue
                  ) -> List[Tuple[int, ServedRequest]]:
        """Settle one finished worker future (and its followers) into
        (seq, outcome) pairs."""
        if item.request.is_mutation:
            return self._complete_mutation(item, future)
        now = self._clock()
        cache_key = (item.request.dataset,
                     constraint_key(item.request.constraint))
        state.keys.discard(cache_key)
        try:
            answer: ExecutedQuery = future.result()
        except Exception as exc:
            # Refund the charge (nothing was observed), fail this request
            # alone, and send its followers back through the queue to
            # execute independently.
            self._admission.settle(item.request.tenant,
                                   item.admitted_estimate, 0.0)
            for follower in state.followers.pop(cache_key, ()):
                queue.push(follower)
            return [(item.seq, self._failed(item, exc, now))]
        # Settle against what calibration treats as the cold cost, matching
        # the estimate the bucket was charged with.
        observed = answer.ios.total + answer.ios.cache_hits
        self._admission.settle(item.request.tenant, item.admitted_estimate,
                               observed)
        self._finish_span(item, "served", ios=answer.ios.total,
                          reported=answer.count)
        results = [(item.seq, ServedRequest(
            request=item.request, outcome="served", answer=answer,
            turnaround_s=now - item.enqueued_at,
            queue_wait_s=item.dispatched_at - item.enqueued_at,
            deferrals=item.deferrals))]
        for follower in state.followers.pop(cache_key, ()):
            if now > follower.deadline_at:
                # The leader outlived this follower's deadline: the
                # contract says expired requests are dropped, even though
                # an answer happens to be at hand.
                self._core.stats.note_admission("expired")
                results.append((follower.seq,
                                self._finished(follower, "expired", None,
                                               now)))
                continue
            shared = self._core.as_cache_hit(answer)
            shared.tenant = follower.request.tenant
            self._core.record(shared)
            self._finish_span(follower, "served", follower=True)
            results.append((follower.seq, ServedRequest(
                request=follower.request, outcome="served", answer=shared,
                turnaround_s=now - follower.enqueued_at,
                queue_wait_s=now - follower.enqueued_at,
                deferrals=follower.deferrals)))
        return results

    def _finished(self, item: QueuedRequest, outcome: str,
                  answer: Optional[ExecutedQuery],
                  now: float) -> ServedRequest:
        waited = now - item.enqueued_at
        self._finish_span(item, outcome)
        return ServedRequest(request=item.request, outcome=outcome,
                             answer=answer, turnaround_s=waited,
                             queue_wait_s=waited, deferrals=item.deferrals)

    def _failed(self, item: QueuedRequest, exc: Exception,
                now: float) -> ServedRequest:
        """One request's planning/execution error, isolated to it."""
        message = "%s: %s" % (type(exc).__name__, exc)
        if item.span is not None and getattr(item.span, "enabled", False):
            item.span.set("error", message)
        outcome = self._finished(item, "failed", None, now)
        outcome.error = message
        return outcome

    def _degraded_answer(self, request: ServingRequest,
                         record: bool = True) -> ExecutedQuery:
        """A zero-I/O approximate answer from the dataset's sample.

        The sample's points are real stored points, so the answer is a
        *subset* of the truth (membership follows the same rule as the
        planner's selectivity estimate, via
        :func:`~repro.engine.sharding.sample_hits`) — marked ``degraded``
        and kept out of the result cache so it can never masquerade as an
        exact answer.  The answer carries its ``sample_rate`` (what
        fraction of the dataset was scanned) plus a scaled full-count
        estimate with an interval, so callers can turn the subset into a
        qualified count instead of mistaking it for the whole truth.

        The interval is conformal once the dataset's calibration window
        is warm — distribution-free quantile-of-residuals bands from the
        executor's observed (estimate, actual) pairs — and the normal
        approximation (:func:`scaled_count_estimate`) only before then;
        ``interval_source`` says which (``"conformal"`` /
        ``"normal_fallback"``) on every degraded answer.
        """
        with tracing.span("serving.degraded_sample",
                          dataset=request.dataset) as sample_span:
            entry = self._core.catalog.entry(request.dataset)
            hits = sample_hits(entry.sample, entry.dimension,
                               request.constraint)
            sample_size = int(len(entry.sample))
            population = max(int(entry.live_size), sample_size)
            estimate, interval = scaled_count_estimate(len(hits), sample_size,
                                                       population)
            source = "normal_fallback"
            conformal = self._core.stats.conformal.interval(
                request.dataset, estimate, population=population)
            if conformal is not None:
                # The sample hits are real stored points, so the true
                # count can never sit below them — the conformal band is
                # clipped to the same invariant the fallback obeys.
                low = max(conformal[0], int(len(hits)))
                high = max(conformal[1], low)
                estimate = min(max(estimate, low), high)
                interval = (low, high)
                source = "conformal"
            if sample_span.enabled:
                sample_span.set_many({
                    "sample_size": sample_size, "hits": int(len(hits)),
                    "estimated_count": estimate,
                    "interval_source": source})
        answer = ExecutedQuery(
            dataset=request.dataset, index_name="degraded_sample",
            points=[tuple(row) for row in hits.tolist()], ios=IOStats(),
            latency_s=0.0, estimated_ios=0.0, tenant=request.tenant,
            degraded=True,
            sample_rate=(sample_size / population if population else 1.0),
            estimated_count=estimate, count_interval=interval,
            interval_source=source)
        if record:
            self._core.record(answer)
        return answer
