"""Admission control: per-tenant I/O budgets enforced before dispatch.

The engine's scarce resource is block transfers, and the planner predicts
each query's I/O cost *before* running it — which is exactly what a
token-bucket budget needs.  Each budgeted tenant owns a
:class:`TokenBucket` holding I/O tokens: the bucket refills at
``ios_per_s`` from the wall clock the caller passes in (the scheduler's
monotonic clock; tests pass synthetic times), and a request is dispatched
only if the bucket can cover its *estimated* I/Os.  After execution the
bucket is **settled** against the I/Os actually observed via
:class:`~repro.engine.metrics.EngineStats` feedback, so a tenant whose
queries keep costing more than predicted pays the difference.

When a request exceeds the budget, the tenant's configured policy decides:

* ``"queue"`` (default) — park the request until the bucket has refilled
  enough; other tenants keep flowing meanwhile.
* ``"reject"`` — drop the request immediately (load shedding).
* ``"degrade"`` — serve a zero-I/O *approximate* answer from the
  dataset's in-memory sample, marked ``degraded`` so the caller knows,
  carrying the sample rate plus a scaled full-count estimate with an
  interval.  The interval is conformal (distribution-free, calibrated
  from the executor's observed (estimate, actual) pairs — see
  :mod:`repro.engine.stats.conformal`) once the dataset's calibration
  window is warm; :func:`scaled_count_estimate`'s normal approximation
  is the explicit cold-start fallback, and every degraded answer labels
  which one it carries (``interval_source``).

Tenants without a configured budget are always admitted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: The three over-budget policies a tenant can configure.
POLICIES = ("queue", "reject", "degrade")


def scaled_count_estimate(hits: int, sample_size: int, population: int,
                          z: float = 1.96) -> Tuple[int, Tuple[int, int]]:
    """Scale a sample hit count to the population, with a ~95% interval.

    This is the *cold-start fallback* interval: degraded answers prefer
    the dataset's conformal calibration
    (:class:`repro.engine.stats.conformal.ConformalCalibrator`) and use
    this normal approximation only until its window has filled.

    A degraded answer reports the ``hits`` sample points satisfying the
    constraint out of a uniform ``sample_size``-point sample of a
    ``population``-point dataset.  The unbiased full-count estimate is
    ``hits / sample_rate``; the interval is the normal approximation to
    the hypergeometric count, ``z`` standard errors wide with the
    finite-population correction (so a sample covering the whole dataset
    collapses to the exact count).  Zero observed hits use the rule of
    three (``3/sample_size``) as the 95% upper bound instead of the
    degenerate zero-width normal interval, and symmetrically for a
    sample that hits everything.  The interval is clamped to
    ``[hits, population]`` — the hits are real stored points, so the true
    count is never below them.
    """
    if sample_size <= 0 or population <= 0:
        return 0, (0, 0)
    hits = min(max(int(hits), 0), sample_size)
    proportion = hits / sample_size
    estimate = int(round(proportion * population))
    if population > 1:
        correction = math.sqrt(
            max(0.0, (population - sample_size) / (population - 1)))
    else:
        correction = 0.0
    error = z * correction * math.sqrt(
        proportion * (1.0 - proportion) / sample_size)
    low = proportion - error
    high = proportion + error
    if correction > 0:  # a full-coverage sample is exact; skip widening
        if hits == 0:
            high = max(high, min(1.0, 3.0 / sample_size))
        if hits == sample_size:
            low = min(low, 1.0 - min(1.0, 3.0 / sample_size))
    # The epsilon absorbs float noise so an exact proportion (e.g. a
    # full-coverage sample) does not ceil up to a phantom extra point.
    low_count = max(hits, int(math.floor(low * population + 1e-9)))
    high_count = max(min(population, int(math.ceil(high * population
                                                   - 1e-9))), low_count)
    # The point estimate must respect its own interval: the hits are real
    # stored points, so the true count (and hence the estimate) can never
    # sit below them even when the sample outnumbers the population.
    estimate = min(max(estimate, low_count), high_count)
    return estimate, (low_count, high_count)


@dataclass
class TokenBucket:
    """I/O tokens refilled from a caller-supplied clock.

    Parameters
    ----------
    rate:
        Tokens (estimated I/Os) added per second.
    burst:
        Bucket capacity — the largest I/O spike the tenant may spend at
        once.  The bucket starts full.
    """

    rate: float
    burst: float
    tokens: float = field(init=False)
    _last_refill: Optional[float] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive, got %r" % self.rate)
        if self.burst <= 0:
            raise ValueError("burst must be positive, got %r" % self.burst)
        self.tokens = self.burst

    def refill(self, now: float) -> None:
        """Accrue tokens for the wall-clock time since the last refill."""
        if self._last_refill is not None and now > self._last_refill:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._last_refill)
                              * self.rate)
        self._last_refill = now

    def try_consume(self, amount: float, now: float) -> bool:
        """Spend ``amount`` tokens if available; False leaves the bucket.

        A request larger than the whole bucket could never be admitted by
        the plain rule, so it is allowed once the bucket is *full* and
        drives the balance negative — the tenant then waits out the
        overdraft, preserving the long-run rate instead of starving the
        request forever.
        """
        self.refill(now)
        if amount > self.tokens:
            if amount >= self.burst and self.tokens >= self.burst:
                self.tokens -= amount
                return True
            return False
        self.tokens -= amount
        return True

    def seconds_until(self, amount: float, now: float) -> float:
        """How long until ``amount`` tokens will be available."""
        self.refill(now)
        if amount <= self.tokens:
            return 0.0
        deficit = min(amount, self.burst) - self.tokens
        return deficit / self.rate

    def settle(self, estimated: float, observed: float) -> None:
        """Correct the spend after execution: charge observed, not estimated.

        A query that cost more than predicted drives the bucket further
        down (it may go negative, delaying the tenant's next refill past
        zero); one that cost less gives the difference back.
        """
        self.tokens = min(self.burst, self.tokens - (observed - estimated))


@dataclass(frozen=True)
class TenantBudget:
    """Admission-control configuration for one tenant."""

    #: Sustained I/O budget in estimated block transfers per second.
    ios_per_s: float
    #: Largest burst the tenant may spend at once (defaults to 2s of rate).
    burst: Optional[float] = None
    #: What to do with an over-budget request: queue | reject | degrade.
    policy: str = "queue"

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError("unknown admission policy %r (expected one of "
                             "%s)" % (self.policy, ", ".join(POLICIES)))

    def make_bucket(self) -> TokenBucket:
        burst = self.burst if self.burst is not None else 2.0 * self.ios_per_s
        return TokenBucket(rate=self.ios_per_s, burst=burst)


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict for one request."""

    #: "admit", "queue", "reject" or "degrade".
    action: str
    #: For "queue": how long to park the request before retrying.
    retry_after_s: float = 0.0


class AdmissionController:
    """Per-tenant token buckets plus the over-budget policy dispatch.

    Not thread-safe by design: the async scheduler makes every admission
    decision on the event loop (execution happens off-loop, admission
    never does).  ``settle`` is routed back onto the loop by the executor.
    """

    def __init__(self,
                 budgets: Optional[Dict[str, TenantBudget]] = None) -> None:
        self._budgets: Dict[str, TenantBudget] = dict(budgets or {})
        self._buckets: Dict[str, TokenBucket] = {
            tenant: budget.make_bucket()
            for tenant, budget in self._budgets.items()}

    def budget_for(self, tenant: str) -> Optional[TenantBudget]:
        """The tenant's configured budget (None = unlimited)."""
        return self._budgets.get(tenant)

    def decide(self, tenant: str, estimated_ios: float, now: float,
               write: bool = False) -> AdmissionDecision:
        """Admit, defer, drop or degrade one request costing ``estimated_ios``.

        ``write`` marks a mutation request: writes obey the same token
        budgets as reads, but an over-budget write under the
        ``"degrade"`` policy is **rejected** instead — there is no
        approximate version of an insert, and silently skipping it while
        reporting success would lose data.
        """
        budget = self._budgets.get(tenant)
        if budget is None:
            return AdmissionDecision("admit")
        bucket = self._buckets[tenant]
        if bucket.try_consume(estimated_ios, now):
            return AdmissionDecision("admit")
        if budget.policy == "queue":
            return AdmissionDecision(
                "queue", retry_after_s=bucket.seconds_until(estimated_ios,
                                                            now))
        if write and budget.policy == "degrade":
            return AdmissionDecision("reject")
        return AdmissionDecision(budget.policy)

    def settle(self, tenant: str, estimated_ios: float,
               observed_ios: float) -> None:
        """Post-execution correction: charge what the query really cost."""
        bucket = self._buckets.get(tenant)
        if bucket is not None:
            bucket.settle(estimated_ios, observed_ios)

    def tokens(self, tenant: str) -> Optional[float]:
        """Current token balance (None for unbudgeted tenants)."""
        bucket = self._buckets.get(tenant)
        return bucket.tokens if bucket is not None else None

    def snapshot(self) -> Dict[str, float]:
        """Per-tenant token balances (for dashboards and tests)."""
        return {tenant: bucket.tokens
                for tenant, bucket in sorted(self._buckets.items())}

    def describe(self, tenant: str) -> Dict[str, object]:
        """One tenant's budget state, shaped for span attributes.

        Unbudgeted tenants report only that fact; budgeted ones carry
        the policy and the current token balance so a trace shows *why*
        a request was parked or degraded, not just that it was.
        """
        budget = self._budgets.get(tenant)
        if budget is None:
            return {"budgeted": False}
        bucket = self._buckets[tenant]
        return {"budgeted": True, "policy": budget.policy,
                "tokens": round(bucket.tokens, 2),
                "ios_per_s": budget.ios_per_s}
