"""The async serving queue: prioritized requests with deadlines.

:class:`ServingRequest` is the unit of work the async path accepts: a
(tenant, dataset, constraint) triple plus a scheduling priority and an
optional deadline.  *Tenant* here is a logical client, deliberately
decoupled from *dataset* — many tenants can hit one dataset, which is
exactly the head-of-line-blocking scenario the synchronous batch path
cannot untangle (it serializes a dataset's requests in arrival order).

Mutations ride the same queue: a request with ``op="insert"`` /
``op="delete"`` carries a ``point`` instead of a constraint and flows
through the identical priority/deadline/admission machinery, so writes
obey the same per-tenant budgets as reads.

:class:`PriorityRequestQueue` orders runnable requests by
``(priority, deadline, arrival)``: urgent tenants first, earliest
deadline among equals, FIFO as the final tie-break.  Requests deferred by
admission control are *parked* with a not-before time and re-enter the
runnable order once the clock passes it — the scheduler asks
:meth:`next_ready_delay` how long it may sleep.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.geometry.primitives import LinearConstraint

#: The request kinds the async path serves.
REQUEST_OPS = ("query", "insert", "delete")


@dataclass(frozen=True)
class ServingRequest:
    """One request in the async serving path.

    Parameters
    ----------
    tenant:
        Logical client the request belongs to (admission control budgets
        and per-tenant metrics key off this).
    dataset:
        Registered dataset (plain or sharded) the request runs against.
    constraint:
        The linear constraint to answer (``op="query"`` only).
    priority:
        Scheduling class; **lower runs first** (0 = most urgent).
    deadline_s:
        Optional deadline in seconds *from submission*; a request still
        queued when it expires is dropped and recorded as ``expired``.
    op:
        ``"query"`` (default), or a mutation — ``"insert"`` /
        ``"delete"`` — which carries a ``point`` instead of a constraint
        and goes through the engine's routed write-fanout path.
    point:
        The point to insert or delete (mutation ops only).
    """

    tenant: str
    dataset: str
    constraint: Optional[LinearConstraint] = None
    priority: int = 0
    deadline_s: Optional[float] = None
    op: str = "query"
    point: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.op not in REQUEST_OPS:
            raise ValueError("unknown request op %r (expected one of %s)"
                             % (self.op, ", ".join(REQUEST_OPS)))
        if self.op == "query":
            if self.constraint is None:
                raise ValueError("a query request needs a constraint")
        else:
            if self.point is None:
                raise ValueError("a %r request needs a point" % self.op)
            # Normalize once so workers and metrics see one record shape.
            object.__setattr__(self, "point",
                               tuple(float(c) for c in self.point))

    @property
    def is_mutation(self) -> bool:
        """True for insert/delete requests (the write path serves them)."""
        return self.op != "query"


@dataclass
class QueuedRequest:
    """A request plus its scheduling state inside the queue."""

    request: ServingRequest
    seq: int
    enqueued_at: float
    #: Earliest clock time admission allows dispatch (0 = immediately).
    not_before: float = 0.0
    #: How many times admission control sent the request back to wait.
    deferrals: int = 0
    #: Clock time the request was handed to a worker (set at dispatch).
    dispatched_at: float = 0.0
    #: Estimated I/Os the admission bucket was charged at dispatch.
    admitted_estimate: float = 0.0
    #: The plan made at first admission attempt (reused across deferrals).
    plan: Optional[object] = None
    #: The request's span (a child of the HTTP trace, or the root of a
    #: trace the scheduler opened itself).
    span: Optional[object] = None
    #: The trace the span belongs to, when the scheduler must finish it.
    trace: Optional[object] = None
    #: True when the scheduler opened the trace (wave mode) and must
    #: finish it at completion; False when the HTTP layer owns it.
    owns_trace: bool = False

    @property
    def deadline_at(self) -> float:
        """Absolute expiry time (+inf when the request has no deadline)."""
        if self.request.deadline_s is None:
            return float("inf")
        return self.enqueued_at + self.request.deadline_s

    def sort_key(self) -> Tuple[int, float, int]:
        return (self.request.priority, self.deadline_at, self.seq)


class PriorityRequestQueue:
    """Min-heap of runnable requests plus a parked heap of deferred ones."""

    def __init__(self) -> None:
        self._ready: List[Tuple[Tuple[int, float, int], QueuedRequest]] = []
        self._parked: List[Tuple[float, int, QueuedRequest]] = []

    def __len__(self) -> int:
        return len(self._ready) + len(self._parked)

    def __bool__(self) -> bool:
        return bool(self._ready) or bool(self._parked)

    def push(self, item: QueuedRequest) -> None:
        """Add a request: parked when its not-before is in the future."""
        if item.not_before > 0.0:
            heapq.heappush(self._parked, (item.not_before, item.seq, item))
        else:
            heapq.heappush(self._ready, (item.sort_key(), item))

    def _promote(self, now: float) -> None:
        """Move parked requests whose wait elapsed into the runnable heap."""
        while self._parked and self._parked[0][0] <= now:
            __, __, item = heapq.heappop(self._parked)
            heapq.heappush(self._ready, (item.sort_key(), item))

    def pop_ready(self, now: float) -> Optional[QueuedRequest]:
        """The best runnable request at time ``now`` (None when all parked)."""
        self._promote(now)
        if not self._ready:
            return None
        __, item = heapq.heappop(self._ready)
        return item

    def next_ready_delay(self, now: float) -> Optional[float]:
        """Seconds until some request becomes runnable.

        0.0 when one already is, None when the queue is empty.
        """
        self._promote(now)
        if self._ready:
            return 0.0
        if not self._parked:
            return None
        return max(0.0, self._parked[0][0] - now)
