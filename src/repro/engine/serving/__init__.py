"""The async serving subsystem: queue, admission control, replicas.

The synchronous :class:`~repro.engine.executor.BatchExecutor` serializes
each dataset's requests; this package is the scale-out serving path on
top of the same :class:`~repro.engine.executor.ExecutionCore`:

* :class:`~repro.engine.serving.queue.ServingRequest` /
  :class:`~repro.engine.serving.queue.PriorityRequestQueue` — requests
  carry a tenant, a priority and an optional deadline, and wait in a
  prioritized queue;
* :mod:`~repro.engine.serving.admission` — per-tenant token-bucket I/O
  budgets (refilled from the caller's clock, settled against observed
  I/Os) with queue / reject / degrade policies;
* :class:`~repro.engine.serving.replicas.LeastLoadedReplicaPicker` —
  routes each per-shard query to the replica with the least estimated
  in-flight I/O, so concurrent tenants on one shard overlap;
* :class:`~repro.engine.serving.executor.AsyncExecutor` — the asyncio
  scheduler tying them together (driven via
  :meth:`repro.engine.engine.QueryEngine.serve_async`).
"""

from repro.engine.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    TenantBudget,
    TokenBucket,
)
from repro.engine.serving.executor import (
    AsyncExecutor,
    ServedRequest,
    ServeResult,
)
from repro.engine.serving.queue import (
    PriorityRequestQueue,
    QueuedRequest,
    ServingRequest,
)
from repro.engine.serving.replicas import LeastLoadedReplicaPicker

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AsyncExecutor",
    "LeastLoadedReplicaPicker",
    "PriorityRequestQueue",
    "QueuedRequest",
    "ServeResult",
    "ServedRequest",
    "ServingRequest",
    "TenantBudget",
    "TokenBucket",
]
