"""Replica selection: route each per-shard query to the best copy.

A replicated shard holds N identical child datasets (see
:class:`~repro.engine.sharding.Shard`); any of them can serve a read.  The
picker's job is to spread concurrent load: two tenants fanning out to the
same shard at the same moment should land on *different* replicas, so
their block reads overlap instead of queueing on one store.

:class:`LeastLoadedReplicaPicker` keeps an **in-flight I/O estimate** per
(dataset, shard, replica): acquiring a replica adds the plan's estimated
I/Os, releasing it subtracts them.  Ties (e.g. an idle system) fall back
to the smallest *cumulative* estimate, so sequential traffic round-robins
across replicas instead of always hammering replica 0 — which keeps the
per-replica load attribution in :class:`~repro.engine.metrics.EngineStats`
meaningful even when queries are too fast to overlap.

Mutations do not narrow the choice: the engine's write path fans every
insert/delete out to all replicas
(:class:`~repro.engine.writes.WritePath`), so
:meth:`~repro.engine.sharding.Shard.replicas_for_query` keeps returning
the full replica set after writes and the picker stays free to balance.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.sharding import Shard

#: Load-table key: (dataset name, shard id, replica id).
ReplicaKey = Tuple[str, int, int]


class LeastLoadedReplicaPicker:
    """Pick the replica with the least estimated in-flight I/O.

    Thread-safe: the executor's fan-out workers acquire and release
    concurrently.  The estimates are the planner's predicted I/Os — cheap,
    available before execution, and proportional enough to real cost that
    balancing on them spreads genuine load.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._in_flight: Dict[ReplicaKey, float] = {}
        self._cumulative: Dict[ReplicaKey, float] = {}

    def acquire(self, dataset_name: str, shard: "Shard",
                estimated_ios: float) -> int:
        """Choose a replica for one per-shard query; returns its id.

        The caller must pair every acquire with a :meth:`release` (the
        executor does so in a ``finally`` block).
        """
        candidates = shard.replicas_for_query()
        if not candidates:
            raise ValueError("shard %d of %r has no routable replicas"
                             % (shard.shard_id, dataset_name))
        with self._lock:
            def load(replica_id: int) -> Tuple[float, float, int]:
                key = (dataset_name, shard.shard_id, replica_id)
                return (self._in_flight.get(key, 0.0),
                        self._cumulative.get(key, 0.0),
                        replica_id)

            chosen = min(candidates, key=load)
            key = (dataset_name, shard.shard_id, chosen)
            self._in_flight[key] = self._in_flight.get(key, 0.0) \
                + estimated_ios
            self._cumulative[key] = self._cumulative.get(key, 0.0) \
                + estimated_ios
        return chosen

    def release(self, dataset_name: str, shard_id: int, replica_id: int,
                estimated_ios: float) -> None:
        """Retire one per-shard query's in-flight estimate."""
        key = (dataset_name, shard_id, replica_id)
        with self._lock:
            remaining = self._in_flight.get(key, 0.0) - estimated_ios
            if remaining <= 0.0:
                self._in_flight.pop(key, None)
            else:
                self._in_flight[key] = remaining

    def in_flight(self, dataset_name: str, shard_id: int,
                  replica_id: int) -> float:
        """Current in-flight I/O estimate for one replica (for tests)."""
        with self._lock:
            return self._in_flight.get((dataset_name, shard_id, replica_id),
                                       0.0)

    def snapshot(self) -> Dict[str, float]:
        """JSON-friendly in-flight load table keyed ``dataset/shard/replica``."""
        with self._lock:
            return {"%s/%d/%d" % key: load
                    for key, load in sorted(self._in_flight.items())}

    def __repr__(self) -> str:
        with self._lock:
            busy = sum(1 for load in self._in_flight.values() if load > 0)
        return "LeastLoadedReplicaPicker(busy_replicas=%d)" % busy
