"""Bounded retention for finished traces.

Two small stores, both thread-safe and strictly bounded so a busy server
cannot grow without limit:

* :class:`TraceRegistry` — the last N finished traces keyed by
  ``trace_id`` (backs ``GET /trace/<id>``: a client that just got a
  ``trace_id`` in its response can fetch its own trace while it is still
  resident).
* :class:`SlowQueryLog` — a ring of trace trees that either exceeded a
  latency threshold or were served degraded (backs
  ``GET /debug/slow?n=20``).

Both stores keep the finished :class:`~repro.engine.tracing.Trace`
*objects* and serialize via ``to_dict()`` only when a reader actually
fetches — registering a finished trace is on every request's hot path,
so it must stay O(spans-retained), not O(tree-serialized).
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Any, Dict, List, Optional

__all__ = ["SlowQueryLog", "TraceRegistry"]


class TraceRegistry:
    """The newest ``capacity`` finished traces, fetchable by id."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive, got %r" % capacity)
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, Any]" = OrderedDict()

    def add(self, trace_id: str, trace: Any) -> None:
        """Retain a finished trace object (cheap: no serialization)."""
        with self._lock:
            self._traces[trace_id] = trace
            self._traces.move_to_end(trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The trace tree by id, serialized on fetch; None if evicted."""
        with self._lock:
            trace = self._traces.get(trace_id)
        return None if trace is None else trace.to_dict()

    def ids(self) -> List[str]:
        """Retained trace ids, oldest first (diagnostics and tests)."""
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class SlowQueryLog:
    """A ring of slow or degraded finished traces, newest kept."""

    def __init__(self, threshold_s: float = 0.25,
                 capacity: int = 64) -> None:
        if threshold_s < 0:
            raise ValueError("threshold_s must be >= 0, got %r"
                             % threshold_s)
        if capacity <= 0:
            raise ValueError("capacity must be positive, got %r" % capacity)
        self.threshold_s = threshold_s
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "deque[Dict[str, Any]]" = deque(maxlen=capacity)

    def offer(self, trace: Any, duration_s: float,
              degraded: bool = False) -> bool:
        """Record the trace if it qualifies; return whether it did.

        The fast path — a healthy request below the threshold — must
        not serialize: ``to_dict()`` runs only for the rare qualifying
        trace.
        """
        if not degraded and duration_s < self.threshold_s:
            return False
        entry = dict(trace.to_dict())
        entry["slow"] = duration_s >= self.threshold_s
        entry["degraded"] = degraded
        with self._lock:
            self._entries.append(entry)
        return True

    def latest(self, n: int = 20) -> List[Dict[str, Any]]:
        """The newest ``min(n, len)`` entries, newest first."""
        if n <= 0:
            return []
        with self._lock:
            entries = list(self._entries)
        return entries[::-1][:n]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
