"""Observability primitives: metrics registry, exposition, slow-query log.

This package is deliberately free of engine imports so the tracing and
metrics layers can be pulled into any module (planner, store, server)
without creating cycles:

* :mod:`repro.engine.obs.registry` — :class:`MetricsRegistry`:
  counters / gauges / histograms with labels, sharded per thread and
  merged on scrape.
* :mod:`repro.engine.obs.prometheus` — the hand-rolled Prometheus text
  exposition (``GET /metrics``), stdlib only.
* :mod:`repro.engine.obs.slowlog` — bounded retention for finished
  traces: :class:`TraceRegistry` (fetch by id) and
  :class:`SlowQueryLog` (slow/degraded ring buffer).
"""

from repro.engine.obs.prometheus import render_prometheus
from repro.engine.obs.registry import (Counter, Gauge, Histogram,
                                       MetricsRegistry)
from repro.engine.obs.slowlog import SlowQueryLog, TraceRegistry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowQueryLog",
    "TraceRegistry",
    "render_prometheus",
]
