"""Prometheus text exposition (version 0.0.4), hand-rolled on stdlib.

One function: render a :class:`~repro.engine.obs.registry.MetricsRegistry`
scrape as the plain-text format Prometheus scrapes — ``# HELP`` /
``# TYPE`` headers per family, one ``name{labels} value`` sample per
line, histograms expanded to cumulative ``_bucket{le=...}`` series plus
``_sum`` and ``_count``.  Label values are escaped per the spec
(backslash, double-quote, newline).
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

__all__ = ["render_prometheus"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _labels_text(names: Sequence[str], values: Sequence[str],
                 extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = list(zip(names, values)) + list(extra)
    if not pairs:
        return ""
    return "{%s}" % ",".join('%s="%s"' % (name, _escape_label(value))
                             for name, value in pairs)


def render_prometheus(registry) -> str:
    """The registry's merged state in Prometheus text format."""
    view = registry.collect()
    metrics: Dict[str, Any] = view["metrics"]
    by_family: Dict[str, list] = {name: [] for name in metrics}
    for key in view["counters"]:
        by_family.setdefault(key[0], []).append(("counter", key))
    for key in view["gauges"]:
        by_family.setdefault(key[0], []).append(("gauge", key))
    for key in view["histograms"]:
        by_family.setdefault(key[0], []).append(("histogram", key))

    lines = []
    for name in sorted(by_family):
        metric = metrics.get(name)
        samples = sorted(by_family[name], key=lambda item: item[1])
        if metric is not None:
            if metric.help:
                lines.append("# HELP %s %s"
                             % (name, _escape_help(metric.help)))
            lines.append("# TYPE %s %s" % (name, metric.kind))
        label_names = metric.label_names if metric is not None else ()
        for kind, key in samples:
            values = key[1]
            if kind == "counter":
                lines.append("%s%s %s" % (
                    name, _labels_text(label_names, values),
                    _format_value(view["counters"][key])))
            elif kind == "gauge":
                lines.append("%s%s %s" % (
                    name, _labels_text(label_names, values),
                    _format_value(view["gauges"][key])))
            else:
                merged = view["histograms"][key]
                running = 0
                for bound, count in zip(merged["bounds"],
                                        merged["buckets"]):
                    running += count
                    lines.append("%s_bucket%s %d" % (
                        name,
                        _labels_text(label_names, values,
                                     (("le", _format_value(float(bound))),)),
                        running))
                lines.append("%s_bucket%s %d" % (
                    name,
                    _labels_text(label_names, values, (("le", "+Inf"),)),
                    merged["count"]))
                lines.append("%s_sum%s %s" % (
                    name, _labels_text(label_names, values),
                    _format_value(merged["sum"])))
                lines.append("%s_count%s %d" % (
                    name, _labels_text(label_names, values),
                    merged["count"]))
    return "\n".join(lines) + "\n"
