"""The metrics registry: labeled counters, gauges and histograms.

Hot-path writes must not fight over one lock: every thread gets its own
shard (a plain dict living in a ``threading.local``), and a counter
increment or histogram observation is a GIL-atomic read-modify-write of
that shard — no lock taken.  The registry lock is acquired only when a
thread inserts a *new* (metric, labels) key into its shard (a dict
resize, which must not race a concurrent scrape iterating the dict) and
during :meth:`MetricsRegistry.collect`, which merges every shard into
one view.  Gauges are last-write-wins and rare, so they live in a single
locked dict.

A scrape may observe a shard value mid-window (a counter bumped after
one shard merged and before the next) — that is the usual Prometheus
contract: counters are monotonic per thread, so consecutive scrapes
never go backwards.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

#: Latency-oriented default buckets (seconds), +Inf implied.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

_Key = Tuple[str, Tuple[str, ...]]


def _label_values(label_names: Sequence[str],
                  labels: Dict[str, Any]) -> Tuple[str, ...]:
    if len(labels) != len(label_names):
        raise ValueError("metric expects labels %r, got %r"
                         % (tuple(label_names), tuple(labels)))
    try:
        return tuple(str(labels[name]) for name in label_names)
    except KeyError as exc:
        raise ValueError("metric expects labels %r, got %r"
                         % (tuple(label_names), tuple(labels))) from exc


class _Metric:
    """Shared plumbing: name, help text, ordered label names."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help_text: str,
                 label_names: Sequence[str]) -> None:
        self._registry = registry
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)

    def _key(self, labels: Dict[str, Any]) -> _Key:
        return (self.name, _label_values(self.label_names, labels))


class Counter(_Metric):
    """A monotonically increasing value, sharded per thread."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up, got %r" % amount)
        shard = self._registry._shard()["counters"]
        key = self._key(labels)
        current = shard.get(key)
        if current is None:
            # First touch of this key by this thread: the insert can
            # resize the dict, which must not race a merging scrape.
            with self._registry._lock:
                shard[key] = amount
        else:
            shard[key] = current + amount

    def value(self, **labels: Any) -> float:
        """The merged value across every thread (scrape-priced)."""
        key = self._key(labels)
        return self._registry.collect()["counters"].get(key, 0.0)


class Gauge(_Metric):
    """A last-write-wins value; writes are rare, so it is simply locked."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._registry._lock:
            self._registry._gauges[key] = float(value)

    def max(self, value: float, **labels: Any) -> None:
        """Raise the gauge to ``value`` if it is higher (depth watermarks)."""
        key = self._key(labels)
        with self._registry._lock:
            current = self._registry._gauges.get(key)
            if current is None or value > current:
                self._registry._gauges[key] = float(value)

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._registry._lock:
            return self._registry._gauges.get(key, 0.0)


class Histogram(_Metric):
    """Cumulative-bucket histogram, sharded per thread like counters.

    Per-thread state is a list ``[count_b0, ..., count_binf, sum, n]``
    mutated in place (item assignment never resizes, so scrapes may read
    it concurrently).
    """

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str, help_text: str,
                 label_names: Sequence[str],
                 buckets: Optional[Sequence[float]] = None) -> None:
        super().__init__(registry, name, help_text, label_names)
        bounds = tuple(sorted(buckets if buckets is not None
                              else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        shard = self._registry._shard()["histograms"]
        key = self._key(labels)
        state = shard.get(key)
        if state is None:
            state = [0] * (len(self.buckets) + 1) + [0.0, 0]
            with self._registry._lock:
                shard[key] = state
                self._registry._histogram_buckets[self.name] = self.buckets
        index = bisect_left(self.buckets, value)
        state[index] += 1
        state[-2] += value
        state[-1] += 1


class MetricsRegistry:
    """The engine's metric families, and the scrape that merges them."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}
        self._gauges: Dict[_Key, float] = {}
        self._histogram_buckets: Dict[str, Tuple[float, ...]] = {}
        self._local = threading.local()
        self._shards: List[Dict[str, dict]] = []

    # -- family registration (idempotent by name) ----------------------
    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._family(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._family(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError("metric %r already registered as %s"
                                     % (name, existing.kind))
                return existing
            metric = Histogram(self, name, help_text, labels, buckets)
            self._metrics[name] = metric
            return metric

    def _family(self, cls, name: str, help_text: str,
                labels: Sequence[str]):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError("metric %r already registered as %s"
                                     % (name, existing.kind))
                return existing
            metric = cls(self, name, help_text, labels)
            self._metrics[name] = metric
            return metric

    # -- per-thread shards ---------------------------------------------
    def _shard(self) -> Dict[str, dict]:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = {"counters": {}, "histograms": {}}
            self._local.shard = shard
            with self._lock:
                self._shards.append(shard)
        return shard

    # -- scrape --------------------------------------------------------
    def collect(self) -> Dict[str, Any]:
        """Merge every thread's shard into one consistent-enough view."""
        with self._lock:
            shards = list(self._shards)
            gauges = dict(self._gauges)
            metrics = dict(self._metrics)
            bucket_bounds = dict(self._histogram_buckets)
            counters: Dict[_Key, float] = {}
            histograms: Dict[_Key, Dict[str, Any]] = {}
            for shard in shards:
                for key, value in shard["counters"].items():
                    counters[key] = counters.get(key, 0.0) + value
                for key, state in shard["histograms"].items():
                    merged = histograms.get(key)
                    if merged is None:
                        bounds = bucket_bounds[key[0]]
                        merged = histograms[key] = {
                            "bounds": bounds,
                            "buckets": [0] * (len(bounds) + 1),
                            "sum": 0.0,
                            "count": 0,
                        }
                    for index in range(len(merged["buckets"])):
                        merged["buckets"][index] += state[index]
                    merged["sum"] += state[-2]
                    merged["count"] += state[-1]
        return {"metrics": metrics, "counters": counters,
                "gauges": gauges, "histograms": histograms}

    def to_json(self) -> Dict[str, Any]:
        """The merged metrics as a strictly JSON-serializable dict."""
        view = self.collect()
        metrics = view["metrics"]

        def label_string(key: _Key) -> str:
            metric = metrics.get(key[0])
            names = metric.label_names if metric is not None else ()
            if not names:
                return key[0]
            inner = ",".join('%s="%s"' % (name, value)
                             for name, value in zip(names, key[1]))
            return "%s{%s}" % (key[0], inner)

        counters = {label_string(key): value
                    for key, value in sorted(view["counters"].items())}
        gauges = {label_string(key): value
                  for key, value in sorted(view["gauges"].items())}
        histograms = {}
        for key, merged in sorted(view["histograms"].items()):
            cumulative, running = [], 0
            for bound, count in zip(merged["bounds"], merged["buckets"]):
                running += count
                cumulative.append({"le": bound, "count": running})
            cumulative.append({"le": "+Inf", "count": merged["count"]})
            histograms[label_string(key)] = {
                "count": merged["count"],
                "sum": merged["sum"],
                "buckets": cumulative,
            }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def reset(self) -> None:
        """Zero every shard and gauge (families stay registered)."""
        with self._lock:
            for shard in self._shards:
                shard["counters"].clear()
                shard["histograms"].clear()
            self._gauges.clear()

    def __repr__(self) -> str:
        with self._lock:
            return "MetricsRegistry(%d families, %d shards)" % (
                len(self._metrics), len(self._shards))
