"""The query engine facade: one object gluing catalog, planner, executor.

:class:`QueryEngine` is the serving entry point the examples and
benchmarks drive::

    engine = QueryEngine(block_size=64, seed=7)
    engine.register_dataset("screener", points)          # builds a suite
    engine.register_sharded_dataset("logs", big_points,  # K stores + fan-out
                                    num_shards=4, replicas=2,
                                    kinds=["dynamic", "full_scan"])
    result = engine.query("screener", constraint)        # planner-routed
    engine.insert("logs", point)                         # routed write,
    engine.delete("logs", point)                         # every replica
    batch = engine.serve_batch("screener", constraints)  # warm, deduped
    served = engine.serve_async(requests, budgets=...)   # multi-tenant async
    print(engine.stats.to_table())

Storage is pluggable end to end: ``backend="file"`` (or ``"mmap"``) puts
every dataset's blocks in real files (``data_dir``), and a
``calibration_path`` persists the planner's learned constants across
restarts (loaded on startup, aged out after ``calibration_max_age_s``).
Estimation is pluggable too: ``stats_model="histogram"`` prices queries
with directional equi-depth histograms instead of the uniform sample
(see :mod:`repro.engine.stats`), and ``auto_rebalance=True`` re-splits
range shards whose statistics have drifted under dynamic inserts
(:meth:`QueryEngine.rebalance` does it on demand).
Everything the facade does is available piecemeal through its
:attr:`catalog`, :attr:`planner` and :attr:`executor` attributes; the
async serving path (:meth:`QueryEngine.serve_async`) runs through the
same :class:`~repro.engine.executor.ExecutionCore` as the synchronous
one, so both share one result cache, one calibration and one metrics
sink.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import asyncio

from repro.core.conjunction import ConstraintConjunction
from repro.engine.calibration import DEFAULT_MAX_AGE_S, CalibrationStore
from repro.engine.catalog import BuildRecord, Catalog
from repro.engine.executor import (
    BatchExecutor,
    BatchResult,
    ExecutedQuery,
    WorkloadResult,
)
from repro.engine.metrics import EngineStats
from repro.engine.planner import Planner
from repro.engine.stats import (
    DEFAULT_COVERAGE,
    DEFAULT_MIN_CALIBRATION,
    DEFAULT_WINDOW,
    ConformalCalibrator,
)
from repro.engine.sharding import RebalanceManager, RebalanceReport
from repro.engine.serving import (
    AdmissionController,
    AsyncExecutor,
    ServeResult,
    ServingRequest,
    TenantBudget,
)
from repro.engine.tracing import Tracer, activate
from repro.engine.writes import MutationResult
from repro.geometry.primitives import LinearConstraint


class QueryEngine:
    """Cost-based routing of linear-constraint queries over many datasets.

    Parameters
    ----------
    block_size / cache_blocks:
        Defaults for each dataset's shared simulated disk.
    sample_size:
        Per-dataset sample kept for selectivity estimation.
    result_cache_entries / warm_cache_blocks:
        Executor knobs: answer-LRU capacity and the buffer-pool size used
        while serving a batch.
    ewma_alpha:
        Planner calibration learning rate.
    seed:
        Seed for sampling and randomised index builds.
    backend / data_dir:
        Default storage backend for every store (``"memory"``, ``"file"``
        or ``"mmap"``) and, for the file-based backends, the directory
        the block files live in (temp files when omitted).
    fanout_workers:
        Thread-pool size for per-shard query fan-out (0 = sequential).
    calibration_path / calibration_max_age_s:
        When a path is given, planner calibration is loaded from that JSON
        file on startup (entries older than the max age are dropped) and
        :meth:`save_calibration` persists it back.
    stats_model / stats_params:
        Selectivity model built for every dataset and shard child:
        ``"uniform"`` (default, sample scan), ``"histogram"``
        (directional equi-depth histograms for skewed data) or
        ``"ensemble"`` (uniform + histogram side by side, blended by
        online e-value-style weights); see :mod:`repro.engine.stats`.
    conformal_coverage / conformal_window / conformal_min_calibration:
        Conformal calibration of estimation error: the executor's
        observed (estimate, actual) pairs feed a bounded per-dataset
        calibration window, and plans / degraded answers carry
        distribution-free intervals at the nominal
        ``conformal_coverage`` once ``conformal_min_calibration`` pairs
        are in (see :class:`repro.engine.stats.ConformalCalibrator`).
    auto_rebalance / rebalance_threshold / rebalance_min_mutations:
        When ``auto_rebalance`` is set, every serving entry point first
        checks the touched range-sharded datasets for skew (largest
        shard's live size, or histogram drift, at ``rebalance_threshold``
        times the fair share, after at least ``rebalance_min_mutations``
        mutations) and re-splits them before serving.
        :meth:`rebalance` triggers the same re-split manually.
    tracing / trace_capacity:
        Request tracing: every served request builds a span tree across
        planner, admission, executor fan-out and block I/O (fetch it by
        id via :attr:`tracer`, or ``GET /trace/<id>`` over HTTP).
        ``tracing=False`` swaps in no-op singletons — instrumented code
        paths then allocate nothing.  ``trace_capacity`` bounds the
        finished-trace registry (oldest evicted).
    slow_query_threshold_s / slow_query_capacity:
        Finished traces slower than the threshold (or degraded) also land
        in a bounded slow-query ring (``GET /debug/slow``).
    workers:
        Shard-query transport: ``"inprocess"`` (default) fans out on the
        executor's thread pool inside this process; ``"process"`` spawns
        one worker *process* per shard replica behind a
        :class:`~repro.engine.cluster.coordinator.Coordinator` (RPC over
        local sockets, heartbeats, replica failover, write-log replay)
        so a CPU-bound K-way fan-out uses K cores instead of one GIL.
        ``None`` reads the ``REPRO_WORKERS`` environment variable (same
        values).  Answers and I/O accounting are identical in both
        modes; see the README's "Process layer" section for tradeoffs.
    stats_upgrade_min_points:
        A lazily materialized shard starts on the provisional uniform
        stats model; once it holds this many live points the engine
        re-fits the dataset's configured model over them
        (:meth:`~repro.engine.catalog.Catalog.upgrade_shard_stats`).
        ``<= 0`` disables the upgrade.
    """

    def __init__(self, block_size: int = 64, cache_blocks: int = 4,
                 sample_size: int = 512, result_cache_entries: int = 256,
                 warm_cache_blocks: int = 64, ewma_alpha: float = 0.25,
                 seed: Optional[int] = None,
                 backend: object = "memory",
                 data_dir: Optional[str] = None,
                 fanout_workers: int = 8,
                 calibration_path: Optional[str] = None,
                 calibration_max_age_s: float = DEFAULT_MAX_AGE_S,
                 stats_model: object = "uniform",
                 stats_params: Optional[Dict[str, object]] = None,
                 auto_rebalance: bool = False,
                 rebalance_threshold: float = 2.0,
                 rebalance_min_mutations: int = 64,
                 tracing: bool = True,
                 trace_capacity: int = 256,
                 slow_query_threshold_s: float = 0.25,
                 slow_query_capacity: int = 64,
                 workers: Optional[str] = None,
                 stats_upgrade_min_points: int = 64,
                 conformal_coverage: float = DEFAULT_COVERAGE,
                 conformal_window: int = DEFAULT_WINDOW,
                 conformal_min_calibration: int = DEFAULT_MIN_CALIBRATION):
        self.catalog = Catalog(block_size=block_size,
                               cache_blocks=cache_blocks,
                               sample_size=sample_size, seed=seed,
                               backend=backend, data_dir=data_dir,
                               stats_model=stats_model,
                               stats_params=stats_params)
        self.stats = EngineStats(conformal=ConformalCalibrator(
            coverage=conformal_coverage, window=conformal_window,
            min_calibration=conformal_min_calibration))
        self.stats.set_model_provider(self._live_models)
        self.planner = Planner(self.catalog, ewma_alpha=ewma_alpha,
                               conformal=self.stats.conformal)
        self.tracer = Tracer(enabled=tracing, max_traces=trace_capacity,
                             slow_threshold_s=slow_query_threshold_s,
                             slow_capacity=slow_query_capacity)
        self.executor = BatchExecutor(
            self.catalog, self.planner, stats=self.stats,
            result_cache_entries=result_cache_entries,
            warm_cache_blocks=warm_cache_blocks,
            fanout_workers=fanout_workers, tracer=self.tracer)
        self._auto_rebalance = auto_rebalance
        self.rebalancer = RebalanceManager(
            self.catalog, stats=self.stats,
            threshold=rebalance_threshold,
            min_mutations=rebalance_min_mutations)
        # A re-split rebuilds per-shard stores and indexes: flush the old
        # layout's cached answers, then re-wire the staleness/statistics
        # hooks onto the freshly built indexes.
        self.rebalancer.add_listener(
            lambda name, report: self.executor.invalidate_dataset(name))
        self.rebalancer.add_listener(
            lambda name, report: self._watch_indexes(name))
        # A lazily-materialized shard (first insert into an empty range
        # shard) builds fresh indexes mid-write: wire the hooks onto that
        # shard alone — re-wiring the whole dataset would subscribe the
        # already-watched shards twice and double-count statistics.
        self.executor.core.writes.add_materialize_listener(
            lambda name, shard_id: self._watch_indexes(name,
                                                       only_shard=shard_id))
        self._stats_upgrade_min_points = stats_upgrade_min_points
        mode = workers if workers is not None \
            else os.environ.get("REPRO_WORKERS", "inprocess")
        if mode not in ("inprocess", "process"):
            raise ValueError("workers must be 'inprocess' or 'process', "
                             "got %r" % (mode,))
        self.workers = mode
        self.cluster = None
        if mode == "process":
            # Deferred import: the cluster package imports engine pieces.
            from repro.engine.cluster import Coordinator
            self.cluster = Coordinator(
                self.catalog, conformal=self.stats.conformal.config())
            self.executor.core.attach_cluster(self.cluster)
            # Every committed sharded write lands in the coordinator's
            # fan-out log (and is broadcast to live workers); lazy
            # materialization spawns the new shard's workers before its
            # first write broadcasts; a re-split rebuilds the fleet on
            # the new layout.
            self.executor.core.writes.add_write_listener(
                self.cluster.note_write)
            self.executor.core.writes.add_materialize_listener(
                self.cluster.on_materialize)
            self.rebalancer.add_listener(
                lambda name, report: self.cluster.on_rebalance(name))
        self._serving_executor: Optional[AsyncExecutor] = None
        self.calibration_store: Optional[CalibrationStore] = None
        if calibration_path is not None:
            self.calibration_store = CalibrationStore(
                calibration_path, max_age_s=calibration_max_age_s)
            persisted = self.calibration_store.load()
            if persisted:
                self.planner.load_calibration(persisted)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_dataset(self, name: str,
                         points: Sequence[Sequence[float]],
                         kinds: Optional[Sequence[str]] = None,
                         block_size: Optional[int] = None,
                         **catalog_kwargs) -> List[BuildRecord]:
        """Register a dataset and bulk-build its index suite.

        ``kinds`` picks the index families (default: the dimension's
        :func:`~repro.engine.catalog.default_suite`).  Returns the build
        records (space, build I/Os, wall-clock) for the benchmarks.
        """
        self.catalog.register_dataset(name, points, block_size=block_size,
                                      **catalog_kwargs)
        records = self.catalog.build_suite(name, kinds=kinds)
        self._watch_indexes(name)
        return records

    def register_sharded_dataset(self, name: str,
                                 points: Sequence[Sequence[float]],
                                 num_shards: int,
                                 sharding: str = "range",
                                 shard_attribute: int = 0,
                                 replicas: int = 1,
                                 kinds: Optional[Sequence[str]] = None,
                                 block_size: Optional[int] = None,
                                 **catalog_kwargs) -> List[BuildRecord]:
        """Register a dataset partitioned across ``num_shards`` stores.

        ``sharding`` picks hash or range partitioning (range splits on
        ``shard_attribute`` and enables shard pruning for constraints that
        are selective in it).  ``replicas`` keeps that many identical
        copies of every shard — each with its own store and index suite —
        so the executor can overlap concurrent tenants hitting the same
        shard by picking the least-loaded replica.  An index suite is
        bulk-built per shard replica; queries against ``name`` then fan
        out to the relevant shards.
        """
        self.catalog.register_sharded_dataset(
            name, points, num_shards=num_shards, sharding=sharding,
            shard_attribute=shard_attribute, replicas=replicas,
            block_size=block_size, **catalog_kwargs)
        records = self.catalog.build_suite(name, kinds=kinds)
        self._watch_indexes(name)
        if self.cluster is not None:
            self.cluster.start_dataset(name)
        return records

    def _watch_indexes(self, name: str,
                       only_shard: Optional[int] = None) -> None:
        """Hook dynamic indexes up to the engine's staleness machinery.

        A logical mutation (1) flushes the dataset's result-cache
        entries, (2) marks the mutated (shard replica) dataset so the
        planner stops routing to its statically-built siblings, (3) on
        sharded datasets marks the shard's bounding box stale so pruning
        no longer trusts it, and (4) feeds the mutated *point* into the
        dataset's selectivity model (sample reservoir / histograms) and
        the rebalance manager's skew counters.

        On replicated shards the write path fans each mutation out to
        *every* replica, so hooks (1), (3) and (4) — the
        once-per-logical-mutation family — are wired to the **primary
        replica only**: the fan-out applies the primary last, so they
        fire exactly once, and only when every replica already holds the
        write.  Each replica keeps its own ``mutated`` flag (2) and a
        pre-mutation veto against *direct* single-replica writes, which
        would silently desynchronise the copies.

        ``only_shard`` restricts the wiring to one shard's replicas —
        used when a single shard's indexes were freshly built (lazy
        materialization) while its siblings keep their existing, already
        subscribed hooks (re-subscribing them would fire statistics
        twice per mutation).
        """
        sharded = self.catalog.sharded(name) \
            if self.catalog.is_sharded(name) else None
        if sharded is not None:
            targets = [
                (replica, shard, replica_id == 0)
                for shard in sharded.nonempty_shards()
                if only_shard is None or shard.shard_id == only_shard
                for replica_id, replica in enumerate(shard.replicas)]
        else:
            targets = [(self.catalog.dataset(name), None, True)]
        for dataset, shard, primary in targets:
            point_hook = self._make_point_hook(name, dataset, sharded,
                                               shard)
            for index in dataset.indexes.values():
                subscribe = getattr(index, "add_mutation_listener", None)
                if not callable(subscribe):
                    continue
                if self.cluster is not None and shard is not None:
                    # A mutation that did not come through the engine's
                    # write fan-out never reached the cluster's write
                    # log: the coordinator drops the dataset back to
                    # in-process serving rather than answer from
                    # silently diverged workers.
                    subscribe(lambda shard=shard:
                              self.cluster.note_index_mutation(name,
                                                               shard))
                if shard is not None:
                    # Veto direct writes to one replica of a replicated
                    # shard *before* they land (the engine's fan-out
                    # thread is exempt), so a rejected mutation leaves
                    # the replica byte-identical to its siblings.
                    presubscribe = getattr(index,
                                           "add_pre_mutation_listener",
                                           None)
                    if callable(presubscribe):
                        presubscribe(shard.check_direct_mutation)
                subscribe(lambda dataset=dataset: setattr(
                    dataset, "mutated", True))
                if not primary:
                    continue
                self.executor.watch_index(name, index)
                if shard is not None:
                    subscribe(shard.mark_mutated)
                observe = getattr(index, "add_point_listener", None)
                if callable(observe):
                    observe(point_hook)

    def _live_models(self) -> Dict[str, object]:
        """Live selectivity models by dataset name (the metrics provider).

        Evaluated at summary/scrape time rather than captured once:
        shard-child models are rebuilt on stats upgrades and re-splits,
        so stored references would go stale.  Sharded datasets report
        the dataset-level model plus each non-empty shard's planning
        model under the shard child's name (e.g. ``logs#2``).
        """
        models: Dict[str, object] = {}
        for name in self.catalog.datasets():
            if self.catalog.is_sharded(name):
                sharded = self.catalog.sharded(name)
                models[name] = sharded.stats
                for shard in sharded.nonempty_shards():
                    child = shard.planning_dataset()
                    models[child.name] = child.stats
            else:
                models[name] = self.catalog.dataset(name).stats
        return models

    def _make_point_hook(self, name, dataset, sharded, shard=None):
        """The per-point mutation callback keeping statistics current."""
        def hook(op: str, point) -> None:
            for model in (dataset.stats,
                          sharded.stats if sharded is not None else None):
                if model is None:
                    continue
                if op == "insert":
                    model.observe_insert(point)
                else:
                    model.observe_delete(point)
            self.rebalancer.note_mutation(name)
            if (op == "insert" and shard is not None
                    and shard.stats_provisional
                    and self._stats_upgrade_min_points > 0):
                # Satellite of lazy materialization: once the shard holds
                # enough live points, promote it off the provisional
                # uniform model onto the dataset's configured one.  The
                # hook fires inside the write path, which holds the
                # dataset's write barrier.
                self.catalog.upgrade_shard_stats(
                    name, shard.shard_id, self._stats_upgrade_min_points)
        return hook

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    def rebalance(self, dataset: str) -> RebalanceReport:
        """Re-split a range-sharded dataset at fresh quantiles now.

        Collects every shard's live points (dynamic inserts included),
        recomputes the quantile boundaries, rebuilds the per-shard
        stores / index suites / statistics, flushes the dataset's cached
        results and re-wires the mutation hooks.  Pruning works again
        afterwards: the new shards' bounding boxes are fresh.  The event
        lands in ``summary()["rebalances"]``.
        """
        return self.rebalancer.rebalance(dataset)

    def _maybe_rebalance(self, *datasets: str) -> None:
        """Auto-trigger hook run at every serving entry point."""
        if not self._auto_rebalance:
            return
        for name in dict.fromkeys(datasets):
            self.rebalancer.maybe_rebalance(name)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, dataset: str, point) -> MutationResult:
        """Insert one point through the engine-level write path.

        On a sharded dataset the point is routed by the shard attribute
        through the dataset's router — using the *current* generation's
        quantile boundaries, so rebalances are transparent to writers —
        and the mutation is fanned out to **every** replica of the
        target shard (all-or-nothing: a replica that vetoes rolls the
        already-applied copies back), so reads keep spreading over the
        full replica set afterwards.  Statistics, skew counters, cache
        invalidation and box staleness observe exactly one logical
        mutation.  Requires a mutation-capable index in the suite
        (``kinds`` including ``"dynamic"``).
        """
        result = self.executor.core.run_write(dataset, "insert", point)
        self._maybe_rebalance(dataset)
        return result

    def delete(self, dataset: str, point) -> MutationResult:
        """Delete one point (one copy) through the engine-level write path.

        Routed and replica-fanned-out exactly like :meth:`insert`; the
        returned result's ``applied`` is False when the point was not
        present (a no-op, as with the dynamic index's ``delete``).
        """
        result = self.executor.core.run_write(dataset, "delete", point)
        self._maybe_rebalance(dataset)
        return result

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def query(self, dataset: str, constraint: LinearConstraint,
              clear_cache: bool = False) -> ExecutedQuery:
        """Serve one constraint through the planner-chosen index(es)."""
        self._maybe_rebalance(dataset)
        return self.executor.execute(dataset, constraint,
                                     clear_cache=clear_cache)

    def query_conjunction(self, dataset: str,
                          conjunction: ConstraintConjunction,
                          clear_cache: bool = False) -> ExecutedQuery:
        """Serve an AND of constraints (convex-polytope query)."""
        self._maybe_rebalance(dataset)
        return self.executor.execute_conjunction(dataset, conjunction,
                                                 clear_cache=clear_cache)

    def serve_batch(self, dataset: str,
                    constraints: Sequence[LinearConstraint],
                    warm_cache: bool = True) -> BatchResult:
        """Serve a batch against one dataset (dedup + warm buffer pool)."""
        self._maybe_rebalance(dataset)
        return self.executor.run_batch(dataset, constraints,
                                       warm_cache=warm_cache)

    def serve_workload(self,
                       requests: Sequence[Tuple[str, LinearConstraint]],
                       warm_cache: bool = True, use_threads: bool = False,
                       max_workers: Optional[int] = None) -> WorkloadResult:
        """Serve a mixed-tenant workload of (dataset, constraint) pairs."""
        self._maybe_rebalance(*(name for name, __ in requests))
        return self.executor.run_workload(requests, warm_cache=warm_cache,
                                          use_threads=use_threads,
                                          max_workers=max_workers)

    def serve_async(self, requests: Sequence[ServingRequest],
                    budgets: Optional[Dict[str, TenantBudget]] = None,
                    max_concurrency: int = 8,
                    warm_cache: bool = True,
                    admission: Optional[AdmissionController] = None
                    ) -> ServeResult:
        """Serve a multi-tenant request stream through the async executor.

        Each :class:`~repro.engine.serving.ServingRequest` carries a
        *tenant* (a logical client — many tenants may hit one dataset), a
        priority and an optional deadline.  Requests are scheduled per
        request instead of per dataset batch, so a slow tenant no longer
        head-of-line-blocks a fast one, and ``budgets`` throttles named
        tenants to a token-bucket I/O rate with a queue / reject / degrade
        policy.  The async path executes through the same core as the
        synchronous one: result cache, calibration and metrics are shared.

        Runs its own event loop; from an already-async context construct
        an :class:`~repro.engine.serving.AsyncExecutor` over
        ``engine.executor.core`` and ``await`` its ``serve`` directly.

        ``budgets`` builds a fresh admission controller per call — token
        balances reset between waves.  For a long-lived deployment pass
        a caller-held ``admission``
        :class:`~repro.engine.serving.AdmissionController` instead: its
        buckets persist across calls, so a tenant that exhausted its
        budget in one wave stays throttled in the next, and mid-wave
        overdrafts carry over (the two parameters are mutually
        exclusive).

        Examples
        --------
        One throttled tenant and one unconstrained tenant sharing a
        dataset::

            from repro.engine.serving import ServingRequest, TenantBudget

            requests = [
                ServingRequest(tenant="dashboard", dataset="servers",
                               constraint=cheap, priority=0),
                ServingRequest(tenant="batch_report", dataset="servers",
                               constraint=heavy, deadline_s=30.0),
            ]
            result = engine.serve_async(
                requests,
                budgets={"batch_report": TenantBudget(ios_per_s=200,
                                                      policy="queue")})
            print(result.outcomes())                     # {"served": 2}
            print(result.turnaround_percentile("dashboard", 0.95))
            print(engine.summary()["admission"])         # decision counts
        """
        if admission is not None and budgets:
            raise ValueError("pass either budgets (per-call buckets) or "
                             "admission (a caller-held controller whose "
                             "balances persist across calls), not both")
        self._maybe_rebalance(*(request.dataset for request in requests))
        executor = AsyncExecutor(
            self.executor.core,
            admission=(admission if admission is not None
                       else AdmissionController(budgets)),
            max_concurrency=max_concurrency,
            warm_cache_blocks=self.executor.warm_cache_blocks)
        return asyncio.run(executor.serve(requests, warm_cache=warm_cache))

    def serving_executor(self,
                         admission: Optional[AdmissionController] = None,
                         max_concurrency: int = 8) -> AsyncExecutor:
        """The engine-owned long-lived :class:`AsyncExecutor` handle.

        Created on first call (and cached on the engine) over the shared
        :class:`~repro.engine.executor.ExecutionCore`, so the network
        front-end's persistent scheduler serves through the same result
        cache, calibration and metrics as every other path.  ``admission``
        binds a caller-held long-lived
        :class:`~repro.engine.serving.AdmissionController` — budgets then
        persist for the executor's whole lifetime, the
        ``serve_async(admission=...)`` seam writ large.  While the
        scheduler is *running*, a call with a different controller
        raises — silently swapping budget state out from under a live
        server would be worse than an error; a stopped executor rebinds
        (a restarted server brings its own fresh key set).
        """
        if self._serving_executor is None:
            self._serving_executor = AsyncExecutor(
                self.executor.core,
                admission=(admission if admission is not None
                           else AdmissionController()),
                max_concurrency=max_concurrency,
                warm_cache_blocks=self.executor.warm_cache_blocks)
        elif admission is not None \
                and admission is not self._serving_executor.admission:
            self._serving_executor.rebind_admission(admission)
        return self._serving_executor

    def serve_http(self, keys, host: str = "127.0.0.1", port: int = 0,
                   **server_kwargs):
        """Start the HTTP front-end over this engine and return it.

        ``keys`` maps API keys to tenants and budgets (see
        :class:`repro.engine.server.ApiKey`); ``port=0`` binds an
        ephemeral port (read it back off ``server.address``).  The
        returned :class:`repro.engine.server.EngineServer` is already
        started — call its ``stop()`` (or use it as a context manager)
        to drain in-flight requests and shut down.
        """
        from repro.engine.server import EngineServer
        server = EngineServer(self, keys, host=host, port=port,
                              **server_kwargs)
        server.start()
        return server

    def calibrate(self, dataset: str,
                  constraints: Sequence[LinearConstraint]) -> int:
        """Probe every index with a few constraints to seed calibration.

        Runs each probe constraint through *every* candidate index with
        ``query_with_stats`` (cold cache) and feeds the observed I/Os into
        the planner, so routing starts from measured constants instead of
        the bounds' implicit constant 1.  On a sharded dataset every
        shard's indexes are probed (feeding the shared per-kind constant).
        Returns the total I/Os spent probing (a serving deployment pays
        this once at startup).
        """
        if self.catalog.is_sharded(dataset):
            children = [shard.dataset for shard in
                        self.catalog.sharded(dataset).nonempty_shards()]
        else:
            children = [self.catalog.dataset(dataset)]
        total = 0
        for constraint in constraints:
            for child in children:
                expected = child.estimate_output(constraint)
                for name, index in sorted(child.indexes.items()):
                    model = index.estimated_query_ios(constraint, expected)
                    result = index.query_with_stats(constraint,
                                                    clear_cache=True)
                    self.planner.observe(dataset, name, model,
                                         result.total_ios)
                    total += result.total_ios
        return total

    # ------------------------------------------------------------------
    # persistence / lifecycle
    # ------------------------------------------------------------------
    def save_calibration(self) -> None:
        """Persist the planner's calibration to ``calibration_path``.

        Raises :class:`RuntimeError` when the engine was constructed
        without one.
        """
        if self.calibration_store is None:
            raise RuntimeError("engine has no calibration_path configured")
        self.calibration_store.save(self.planner.export_calibration())

    def close(self) -> None:
        """Shut down workers, the fan-out pool, and every store backend."""
        if self.cluster is not None:
            self.cluster.stop()
        self.executor.shutdown()
        self.catalog.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def explain(self, dataset: str, constraint: LinearConstraint,
                analyze: bool = False, clear_cache: bool = True):
        """The plan the engine would choose — optionally executed.

        With ``analyze=False`` (the default) this is pure planning: the
        chosen plan (:data:`~repro.engine.planner.AnyPlan`) is returned
        without touching a store.  With ``analyze=True`` the query
        *executes* under a dedicated trace — even when engine-wide
        tracing is off — and a report dict comes back:

        * ``estimated_ios`` vs ``actual_ios`` (and store cache hits);
        * ``stages`` — per-stage wall-clock (planning, execution);
        * ``per_shard`` — on sharded datasets, each shard's span
          attributes: its replica, index, estimate, observed I/Os and
          the calibration constant that priced it, so estimation error
          is attributable to a specific shard;
        * ``stats_delta`` — the :class:`EngineStats` delta this run
          produced (the summed per-shard I/Os reconcile with it);
        * ``trace`` — the full span tree, and ``trace_id`` to refetch it.

        ``clear_cache=True`` (the default) empties the buffer pool and
        bypasses the result cache so the actuals are the query's cold
        cost.
        """
        if not analyze:
            return self.planner.plan(dataset, constraint)
        # A private always-on tracer keeps analyze working when the
        # engine was built with tracing=False (nothing lands in the
        # shared registry in that case — the report carries the tree).
        tracer = self.tracer if self.tracer.enabled else Tracer(max_traces=4)
        marker = self.stats.snapshot()
        trace = tracer.start_trace("explain", dataset=dataset)
        try:
            with activate(trace.root):
                answer = self.executor.execute(dataset, constraint,
                                               clear_cache=clear_cache)
        finally:
            trace.finish()
        delta = self.stats.snapshot_delta(marker)
        stages = [{"name": node.name,
                   "duration_ms": round(node.duration_s * 1e3, 3)}
                  for node in trace.root.children]
        per_shard = []
        for node in trace.spans("executor.shard"):
            entry = dict(node.attributes)
            entry["duration_ms"] = round(node.duration_s * 1e3, 3)
            per_shard.append(entry)
        return {
            "dataset": dataset,
            "analyze": True,
            "trace_id": trace.trace_id,
            "index": answer.index_name,
            "estimated_ios": answer.estimated_ios,
            "actual_ios": answer.ios.total,
            "cache_hits": answer.ios.cache_hits,
            "latency_s": answer.latency_s,
            "reported": answer.count,
            "from_result_cache": answer.from_result_cache,
            "shards_queried": answer.shards_queried,
            "shards_pruned": answer.shards_pruned,
            "stages": stages,
            "per_shard": per_shard,
            "stats_delta": delta,
            "trace": trace.to_dict(),
        }

    def summary(self) -> Dict[str, object]:
        """Aggregated serving metrics (see :meth:`EngineStats.summary`).

        In process-worker mode a ``"cluster"`` entry is merged in: the
        coordinator's topology snapshot (worker pids/ports/states,
        restart counts, write-log sizes, bypassed datasets).
        """
        summary = self.stats.summary()
        if self.cluster is not None:
            summary["cluster"] = self.cluster.describe()
        return summary
