"""The query engine facade: one object gluing catalog, planner, executor.

:class:`QueryEngine` is the serving entry point the examples and
benchmarks drive::

    engine = QueryEngine(block_size=64, seed=7)
    engine.register_dataset("screener", points)          # builds a suite
    result = engine.query("screener", constraint)        # planner-routed
    batch = engine.serve_batch("screener", constraints)  # warm, deduped
    print(engine.stats.to_table())

Everything the facade does is available piecemeal through its
:attr:`catalog`, :attr:`planner` and :attr:`executor` attributes; later
scaling work (sharded catalogs, async executors) is expected to swap those
components rather than grow this class.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.conjunction import ConstraintConjunction
from repro.engine.catalog import BuildRecord, Catalog
from repro.engine.executor import (
    BatchExecutor,
    BatchResult,
    ExecutedQuery,
    WorkloadResult,
)
from repro.engine.metrics import EngineStats
from repro.engine.planner import Plan, Planner
from repro.geometry.primitives import LinearConstraint


class QueryEngine:
    """Cost-based routing of linear-constraint queries over many datasets.

    Parameters
    ----------
    block_size / cache_blocks:
        Defaults for each dataset's shared simulated disk.
    sample_size:
        Per-dataset sample kept for selectivity estimation.
    result_cache_entries / warm_cache_blocks:
        Executor knobs: answer-LRU capacity and the buffer-pool size used
        while serving a batch.
    ewma_alpha:
        Planner calibration learning rate.
    seed:
        Seed for sampling and randomised index builds.
    """

    def __init__(self, block_size: int = 64, cache_blocks: int = 4,
                 sample_size: int = 512, result_cache_entries: int = 256,
                 warm_cache_blocks: int = 64, ewma_alpha: float = 0.25,
                 seed: Optional[int] = None):
        self.catalog = Catalog(block_size=block_size,
                               cache_blocks=cache_blocks,
                               sample_size=sample_size, seed=seed)
        self.planner = Planner(self.catalog, ewma_alpha=ewma_alpha)
        self.stats = EngineStats()
        self.executor = BatchExecutor(
            self.catalog, self.planner, stats=self.stats,
            result_cache_entries=result_cache_entries,
            warm_cache_blocks=warm_cache_blocks)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_dataset(self, name: str,
                         points: Sequence[Sequence[float]],
                         kinds: Optional[Sequence[str]] = None,
                         block_size: Optional[int] = None,
                         **catalog_kwargs) -> List[BuildRecord]:
        """Register a dataset and bulk-build its index suite.

        ``kinds`` picks the index families (default: the dimension's
        :func:`~repro.engine.catalog.default_suite`).  Returns the build
        records (space, build I/Os, wall-clock) for the benchmarks.
        """
        self.catalog.register_dataset(name, points, block_size=block_size,
                                      **catalog_kwargs)
        return self.catalog.build_suite(name, kinds=kinds)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def query(self, dataset: str, constraint: LinearConstraint,
              clear_cache: bool = False) -> ExecutedQuery:
        """Serve one constraint through the planner-chosen index."""
        return self.executor.execute(dataset, constraint,
                                     clear_cache=clear_cache)

    def query_conjunction(self, dataset: str,
                          conjunction: ConstraintConjunction,
                          clear_cache: bool = False) -> ExecutedQuery:
        """Serve an AND of constraints (convex-polytope query)."""
        return self.executor.execute_conjunction(dataset, conjunction,
                                                 clear_cache=clear_cache)

    def serve_batch(self, dataset: str,
                    constraints: Sequence[LinearConstraint],
                    warm_cache: bool = True) -> BatchResult:
        """Serve a batch against one dataset (dedup + warm buffer pool)."""
        return self.executor.run_batch(dataset, constraints,
                                       warm_cache=warm_cache)

    def serve_workload(self,
                       requests: Sequence[Tuple[str, LinearConstraint]],
                       warm_cache: bool = True, use_threads: bool = False,
                       max_workers: Optional[int] = None) -> WorkloadResult:
        """Serve a mixed-tenant workload of (dataset, constraint) pairs."""
        return self.executor.run_workload(requests, warm_cache=warm_cache,
                                          use_threads=use_threads,
                                          max_workers=max_workers)

    def calibrate(self, dataset: str,
                  constraints: Sequence[LinearConstraint]) -> int:
        """Probe every index with a few constraints to seed calibration.

        Runs each probe constraint through *every* candidate index with
        ``query_with_stats`` (cold cache) and feeds the observed I/Os into
        the planner, so routing starts from measured constants instead of
        the bounds' implicit constant 1.  Returns the total I/Os spent
        probing (a serving deployment pays this once at startup).
        """
        dataset_obj = self.catalog.dataset(dataset)
        total = 0
        for constraint in constraints:
            expected = dataset_obj.estimate_output(constraint)
            for name, index in sorted(dataset_obj.indexes.items()):
                model = index.estimated_query_ios(constraint, expected)
                result = index.query_with_stats(constraint, clear_cache=True)
                self.planner.observe(dataset, name, model, result.total_ios)
                total += result.total_ios
        return total

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def explain(self, dataset: str, constraint: LinearConstraint) -> Plan:
        """The plan the engine would choose, without executing it."""
        return self.planner.plan(dataset, constraint)

    def summary(self) -> Dict[str, object]:
        """Aggregated serving metrics (see :meth:`EngineStats.summary`)."""
        return self.stats.summary()
