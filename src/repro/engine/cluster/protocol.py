"""The cluster's wire protocol: length-prefixed JSON over local sockets.

One message is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON — the same compact framing acp-agents uses between its
agent-servers.  Requests and responses are flat JSON objects; the module
also owns the (de)serialization of the engine's query objects
(:class:`~repro.geometry.primitives.LinearConstraint`, conjunctions) and
of :class:`~repro.io.store.IOStats`, so the worker and the coordinator
can never disagree on a field name.

JSON floats round-trip exactly (Python serializes the shortest repr that
parses back to the same float64), so a constraint or point crossing the
process boundary is *bit-identical* on the other side — which is what
lets process-worker mode promise answer- and I/O-count-identical results
to the in-process fan-out.

The RPC operations (``op`` field of every request):

========== ==========================================================
``ping``        liveness probe; returns pid, uptime and served counts
``query``       one constraint or conjunction against a named index
``insert``      apply one routed write (with its fan-out-log ``seq``)
``delete``      apply one routed delete (idempotent by ``seq``)
``warm``        resize the replica's buffer pool (returns the old size)
``stats``       cumulative I/O counters and calibration observations
``shutdown``    stop the serve loop and exit the process
========== ==========================================================

The replica *spec* — including the dataset's selectivity-model kind and
parameters and the parent's conformal-calibrator config — does not
travel over this protocol: it rides the fork/pickle boundary at spawn
time (:func:`repro.engine.cluster.worker.build_spec`); the ``stats``
response echoes the resulting model name and conformal config back for
introspection.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, List, Optional, Sequence

from repro.core.conjunction import ConstraintConjunction, Halfspace
from repro.geometry.primitives import LinearConstraint
from repro.io.store import IOStats

#: Upper bound on one frame; a length above this means a corrupt or
#: foreign peer, not a real message (queries and answers are far
#: smaller; a full-shard answer of ~1e5 3-d points is ~8 MB of JSON).
MAX_MESSAGE_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed frame (bad length, truncated payload, invalid JSON)."""


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise ``ConnectionError`` on EOF."""
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                "peer closed mid-frame (%d of %d bytes missing)"
                % (remaining, count))
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, payload: Dict[str, object]) -> None:
    """Frame and send one JSON message."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    sock.sendall(_LENGTH.pack(len(data)) + data)


def recv_message(sock: socket.socket) -> Dict[str, object]:
    """Receive one framed JSON message (blocking)."""
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError("frame of %d bytes exceeds the %d-byte cap"
                            % (length, MAX_MESSAGE_BYTES))
    try:
        return json.loads(_recv_exact(sock, length).decode("utf-8"))
    except ValueError as exc:
        raise ProtocolError("invalid JSON frame: %s" % exc) from exc


# ----------------------------------------------------------------------
# payload (de)serialization
# ----------------------------------------------------------------------
def constraint_to_wire(constraint: LinearConstraint) -> Dict[str, object]:
    return {"coeffs": list(constraint.coeffs),
            "offset": float(constraint.offset)}


def constraint_from_wire(payload: Dict[str, object]) -> LinearConstraint:
    return LinearConstraint(
        coeffs=tuple(float(c) for c in payload["coeffs"]),
        offset=float(payload["offset"]))


def conjunction_to_wire(
        conjunction: ConstraintConjunction) -> Dict[str, object]:
    return {
        "constraints": [constraint_to_wire(c)
                        for c in conjunction.constraints],
        "halfspaces": [{"normal": list(h.normal), "offset": float(h.offset)}
                       for h in conjunction.extra_halfspaces],
    }


def conjunction_from_wire(
        payload: Dict[str, object]) -> ConstraintConjunction:
    return ConstraintConjunction(
        constraints=tuple(constraint_from_wire(c)
                          for c in payload["constraints"]),
        extra_halfspaces=tuple(
            Halfspace(normal=tuple(float(v) for v in h["normal"]),
                      offset=float(h["offset"]))
            for h in payload.get("halfspaces", ())))


def iostats_to_wire(ios: IOStats) -> Dict[str, int]:
    return {"reads": ios.reads, "writes": ios.writes,
            "allocations": ios.allocations, "frees": ios.frees,
            "cache_hits": ios.cache_hits}


def iostats_from_wire(payload: Dict[str, object]) -> IOStats:
    return IOStats(reads=int(payload["reads"]),
                   writes=int(payload["writes"]),
                   allocations=int(payload.get("allocations", 0)),
                   frees=int(payload.get("frees", 0)),
                   cache_hits=int(payload.get("cache_hits", 0)))


def points_to_wire(points: Sequence[Sequence[float]]) -> List[List[float]]:
    return [[float(c) for c in point] for point in points]


def points_from_wire(payload: Sequence[Sequence[float]]) -> List[tuple]:
    # Answers come back as the same tuples the in-process path reports.
    return [tuple(float(c) for c in point) for point in payload]


def trace_header(trace_id: Optional[str],
                 parent: Optional[str]) -> Optional[Dict[str, str]]:
    """The trace-propagation header attached to traced RPCs."""
    if not trace_id:
        return None
    return {"trace_id": trace_id, "parent": parent or ""}
