"""The engine's process layer: shard-replica workers behind a coordinator.

PRs 1–8 built the whole engine inside one Python process, so a K-way
shard fan-out contends on one GIL however many cores the host has.  This
package promotes each shard replica — already a self-contained
store+suite bundle behind its own lock — into a **worker process**
serving a compact length-prefixed JSON RPC protocol over localhost
sockets:

* :mod:`~repro.engine.cluster.protocol` — the wire format and payload
  (de)serialization;
* :mod:`~repro.engine.cluster.worker` — the :class:`ShardWorker` process
  entrypoint (deterministic replica rebuild + threaded serve loop);
* :mod:`~repro.engine.cluster.client` — the :class:`WorkerClient`
  connection pool and its failure taxonomy;
* :mod:`~repro.engine.cluster.coordinator` — the :class:`Coordinator`
  owning placement, the write fan-out log, heartbeats and replica
  failover;
* :mod:`~repro.engine.cluster.writelog` — the per-shard ordered
  mutation log that catches restarted workers up.

``QueryEngine(workers="process")`` turns the layer on; the default
in-process mode is untouched, and the executor falls back to its own
(always-current) state whenever no worker can serve a shard.
"""

from repro.engine.cluster.client import (
    WorkerClient,
    WorkerError,
    WorkerUnavailable,
)
from repro.engine.cluster.coordinator import Coordinator, WorkerHandle
from repro.engine.cluster.worker import ShardWorker, build_spec, worker_main
from repro.engine.cluster.writelog import LogEntry, WriteLog

__all__ = [
    "Coordinator",
    "LogEntry",
    "ShardWorker",
    "WorkerClient",
    "WorkerError",
    "WorkerHandle",
    "WorkerUnavailable",
    "WriteLog",
    "build_spec",
    "worker_main",
]
