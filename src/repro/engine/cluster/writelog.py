"""The coordinator's write fan-out log: per-shard ordered mutation records.

Every engine-level write that lands on a sharded dataset is appended
here (by the coordinator's :meth:`~repro.engine.cluster.coordinator.
Coordinator.note_write` hook, still under the dataset's write barrier,
so log order *is* apply order) before being broadcast to the shard's
worker processes.  A worker that died — or missed writes while dead —
is caught up by replaying the shard's log on restart: its replica is
rebuilt from the build-time chunk, then every logged ``(seq, op, point)``
is re-applied in order.  Workers treat ``seq`` idempotently (a sequence
number at or below their high-water mark is skipped), so replay and
live broadcast can safely overlap.

The log is bounded by the rebalance cycle, not by time: a re-split
rebuilds every shard's build array from the live points, which absorbs
the logged mutations, so :meth:`clear_dataset` empties the dataset's
log at that moment (the coordinator's rebalance hook does this before
restarting the workers on the new layout).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

#: One logged mutation: (sequence number, "insert"/"delete", point).
LogEntry = Tuple[int, str, Tuple[float, ...]]


class WriteLog:
    """Ordered per-(dataset, shard) mutation records with monotonic seqs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[str, int], List[LogEntry]] = {}
        self._next_seq: Dict[Tuple[str, int], int] = {}

    def append(self, dataset: str, shard_id: int, op: str,
               point: Tuple[float, ...]) -> int:
        """Record one mutation; returns its (per-shard) sequence number."""
        key = (dataset, shard_id)
        with self._lock:
            seq = self._next_seq.get(key, 0) + 1
            self._next_seq[key] = seq
            self._entries.setdefault(key, []).append((seq, op, point))
            return seq

    def entries(self, dataset: str, shard_id: int) -> List[LogEntry]:
        """Every logged mutation for one shard, in apply order."""
        with self._lock:
            return list(self._entries.get((dataset, shard_id), ()))

    def clear_dataset(self, dataset: str) -> int:
        """Drop a dataset's whole log (a re-split absorbed it); returns
        the number of entries dropped.  Sequence numbers restart from 1 —
        workers are restarted from the new layout at the same moment, so
        their high-water marks restart with them."""
        with self._lock:
            keys = [key for key in self._entries if key[0] == dataset]
            dropped = sum(len(self._entries[key]) for key in keys)
            for key in keys:
                del self._entries[key]
                self._next_seq.pop(key, None)
            return dropped

    def sizes(self) -> Dict[str, int]:
        """Logged-entry counts per ``dataset#shard`` (for ``describe()``)."""
        with self._lock:
            return {"%s#%d" % key: len(entries)
                    for key, entries in sorted(self._entries.items())}
