"""Connection-pooling RPC client for one shard-worker process.

A :class:`WorkerClient` owns a small pool of sockets to one worker.
Concurrent callers (fan-out pool threads, the write path, the
heartbeat monitor) each check a connection out, so a heartbeat is never
stuck behind a long query — the worker serves every connection on its
own thread and serializes actual work on its store lock, which is the
same interleaving the in-process executor produces.

Failures split into two kinds the coordinator treats differently:

* :class:`WorkerUnavailable` — the socket died (worker crashed, was
  killed, or never answered).  The caller fails over to another replica
  and the coordinator marks the worker dead for restart.
* :class:`WorkerError` — the worker answered with an application error
  (unknown index, bad payload).  That is a bug, not a death; it
  propagates.
"""

from __future__ import annotations

import socket
import threading
from typing import Dict, List, Optional, Tuple

from repro.engine.cluster import protocol


class WorkerUnavailable(RuntimeError):
    """The worker's socket is gone — fail over, then restart the worker."""


class WorkerError(RuntimeError):
    """The worker answered with an application-level error."""


class WorkerClient:
    """A pooled length-prefixed-JSON RPC client for one worker address."""

    def __init__(self, address: Tuple[str, int], timeout_s: float = 30.0,
                 max_idle: int = 4):
        self.address = address
        self.timeout_s = timeout_s
        self._max_idle = max_idle
        self._idle: List[socket.socket] = []
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # pool plumbing
    # ------------------------------------------------------------------
    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._closed:
                raise WorkerUnavailable("client for %s:%d is closed"
                                        % self.address)
            if self._idle:
                return self._idle.pop()
        try:
            sock = socket.create_connection(self.address,
                                            timeout=self.timeout_s)
        except OSError as exc:
            raise WorkerUnavailable("cannot reach worker at %s:%d: %s"
                                    % (self.address[0], self.address[1],
                                       exc)) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self._max_idle:
                self._idle.append(sock)
                return
        sock.close()

    def close(self) -> None:
        """Drop every pooled connection (idempotent)."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for sock in idle:
            sock.close()

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def call(self, payload: Dict[str, object],
             timeout_s: Optional[float] = None) -> Dict[str, object]:
        """One request/response round trip on a pooled connection."""
        sock = self._checkout()
        if timeout_s is not None:
            sock.settimeout(timeout_s)
        try:
            protocol.send_message(sock, payload)
            response = protocol.recv_message(sock)
        except (OSError, ConnectionError, protocol.ProtocolError) as exc:
            sock.close()
            raise WorkerUnavailable(
                "worker at %s:%d failed mid-call: %s"
                % (self.address[0], self.address[1], exc)) from exc
        if timeout_s is not None:
            sock.settimeout(self.timeout_s)
        self._checkin(sock)
        if not response.get("ok"):
            raise WorkerError(str(response.get("error", "unknown error")))
        return response

    def ping(self, timeout_s: float = 2.0) -> Dict[str, object]:
        """Liveness probe with a short deadline (heartbeat monitor)."""
        return self.call({"op": "ping"}, timeout_s=timeout_s)
