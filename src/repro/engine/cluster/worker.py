"""The shard-worker process: one replica served over the RPC protocol.

:func:`worker_main` is the process entrypoint the coordinator forks.  It
rebuilds its replica *deterministically* from the spec — a fresh
mini-:class:`~repro.engine.catalog.Catalog` with the parent's effective
block size, buffer-pool size, sample size, seed and selectivity-model
configuration (stats model kind/params plus the parent's conformal
calibrator config, so an ensemble-configured dataset rebuilds identical
models), the replica's
build-time points, and a replay of the sharded dataset's recorded
``suite_builds`` (index builds are seeded through the catalog, so the
structures come out identical) — then replays the write fan-out log it
was handed.  Because the store layout and index structure match the
parent's replica bit for bit, the per-query I/O counters a worker
reports are exactly what the in-process fan-out would have measured:
that determinism, not state shipping, is what makes process mode
answer- and I/O-count-identical to in-process mode.

Workers always build on the ``"memory"`` backend regardless of the
parent's: block accounting is backend-independent (the backend-parity
benchmark pins that), and two processes appending to one block file
would corrupt it.

The serve loop accepts connections on an ephemeral localhost port
(reported back through the spawn pipe) and handles each connection on
its own thread; per-request work serializes on the replica's store lock
exactly as the in-process executor does, so concurrent queries, writes
and heartbeats interleave with the same semantics in both modes.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.conjunction import query_conjunction
from repro.core.kernels import vectorized_enabled
from repro.engine.catalog import Catalog
from repro.engine.cluster import protocol


def build_spec(dataset: str, shard_id: int, replica_id: int,
               replica_name: str, points: np.ndarray, dimension: int,
               block_size: int, cache_blocks: int, sample_size: int,
               seed: Optional[int],
               suite_builds: List[Dict[str, object]],
               log: List[Tuple[int, str, Tuple[float, ...]]],
               stats_model: object = "uniform",
               stats_params: Optional[Dict[str, object]] = None,
               conformal: Optional[Dict[str, object]] = None
               ) -> Dict[str, object]:
    """The picklable replica description a worker process is spawned with.

    ``points`` is the replica's *build-time* array (the parent keeps it
    immutable on the child dataset); every mutation since build rides in
    ``log``.  An empty array marks a lazily-materialized shard, whose
    builds replay :meth:`Catalog.materialize_shard`'s dimension
    defaulting.  ``stats_model`` / ``stats_params`` are the dataset's
    *effective* selectivity-model configuration (register-time override
    or catalog default), so the worker's mini-catalog rebuilds the
    identical model — uniform, histogram or ensemble — over the replica;
    ``conformal`` is the parent calibrator's
    :meth:`~repro.engine.stats.ConformalCalibrator.config` snapshot,
    carried so the worker's configuration is a faithful replica of the
    parent's estimation stack (the spec travels by pickle through the
    fork, not over the socket protocol).
    """
    return {
        "dataset": dataset, "shard_id": shard_id, "replica_id": replica_id,
        "replica_name": replica_name, "points": np.asarray(points),
        "dimension": int(dimension), "block_size": int(block_size),
        "cache_blocks": int(cache_blocks), "sample_size": int(sample_size),
        "seed": seed,
        "suite_builds": [dict(build) for build in suite_builds],
        "materialized": len(points) == 0,
        "log": list(log),
        "stats_model": stats_model,
        "stats_params": dict(stats_params or {}),
        "conformal": dict(conformal or {}),
    }


class ShardWorker:
    """One shard replica rebuilt in this process and served over RPC."""

    def __init__(self, spec: Dict[str, object]):
        self.spec = spec
        # Older specs (pre-stats-config) default to the provisional
        # uniform model; current coordinators always fill these in.
        self._catalog = Catalog(
            block_size=spec["block_size"],
            cache_blocks=spec["cache_blocks"],
            sample_size=spec["sample_size"],
            seed=spec["seed"], backend="memory",
            stats_model=spec.get("stats_model", "uniform"),
            stats_params=spec.get("stats_params"))
        self.conformal_config: Dict[str, object] = dict(
            spec.get("conformal") or {})
        self.dataset = self._catalog.adopt_replica(
            spec["replica_name"], spec["points"], spec["suite_builds"],
            dimension=spec["dimension"],
            materialized=spec["materialized"])
        self._started_s = time.perf_counter()
        self._stop = threading.Event()
        self._lock = threading.Lock()     # counters below
        self._served = 0
        self._writes_applied = 0
        self._last_seq = 0
        #: Cumulative (index_name, model_ios, observed_cold_ios) feedback
        #: summaries, drained by the ``stats`` op.
        self._observations: Dict[str, Dict[str, float]] = {}
        for seq, op, point in spec["log"]:
            self._apply_write(op, tuple(point), int(seq))

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def handle(self, request: Dict[str, object]) -> Dict[str, object]:
        """Dispatch one RPC request to its handler."""
        op = request.get("op")
        if op == "ping":
            return self._op_ping()
        if op == "query":
            return self._op_query(request)
        if op in ("insert", "delete"):
            return self._op_write(op, request)
        if op == "warm":
            return self._op_warm(request)
        if op == "stats":
            return self._op_stats()
        if op == "shutdown":
            self._stop.set()
            return {"ok": True, "stopping": True}
        return {"ok": False, "error": "unknown op %r" % (op,)}

    def _op_ping(self) -> Dict[str, object]:
        with self._lock:
            return {"ok": True, "pid": os.getpid(),
                    "uptime_s": time.perf_counter() - self._started_s,
                    "served": self._served, "writes": self._writes_applied,
                    "last_seq": self._last_seq}

    def _op_query(self, request: Dict[str, object]) -> Dict[str, object]:
        index_name = request["index"]
        index = self.dataset.indexes.get(index_name)
        if index is None:
            return {"ok": False, "error": "unknown index %r on replica %r"
                                          % (index_name, self.dataset.name)}
        if "conjunction" in request:
            conjunction = protocol.conjunction_from_wire(
                request["conjunction"])
            constraint = None
        else:
            constraint = protocol.constraint_from_wire(request["constraint"])
            conjunction = None
        store = self.dataset.store
        started = time.perf_counter()
        # Same discipline as the in-process executor: whole queries
        # serialize on the store, so the buffer pool sees the same
        # operation sequence in both modes and I/O parity holds.
        with store.lock:
            if request.get("clear_cache"):
                store.clear_cache()
            before = store.stats.snapshot()
            if conjunction is not None:
                points = query_conjunction(index, conjunction)
            else:
                points = index.query(constraint)
            ios = store.stats.delta(before)
        elapsed = time.perf_counter() - started
        trace = request.get("trace") or {}
        with self._lock:
            self._served += 1
            summary = self._observations.setdefault(
                index_name, {"queries": 0, "cold_ios": 0})
            summary["queries"] += 1
            summary["cold_ios"] += ios.total + ios.cache_hits
        response = {
            "ok": True,
            "points": protocol.points_to_wire(points),
            "ios": protocol.iostats_to_wire(ios),
        }
        if trace.get("trace_id"):
            # The span subtree the parent grafts under its executor.shard
            # node: worker-side wall time plus enough attributes to tell
            # which process answered.  Clocks are per-process, so the
            # parent anchors the subtree at its own span's start.
            response["span"] = {
                "name": "worker.query",
                "duration_s": elapsed,
                "attributes": {
                    "trace_id": trace["trace_id"],
                    "parent": trace.get("parent", ""),
                    "pid": os.getpid(),
                    "replica": self.dataset.name,
                    "ios": ios.total,
                    "cache_hits": ios.cache_hits,
                    "vectorized": vectorized_enabled(),
                },
            }
        return response

    def _op_write(self, op: str, request: Dict[str, object]
                  ) -> Dict[str, object]:
        seq = int(request["seq"])
        record = tuple(float(c) for c in request["point"])
        applied, ios, duplicate = self._apply_write(op, record, seq)
        return {"ok": True, "applied": applied, "ios": ios,
                "duplicate": duplicate, "seq": seq}

    def _apply_write(self, op: str, record: Tuple[float, ...],
                     seq: int) -> Tuple[bool, int, bool]:
        """Apply one logged/broadcast mutation, idempotently by ``seq``.

        Replay and live broadcast may overlap around a restart; the
        high-water mark makes the overlap harmless (at-least-once
        delivery, exactly-once application).
        """
        with self._lock:
            if seq <= self._last_seq:
                return False, 0, True
            self._last_seq = seq
        index = Catalog.mutable_index_of(self.dataset)
        store = self.dataset.store
        with store.lock:
            before = store.stats.snapshot()
            if op == "insert":
                index.insert(record)
                applied = True
            else:
                applied = bool(index.delete(record))
            delta = store.stats.delta(before)
        with self._lock:
            self._writes_applied += 1
        return applied, delta.total + delta.cache_hits, False

    def _op_warm(self, request: Dict[str, object]) -> Dict[str, object]:
        store = self.dataset.store
        target = int(request["cache_blocks"])
        if request.get("at_least"):
            target = max(store.cache_blocks, target)
        previous = store.resize_cache(target)
        return {"ok": True, "previous": previous,
                "cache_blocks": store.cache_blocks}

    def _op_stats(self) -> Dict[str, object]:
        totals = self.dataset.store.stats.snapshot()
        with self._lock:
            return {"ok": True, "pid": os.getpid(),
                    "replica": self.dataset.name,
                    "served": self._served,
                    "writes": self._writes_applied,
                    "last_seq": self._last_seq,
                    "ios": protocol.iostats_to_wire(totals),
                    "stats_model": getattr(self.dataset.stats, "name",
                                           None),
                    "conformal": dict(self.conformal_config),
                    "observations": {name: dict(summary)
                                     for name, summary
                                     in self._observations.items()}}

    # ------------------------------------------------------------------
    # serve loop
    # ------------------------------------------------------------------
    def serve(self, pipe) -> None:
        """Bind an ephemeral port, report it, accept until shut down."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(16)
        listener.settimeout(0.2)
        pipe.send({"port": listener.getsockname()[1], "pid": os.getpid()})
        pipe.close()
        try:
            while not self._stop.is_set():
                try:
                    connection, __ = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_connection, args=(connection,),
                    name="worker-conn", daemon=True)
                thread.start()
        finally:
            listener.close()

    def _serve_connection(self, connection: socket.socket) -> None:
        connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            while not self._stop.is_set():
                try:
                    request = protocol.recv_message(connection)
                except (ConnectionError, OSError, protocol.ProtocolError):
                    break
                try:
                    response = self.handle(request)
                except Exception as exc:  # per-request isolation
                    response = {"ok": False,
                                "error": "%s: %s" % (type(exc).__name__,
                                                     exc)}
                try:
                    protocol.send_message(connection, response)
                except (ConnectionError, OSError):
                    break
        finally:
            connection.close()


def worker_main(spec: Dict[str, object], pipe) -> None:
    """Process entrypoint: build the replica, then serve until shut down."""
    ShardWorker(spec).serve(pipe)
