"""The coordinator: worker placement, heartbeats, and replica failover.

One :class:`Coordinator` sits between the executor's shard fan-out and a
fleet of :mod:`~repro.engine.cluster.worker` processes — one process per
non-empty shard replica of every covered sharded dataset.  It owns:

* **placement** — :meth:`start_dataset` forks a worker per replica, each
  rebuilding its replica deterministically from a
  :func:`~repro.engine.cluster.worker.build_spec`;
* **the write fan-out log** — the engine's write path reports every
  sharded mutation (still under the dataset's write barrier) to
  :meth:`note_write`, which appends it to the :class:`WriteLog` and
  broadcasts it to the shard's live workers;
* **heartbeats and failover** — a monitor thread pings every worker; a
  dead worker's queries route to the shard's surviving replicas (the
  executor's ultimate fallback is its own in-process state, which the
  parent keeps current regardless of mode), and the worker is restarted
  and caught up by replaying the shard's log (workers apply ``seq``
  idempotently, so replay and live broadcast overlap safely);
* **cache propagation** — warm-serving windows resize worker buffer
  pools alongside the parent's so I/O accounting matches in both modes.

Safety valve: a *direct* index mutation (user code bypassing the
engine's write path) never reaches the log, so the coordinator marks
that dataset **bypassed** — its queries run in-process from then on —
rather than serving answers from silently diverged workers.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.core.conjunction import ConstraintConjunction
from repro.engine.catalog import Catalog
from repro.engine.cluster import protocol, worker
from repro.engine.cluster.client import (
    WorkerClient,
    WorkerError,
    WorkerUnavailable,
)
from repro.engine.cluster.writelog import WriteLog
from repro.engine.sharding import Shard
from repro.geometry.primitives import LinearConstraint
from repro.io.store import IOStats


def _fork_context():
    """Fork when the platform has it (cheap, inherits built state for
    nothing — the worker rebuilds anyway); default context elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class WorkerHandle:
    """One live-or-dead worker process and its RPC client."""

    def __init__(self, dataset: str, shard_id: int, replica_id: int,
                 replica_name: str, process, client: WorkerClient,
                 port: int, pid: int):
        self.dataset = dataset
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.replica_name = replica_name
        self.process = process
        self.client = client
        self.port = port
        self.pid = pid
        self.alive = True
        self.restarts = 0
        self.served = 0
        #: Highest write-log ``seq`` the coordinator has delivered to
        #: this worker (spec snapshot, catch-up replay and live
        #: broadcast all advance it) — the worker's replay position as
        #: the coordinator knows it, without an RPC round-trip.
        self.last_seq = 0

    @property
    def key(self) -> Tuple[str, int, int]:
        return (self.dataset, self.shard_id, self.replica_id)

    @property
    def address(self) -> str:
        """The worker's listen address (always loopback)."""
        return "127.0.0.1:%d" % self.port

    def describe(self) -> Dict[str, object]:
        return {"replica": self.replica_name, "pid": self.pid,
                "port": self.port, "address": self.address,
                "state": "live" if self.alive else "dead",
                "restarts": self.restarts, "served": self.served,
                "last_seq": self.last_seq}


class Coordinator:
    """Placement, heartbeats and failover for process-mode shard workers.

    Parameters
    ----------
    catalog:
        The engine's catalog (source of replica specs and suite builds).
    heartbeat_interval_s:
        Monitor-thread ping period; 0 disables the background monitor
        (tests then drive :meth:`check_workers` deterministically).
    spawn_timeout_s:
        How long to wait for a forked worker's port handshake before
        declaring the spawn failed.
    auto_restart:
        Whether the monitor restarts dead workers itself (failover to
        surviving replicas happens either way).
    conformal:
        The parent engine's conformal-calibrator configuration
        (:meth:`~repro.engine.stats.ConformalCalibrator.config`),
        forwarded in every worker spec so worker processes replicate
        the parent's estimation stack exactly.
    """

    def __init__(self, catalog: Catalog, heartbeat_interval_s: float = 1.0,
                 spawn_timeout_s: float = 60.0, auto_restart: bool = True,
                 conformal: Optional[Dict[str, object]] = None):
        self._catalog = catalog
        self._conformal = dict(conformal or {})
        self.log = WriteLog()
        self._mp = _fork_context()
        self._spawn_timeout_s = spawn_timeout_s
        self._heartbeat_interval_s = heartbeat_interval_s
        self._auto_restart = auto_restart
        # Guards the tables below; also serializes write broadcast and
        # restart catch-up, so a restarted worker can never observe
        # sequence numbers out of order (its idempotence check would
        # silently drop the write that arrived late).
        self._lock = threading.RLock()
        self._workers: Dict[Tuple[str, int, int], WorkerHandle] = {}
        self._covered: set = set()
        self._bypassed: set = set()
        self._stopped = False
        self._monitor: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def start_dataset(self, name: str) -> int:
        """Spawn one worker per non-empty shard replica; returns how many."""
        sharded = self._catalog.sharded(name)
        spawned = 0
        for shard in sharded.nonempty_shards():
            for replica_id in range(shard.num_replicas):
                self._spawn(name, shard, replica_id)
                spawned += 1
        with self._lock:
            self._covered.add(name)
        self._ensure_monitor()
        return spawned

    def stop_dataset(self, name: str) -> None:
        """Shut down and forget every worker of one dataset."""
        with self._lock:
            handles = [handle for handle in self._workers.values()
                       if handle.dataset == name]
            for handle in handles:
                del self._workers[handle.key]
            self._covered.discard(name)
        for handle in handles:
            self._shutdown_handle(handle)

    def _effective_stats(self, sharded) -> Tuple[object, Dict[str, object]]:
        """The dataset's effective selectivity-model configuration.

        Mirrors :meth:`Catalog._make_stats` resolution: a register-time
        override wins (and does *not* inherit catalog-wide params, which
        belong to the catalog's model kind); otherwise the catalog
        defaults apply.  Workers rebuild their replica models from this,
        so an ensemble-configured dataset comes out identical in process
        mode.
        """
        params = sharded.register_params
        if params.get("stats_model") is None:
            stats_params = params.get("stats_params")
            return (self._catalog.stats_model,
                    dict(stats_params) if stats_params is not None
                    else self._catalog.stats_params)
        return params["stats_model"], dict(params.get("stats_params") or {})

    def _spawn(self, dataset_name: str, shard: Shard,
               replica_id: int) -> WorkerHandle:
        """Fork one worker for a replica and wait for its port handshake.

        The spec snapshots the shard's write log; anything appended while
        the child is rebuilding is caught up under the coordinator lock
        right after registration (idempotent re-send of the full log, in
        order), closing the spawn-window gap without holding the lock
        across the fork.
        """
        sharded = self._catalog.sharded(dataset_name)
        replica = shard.replicas[replica_id]
        stats_model, stats_params = self._effective_stats(sharded)
        log_entries = self.log.entries(dataset_name, shard.shard_id)
        spec = worker.build_spec(
            dataset_name, shard.shard_id, replica_id, replica.name,
            replica.points, sharded.dimension,
            replica.store.block_size, replica.store.cache_blocks,
            self._catalog.sample_size, self._catalog.seed,
            sharded.suite_builds, log_entries,
            stats_model=stats_model, stats_params=stats_params,
            conformal=self._conformal)
        parent_end, child_end = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=worker.worker_main, args=(spec, child_end),
            name="repro-worker-%s" % replica.name, daemon=True)
        process.start()
        child_end.close()
        if not parent_end.poll(self._spawn_timeout_s):
            process.terminate()
            parent_end.close()
            raise RuntimeError(
                "worker for replica %r did not report a port within %.1fs"
                % (replica.name, self._spawn_timeout_s))
        hello = parent_end.recv()
        parent_end.close()
        client = WorkerClient(("127.0.0.1", int(hello["port"])))
        handle = WorkerHandle(dataset_name, shard.shard_id, replica_id,
                              replica.name, process, client,
                              int(hello["port"]), int(hello["pid"]))
        if log_entries:
            # The spec's log snapshot was already applied during rebuild.
            handle.last_seq = max(seq for seq, __, __ in log_entries)
        with self._lock:
            previous = self._workers.get(handle.key)
            self._workers[handle.key] = handle
            if previous is not None:
                handle.restarts = previous.restarts + 1
            # Catch-up replay under the lock: writes that landed during
            # the rebuild are re-sent in order (the worker skips the ones
            # its spec already carried), and no new broadcast can
            # interleave until the replay finishes.
            for seq, op, point in self.log.entries(dataset_name,
                                                   shard.shard_id):
                try:
                    handle.client.call({"op": op, "point": list(point),
                                        "seq": seq})
                    handle.last_seq = max(handle.last_seq, seq)
                except WorkerUnavailable:
                    handle.alive = False
                    break
        if previous is not None:
            previous.client.close()
        return handle

    def restart_worker(self, dataset_name: str, shard_id: int,
                       replica_id: int) -> Optional[WorkerHandle]:
        """Respawn one (dead) worker and catch it up from the write log."""
        with self._lock:
            if self._stopped or dataset_name in self._bypassed:
                return None
        sharded = self._catalog.sharded(dataset_name)
        shard = sharded.shards[shard_id]
        if shard.is_empty or replica_id >= shard.num_replicas:
            return None
        return self._spawn(dataset_name, shard, replica_id)

    # ------------------------------------------------------------------
    # the query transport
    # ------------------------------------------------------------------
    def run_query(self, dataset_name: str, shard: Shard, replica_id: int,
                  index_name: str,
                  constraint: Optional[LinearConstraint] = None,
                  conjunction: Optional[ConstraintConjunction] = None,
                  clear_cache: bool = False,
                  trace_id: Optional[str] = None,
                  parent: Optional[str] = None
                  ) -> Optional[Tuple[List[tuple], IOStats, int,
                                      Optional[Dict[str, object]]]]:
        """Serve one per-shard query on a worker, failing over replicas.

        Returns ``(points, ios, served_replica_id, span_payload)`` from
        the first worker that answers — preferring the replica the
        picker acquired — or ``None`` when no worker can serve it
        (uncovered dataset, bypassed dataset, or every replica's worker
        dead), telling the executor to run the shard in-process.  A
        failed attempt charges no I/Os: only the serving worker's
        counters are returned, so failover never loses or double-counts
        a block transfer.
        """
        with self._lock:
            if (self._stopped or dataset_name not in self._covered
                    or dataset_name in self._bypassed):
                return None
            order = [replica_id] + [r for r in range(shard.num_replicas)
                                    if r != replica_id]
            candidates = [self._workers.get((dataset_name, shard.shard_id,
                                             r)) for r in order]
        request: Dict[str, object] = {"op": "query", "index": index_name}
        if conjunction is not None:
            request["conjunction"] = protocol.conjunction_to_wire(
                conjunction)
        else:
            request["constraint"] = protocol.constraint_to_wire(constraint)
        if clear_cache:
            request["clear_cache"] = True
        trace = protocol.trace_header(trace_id, parent)
        if trace is not None:
            request["trace"] = trace
        for handle in candidates:
            if handle is None or not handle.alive:
                continue
            try:
                response = handle.client.call(request)
            except WorkerUnavailable:
                self.mark_dead(handle)
                continue
            handle.served += 1
            return (protocol.points_from_wire(response["points"]),
                    protocol.iostats_from_wire(response["ios"]),
                    handle.replica_id, response.get("span"))
        return None

    # ------------------------------------------------------------------
    # the write fan-out
    # ------------------------------------------------------------------
    def note_write(self, dataset_name: str, shard_id: int, op: str,
                   record: Tuple[float, ...], applied: bool) -> None:
        """Log one committed sharded mutation and broadcast it to workers.

        Wired as the write path's post-commit listener, so it runs under
        the dataset's write barrier: log order is apply order.  The
        parent already applied the mutation to its own replicas (the
        unchanged fan-out), so worker write I/Os are *not* re-charged —
        the broadcast only keeps the worker copies current.  A worker
        that cannot be reached is marked dead; the log replays the write
        into its restart.
        """
        del applied  # logged either way: a no-op delete replays as one
        with self._lock:
            if (self._stopped or shard_id < 0
                    or dataset_name not in self._covered
                    or dataset_name in self._bypassed):
                return
            seq = self.log.append(dataset_name, shard_id, op, record)
            payload = {"op": op, "point": [float(c) for c in record],
                       "seq": seq}
            for handle in list(self._workers.values()):
                if (handle.dataset != dataset_name
                        or handle.shard_id != shard_id
                        or not handle.alive):
                    continue
                try:
                    handle.client.call(payload)
                    handle.last_seq = seq
                except WorkerUnavailable:
                    self.mark_dead(handle)

    def on_materialize(self, dataset_name: str, shard_id: int) -> None:
        """Write-path listener: a lazily materialized shard grew replicas.

        Fires (under the write barrier) before the triggering insert
        fans out, so the new shard's workers exist before its first
        logged write is broadcast.
        """
        with self._lock:
            if (self._stopped or dataset_name not in self._covered
                    or dataset_name in self._bypassed):
                return
        shard = self._catalog.sharded(dataset_name).shards[shard_id]
        for replica_id in range(shard.num_replicas):
            self._spawn(dataset_name, shard, replica_id)

    def on_rebalance(self, dataset_name: str) -> None:
        """Rebalance listener: rebuild the dataset's fleet on the new layout.

        The re-split's rebuilt shards absorbed every logged mutation into
        their build arrays, so the dataset's log is cleared and its
        workers restart from the new generation's specs.
        """
        with self._lock:
            if self._stopped or dataset_name not in self._covered:
                return
        self.stop_dataset(dataset_name)
        self.log.clear_dataset(dataset_name)
        self.start_dataset(dataset_name)

    def note_index_mutation(self, dataset_name: str, shard: Shard) -> None:
        """Index-mutation listener: detect writes that bypassed the engine.

        Mutations through the engine's write path happen inside the
        shard's fan-out (the listener fires on the fanning thread); a
        mutation from any *other* thread context went directly to the
        index, never reached the write log, and has silently diverged
        the workers — so the dataset drops to in-process serving for
        good, which is always correct (the parent's state is current).
        """
        if shard._fanout_owner == threading.get_ident():
            return
        with self._lock:
            if dataset_name in self._covered:
                self._bypassed.add(dataset_name)

    def bypassed(self, dataset_name: str) -> bool:
        """True when the dataset fell back to in-process serving."""
        with self._lock:
            return dataset_name in self._bypassed

    # ------------------------------------------------------------------
    # cache propagation (warm-serving windows)
    # ------------------------------------------------------------------
    def resize_caches(self, names, warm_cache_blocks: int) -> List[Tuple]:
        """Mirror a warm-serving resize onto every covered worker.

        Returns restore tokens for :meth:`restore_caches`; tokens name
        the worker by key (not by handle), so a worker restarted inside
        the window — whose spec inherited the warmed parent size — is
        still restored to its pre-warm pool.
        """
        tokens: List[Tuple] = []
        with self._lock:
            handles = [handle for handle in self._workers.values()
                       if handle.dataset in set(names) and handle.alive
                       and handle.dataset not in self._bypassed]
        for handle in handles:
            try:
                response = handle.client.call(
                    {"op": "warm", "cache_blocks": int(warm_cache_blocks),
                     "at_least": True})
            except WorkerUnavailable:
                self.mark_dead(handle)
                continue
            tokens.append((handle.key, int(response["previous"])))
        return tokens

    def restore_caches(self, tokens: List[Tuple]) -> None:
        """Undo :meth:`resize_caches` on whichever workers still serve."""
        for key, previous in tokens:
            with self._lock:
                handle = self._workers.get(key)
            if handle is None or not handle.alive:
                continue
            try:
                handle.client.call({"op": "warm", "cache_blocks": previous,
                                    "at_least": False})
            except WorkerUnavailable:
                self.mark_dead(handle)

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def mark_dead(self, handle: WorkerHandle) -> None:
        """Record a worker as dead (its queries fail over immediately)."""
        with self._lock:
            handle.alive = False
        handle.client.close()

    def check_workers(self, restart: Optional[bool] = None) -> List[Tuple]:
        """Ping every worker; mark the unreachable dead; optionally respawn.

        Returns the keys of workers found (or already marked) dead this
        round, after any restarts.  ``restart`` defaults to the
        coordinator's ``auto_restart`` setting; tests call this directly
        for deterministic failover coverage.
        """
        if restart is None:
            restart = self._auto_restart
        with self._lock:
            if self._stopped:
                return []
            handles = list(self._workers.values())
        dead: List[Tuple] = []
        for handle in handles:
            if handle.alive and handle.process.is_alive():
                try:
                    handle.client.ping()
                    continue
                except (WorkerUnavailable, WorkerError):
                    pass
            if handle.alive:
                self.mark_dead(handle)
            dead.append(handle.key)
        if restart:
            for dataset_name, shard_id, replica_id in dead:
                try:
                    self.restart_worker(dataset_name, shard_id, replica_id)
                except RuntimeError:
                    pass  # still down; next round tries again
        return dead

    def _ensure_monitor(self) -> None:
        if self._heartbeat_interval_s <= 0:
            return
        with self._lock:
            if self._stopped or self._monitor is not None:
                return
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="repro-cluster-monitor",
                daemon=True)
            self._monitor.start()

    def _monitor_loop(self) -> None:
        while True:
            time.sleep(self._heartbeat_interval_s)
            with self._lock:
                if self._stopped:
                    return
            try:
                self.check_workers()
            except Exception:  # the monitor must outlive any one round
                pass

    # ------------------------------------------------------------------
    # introspection and shutdown
    # ------------------------------------------------------------------
    def worker(self, dataset_name: str, shard_id: int,
               replica_id: int) -> Optional[WorkerHandle]:
        """The current handle for one replica's worker (tests kill these)."""
        with self._lock:
            return self._workers.get((dataset_name, shard_id, replica_id))

    def worker_stats(self, dataset_name: str, shard_id: int,
                     replica_id: int) -> Optional[Dict[str, object]]:
        """One worker's cumulative counters (the ``stats`` RPC), or None."""
        handle = self.worker(dataset_name, shard_id, replica_id)
        if handle is None or not handle.alive:
            return None
        try:
            return handle.client.call({"op": "stats"})
        except WorkerUnavailable:
            self.mark_dead(handle)
            return None

    def describe(self) -> Dict[str, object]:
        """JSON-safe topology snapshot (engine summary / HTTP stats)."""
        with self._lock:
            workers: Dict[str, List[Dict[str, object]]] = {}
            for handle in self._workers.values():
                workers.setdefault(handle.dataset, []).append(
                    handle.describe())
            for listing in workers.values():
                listing.sort(key=lambda entry: entry["replica"])
            return {
                "mode": "process",
                "datasets": sorted(self._covered),
                "bypassed": sorted(self._bypassed),
                "workers": workers,
                "write_log": self.log.sizes(),
            }

    def _shutdown_handle(self, handle: WorkerHandle) -> None:
        if handle.alive:
            try:
                handle.client.call({"op": "shutdown"}, timeout_s=2.0)
            except (WorkerUnavailable, WorkerError):
                pass
        handle.client.close()
        handle.process.join(timeout=2.0)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=2.0)

    def stop(self) -> None:
        """Shut every worker down and stop the monitor (idempotent)."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            handles = list(self._workers.values())
            self._workers.clear()
            self._covered.clear()
        for handle in handles:
            self._shutdown_handle(handle)
