"""The HTTP application: routes, handlers, and the SSE streaming path.

:class:`EngineApp` maps six routes onto the engine's long-lived async
executor:

* ``POST /query`` — one constraint query, answered as JSON when the
  scheduler finishes it (budget-degraded answers come back with their
  sample rate and count interval, same as the embedded API);
* ``GET /query/stream`` — Server-Sent Events: an ``estimate`` event
  (zero-I/O degraded answer with a count interval — conformal once the
  dataset's calibration is warm, normal-approximation fallback before,
  labelled by ``interval_source``) flushes immediately, then the exact
  ``result`` follows when the scheduler serves the query — the
  degraded-then-refined contract over the wire;
* ``POST /insert`` / ``POST /delete`` — routed write-fanout mutations;
* ``GET /stats`` — :meth:`EngineStats.summary` as JSON;
* ``GET /metrics`` — the Prometheus text exposition of the engine's
  metric registry;
* ``GET /trace/<id>`` — one finished request trace (span tree) by id;
* ``GET /debug/slow`` — the latest slow/degraded request traces;
* ``GET /healthz`` — unauthenticated liveness probe.

Every handler runs *on the event loop* and awaits the executor; the
engine's blocking work happens in the executor's worker threads, so one
slow query never stalls other connections.  Each request is recorded in
:meth:`EngineStats.note_http` under its route (label ``*`` for requests
that never matched a route), which is what ``GET /stats`` reports back.

Each request also opens a request trace (when the engine's tracing is
on): the serving executor's spans — admission decisions, planner,
per-shard fan-out, block I/O — nest under it, the response carries the
id in an ``X-Trace-Id`` header and a ``trace_id`` body field (every SSE
event too), and ``GET /trace/<id>`` fetches the finished tree.
"""

from __future__ import annotations

import time
from typing import Awaitable, Callable, Dict, Optional, Tuple

import repro.engine.tracing as tracing
from repro.engine.obs.prometheus import (CONTENT_TYPE as _PROMETHEUS_TYPE,
                                         render_prometheus)
from repro.engine.serving.executor import AsyncExecutor, ServedRequest
from repro.engine.serving.queue import ServingRequest
from repro.engine.server.auth import ApiKeyAuthenticator
from repro.engine.server.protocol import (HTTPError, HTTPRequest, json_body,
                                          parse_mutation_request,
                                          parse_query_request,
                                          parse_stream_query,
                                          render_response, sse_event,
                                          sse_preamble)

#: HTTP status for each scheduler outcome.
_OUTCOME_STATUS = {"served": 200, "degraded": 200, "rejected": 429,
                   "expired": 504, "failed": 500}

#: (status, payload, keep_alive) triple a route handler returns; payload
#: None means the handler already wrote the response (the SSE path).
_Handled = Tuple[int, Optional[dict], bool]


class EngineApp:
    """Routes HTTP requests into one engine's serving executor."""

    def __init__(self, engine, auth: ApiKeyAuthenticator,
                 executor: AsyncExecutor,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._engine = engine
        self._auth = auth
        self._executor = executor
        self._clock = clock
        self._routes: Dict[Tuple[str, str],
                           Callable[..., Awaitable[_Handled]]] = {
            ("POST", "/query"): self._handle_query,
            ("GET", "/query/stream"): self._handle_stream,
            ("POST", "/insert"): self._handle_insert,
            ("POST", "/delete"): self._handle_delete,
            ("GET", "/stats"): self._handle_stats,
            ("GET", "/metrics"): self._handle_metrics,
            ("GET", "/debug/slow"): self._handle_slow,
            ("GET", "/healthz"): self._handle_healthz,
        }

    def endpoint_label(self, path: Optional[str]) -> str:
        """The metrics label for a request path (``*`` off any route).

        Parameterized routes collapse onto one label (``/trace/<id>``),
        so per-endpoint counters stay bounded no matter how many distinct
        ids clients fetch.
        """
        if path is None:
            return "*"
        if any(known == path for __, known in self._routes):
            return path
        if path.startswith("/trace/") and len(path) > len("/trace/"):
            return "/trace/<id>"
        return "*"

    def _route_for(self, request: HTTPRequest):
        """The handler for a request, or the structured refusal."""
        if request.path.startswith("/trace/") \
                and len(request.path) > len("/trace/"):
            if request.method != "GET":
                raise HTTPError(405, "method_not_allowed",
                                "/trace/<id> does not accept %s"
                                % request.method)
            return self._handle_trace
        handler = self._routes.get((request.method, request.path))
        if handler is None:
            if self.endpoint_label(request.path) != "*":
                raise HTTPError(405, "method_not_allowed",
                                "%s does not accept %s"
                                % (request.path, request.method))
            raise HTTPError(404, "unknown_route",
                            "no route for %s %s"
                            % (request.method, request.path))
        return handler

    async def handle(self, request: HTTPRequest, writer) -> bool:
        """Serve one parsed request; returns whether to keep the connection.

        Structured refusals (:class:`HTTPError`) become JSON error bodies
        on the declared status; anything else is a 500 that also closes
        the connection (handler state is unknown after an unexpected
        exception).  Either way the endpoint's latency and status-class
        counters are recorded, and — with tracing on — the request runs
        under a trace whose id rides back in ``X-Trace-Id`` and the JSON
        body.
        """
        endpoint = self.endpoint_label(request.path)
        started = self._clock()
        status = 500
        keep_alive = False
        trace = self._engine.tracer.start_trace(
            "http.request", endpoint=endpoint, method=request.method)
        trace_headers = (("X-Trace-Id", trace.trace_id),) \
            if trace.trace_id else ()
        try:
            handler = self._route_for(request)
            with tracing.activate(trace.root):
                status, payload, keep_alive = await handler(request, writer)
            if payload is not None:
                if trace.trace_id:
                    payload.setdefault("trace_id", trace.trace_id)
                    outcome = payload.get("outcome")
                    if isinstance(outcome, str):
                        trace.root.set("outcome", outcome)
                writer.write(render_response(status, json_body(payload),
                                             keep_alive=keep_alive,
                                             extra_headers=trace_headers))
                await writer.drain()
        except HTTPError as exc:
            status = exc.status
            keep_alive = request.keep_alive
            extra = list(trace_headers)
            if exc.retry_after_s is not None:
                extra.append(("Retry-After", "%d"
                              % max(1, int(exc.retry_after_s + 0.999))))
            payload = exc.payload()
            if trace.trace_id:
                payload["trace_id"] = trace.trace_id
                trace.root.set("error", exc.code)
            writer.write(render_response(status, json_body(payload),
                                         keep_alive=keep_alive,
                                         extra_headers=extra))
            await writer.drain()
        except Exception as exc:
            status = 500
            keep_alive = False
            error = HTTPError(500, "internal_error",
                              "%s: %s" % (type(exc).__name__, exc))
            payload = error.payload()
            if trace.trace_id:
                payload["trace_id"] = trace.trace_id
                trace.root.set("error", "internal_error")
            writer.write(render_response(500, json_body(payload),
                                         keep_alive=False,
                                         extra_headers=trace_headers))
            await writer.drain()
        finally:
            if trace.trace_id:
                trace.root.set("status", status)
            trace.finish()
            self._engine.stats.note_http(endpoint, status,
                                         self._clock() - started)
        return keep_alive

    # ------------------------------------------------------------------
    # validation against the catalog
    # ------------------------------------------------------------------
    def _validate_query(self, serving: ServingRequest) -> None:
        try:
            entry = self._engine.catalog.entry(serving.dataset)
        except KeyError:
            raise HTTPError(404, "unknown_dataset",
                            "no dataset named %r (registered: %s)"
                            % (serving.dataset,
                               ", ".join(self._engine.catalog.datasets())
                               or "none"))
        wanted = serving.constraint.dimension if serving.op == "query" \
            else len(serving.point)
        if wanted != entry.dimension:
            what = ("constraint dimension (len(coeffs) + 1)"
                    if serving.op == "query" else "point dimension")
            raise HTTPError(400, "dimension_mismatch",
                            "%s is %d but dataset %r is %d-dimensional"
                            % (what, wanted, serving.dataset,
                               entry.dimension))

    def _validate_mutation(self, serving: ServingRequest) -> None:
        self._validate_query(serving)
        # Surface "dataset is not writable" as a structured 400 up front
        # instead of a failed-outcome 500 out of the scheduler.
        catalog = self._engine.catalog
        try:
            if catalog.is_sharded(serving.dataset):
                for shard in catalog.sharded(serving.dataset) \
                                    .nonempty_shards():
                    for replica in shard.replicas:
                        catalog.mutable_index_of(replica)
            else:
                catalog.mutable_index_of(catalog.dataset(serving.dataset))
        except ValueError as exc:
            raise HTTPError(400, "not_writable", str(exc))

    # ------------------------------------------------------------------
    # response payloads
    # ------------------------------------------------------------------
    @staticmethod
    def _served_payload(served: ServedRequest) -> dict:
        payload: Dict[str, object] = {
            "outcome": served.outcome,
            "tenant": served.request.tenant,
            "dataset": served.request.dataset,
            "op": served.request.op,
            "turnaround_s": served.turnaround_s,
            "queue_wait_s": served.queue_wait_s,
            "deferrals": served.deferrals,
        }
        if served.error is not None:
            payload["error"] = served.error
        answer = served.answer
        if answer is not None:
            payload["answer"] = {
                "index": answer.index_name,
                "count": answer.count,
                "points": [list(point) for point in answer.points],
                "ios": answer.total_ios,
                "latency_s": answer.latency_s,
                "from_result_cache": answer.from_result_cache,
                "degraded": answer.degraded,
            }
            if answer.degraded:
                payload["answer"]["sample_rate"] = answer.sample_rate
                payload["answer"]["estimated_count"] = answer.estimated_count
                interval = answer.count_interval
                payload["answer"]["count_interval"] = \
                    list(interval) if interval is not None else None
                payload["answer"]["interval_source"] = answer.interval_source
        if served.mutation is not None:
            mutation = served.mutation
            payload["mutation"] = {
                "applied": mutation.applied,
                "shard_id": mutation.shard_id,
                "replicas": mutation.replicas,
                "ios": mutation.ios,
                "latency_s": mutation.latency_s,
                "generation": mutation.generation,
            }
        return payload

    @staticmethod
    def _estimate_payload(estimate) -> dict:
        interval = estimate.count_interval
        return {
            "count_estimate": estimate.estimated_count,
            "count_interval": list(interval) if interval is not None
            else None,
            "interval_source": estimate.interval_source,
            "sample_rate": estimate.sample_rate,
            "sample_count": estimate.count,
        }

    # ------------------------------------------------------------------
    # route handlers
    # ------------------------------------------------------------------
    async def _handle_query(self, request: HTTPRequest, writer) -> _Handled:
        key = self._auth.authenticate(request)
        self._auth.check_rate(key)
        serving = parse_query_request(request.json(), key.tenant)
        self._validate_query(serving)
        served = await self._executor.submit(serving)
        return (_OUTCOME_STATUS.get(served.outcome, 500),
                self._served_payload(served), request.keep_alive)

    async def _handle_mutation(self, request: HTTPRequest,
                               op: str) -> _Handled:
        key = self._auth.authenticate(request)
        self._auth.check_rate(key)
        serving = parse_mutation_request(request.json(), key.tenant, op)
        self._validate_mutation(serving)
        served = await self._executor.submit(serving)
        return (_OUTCOME_STATUS.get(served.outcome, 500),
                self._served_payload(served), request.keep_alive)

    async def _handle_insert(self, request: HTTPRequest, writer) -> _Handled:
        return await self._handle_mutation(request, "insert")

    async def _handle_delete(self, request: HTTPRequest, writer) -> _Handled:
        return await self._handle_mutation(request, "delete")

    async def _handle_stream(self, request: HTTPRequest, writer) -> _Handled:
        key = self._auth.authenticate(request)
        self._auth.check_rate(key)
        serving = parse_stream_query(request.query, key.tenant)
        self._validate_query(serving)
        # Everything that can 4xx happened above — from here the response
        # is a committed 200 event stream, so failures become events.
        trace_id = tracing.current_trace_id()

        def stamped(payload: dict) -> dict:
            if trace_id:
                payload.setdefault("trace_id", trace_id)
            return payload

        writer.write(sse_preamble())
        await writer.drain()
        estimate = self._executor.estimate(serving)
        writer.write(sse_event("estimate",
                               stamped(self._estimate_payload(estimate))))
        await writer.drain()
        served = await self._executor.submit(serving)
        if served.outcome in ("served", "degraded"):
            writer.write(sse_event("result",
                                   stamped(self._served_payload(served))))
        elif served.outcome == "expired":
            writer.write(sse_event("expired",
                                   stamped(self._served_payload(served))))
        else:
            writer.write(sse_event("error",
                                   stamped(self._served_payload(served))))
        await writer.drain()
        # SSE responses are close-framed; the handler wrote everything.
        return 200, None, False

    async def _handle_stats(self, request: HTTPRequest, writer) -> _Handled:
        self._auth.authenticate(request)  # authenticated, but never rated
        return 200, self._engine.summary(), request.keep_alive

    async def _handle_metrics(self, request: HTTPRequest, writer) -> _Handled:
        """The metric registry in Prometheus text exposition format."""
        self._auth.authenticate(request)  # authenticated, never rated
        # Model/conformal gauges are pull-refreshed snapshots, not
        # hot-path counters: bring them current before rendering.
        self._engine.stats.refresh_model_metrics()
        body = render_prometheus(self._engine.stats.registry) \
            .encode("utf-8")
        writer.write(render_response(200, body,
                                     content_type=_PROMETHEUS_TYPE,
                                     keep_alive=request.keep_alive))
        await writer.drain()
        return 200, None, request.keep_alive

    async def _handle_trace(self, request: HTTPRequest, writer) -> _Handled:
        """One finished trace by id (the span tree, JSON)."""
        self._auth.authenticate(request)
        trace_id = request.path[len("/trace/"):]
        payload = self._engine.tracer.get(trace_id)
        if payload is None:
            raise HTTPError(404, "trace_not_found",
                            "no finished trace %r (traces are evicted "
                            "oldest-first; is tracing enabled?)"
                            % trace_id[:64])
        return 200, dict(payload), request.keep_alive

    async def _handle_slow(self, request: HTTPRequest, writer) -> _Handled:
        """The newest slow/degraded request traces (``?n=`` to bound)."""
        self._auth.authenticate(request)
        raw = request.query.get("n", "20")
        try:
            n = max(1, min(int(raw), 100))
        except ValueError:
            raise HTTPError(400, "bad_count",
                            "'n' must be an integer, got %r" % raw[:20])
        return (200,
                {"threshold_s": self._engine.tracer.slow_threshold_s,
                 "slow": self._engine.tracer.slow(n)},
                request.keep_alive)

    async def _handle_healthz(self, request: HTTPRequest,
                              writer) -> _Handled:
        return (200,
                {"status": "ok",
                 "datasets": self._engine.catalog.datasets()},
                request.keep_alive)
