"""The wire layer of the network front-end: HTTP/1.1 parsing and the
JSON request schema.

Everything here is dependency-free stdlib: requests are parsed off an
:mod:`asyncio` stream reader (request line, headers, ``Content-Length``
body), responses are rendered as bytes, and Server-Sent Events are
framed for the streaming endpoint.  Validation failures raise
:class:`HTTPError` — a structured status + machine-readable code +
human message — which the app layer turns into a JSON error body, so a
client never has to parse prose to find out *what* was wrong.

The JSON schema maps straight onto
:class:`~repro.engine.serving.ServingRequest`:

* queries: ``{"dataset": str, "constraint": {"coeffs": [a_1..a_{d-1}],
  "offset": a_0}, "priority": int?, "deadline_s": number?}`` — the
  constraint is the paper's ``x_d <= offset + sum coeffs[i] * x_i``
  form, so ``len(coeffs) + 1`` must equal the dataset's dimension;
* mutations: ``{"dataset": str, "point": [x_1..x_d], "priority": int?,
  "deadline_s": number?}``;
* the SSE endpoint is a GET, so its query rides the URL:
  ``?dataset=...&coeffs=0.2,-0.1&offset=0.5&priority=0&deadline_s=2``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.engine.serving.queue import ServingRequest
from repro.geometry.primitives import LinearConstraint

#: Upper bound on accepted JSON bodies (a constraint or a point is tiny;
#: anything near this is a client bug or abuse).
MAX_BODY_BYTES = 1 << 20
#: Upper bound on the request line + headers.
MAX_HEADER_BYTES = 32 * 1024
#: Stream-reader buffer limit a server hosting this protocol should use.
STREAM_LIMIT = MAX_HEADER_BYTES + MAX_BODY_BYTES

_REASONS = {
    200: "OK", 400: "Bad Request", 401: "Unauthorized", 404: "Not Found",
    405: "Method Not Allowed", 411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 501: "Not Implemented",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: Methods whose requests carry a body on this API (everything else may
#: legitimately omit Content-Length).
_BODY_METHODS = ("POST", "PUT", "PATCH")


class HTTPError(Exception):
    """A request the server refuses, as status + code + message.

    ``code`` is the stable machine-readable discriminator clients switch
    on; ``message`` is for humans.  ``retry_after_s`` (rate limiting)
    becomes a ``Retry-After`` header.  ``method``/``path`` are filled in
    by the parser once the request line is known, so even a refused
    request can be attributed to its endpoint in the metrics.
    """

    def __init__(self, status: int, code: str, message: str,
                 retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s
        self.method: Optional[str] = None
        self.path: Optional[str] = None

    def payload(self) -> Dict[str, object]:
        """The JSON error body every non-2xx response carries."""
        return {"error": {"code": self.code, "message": self.message}}


@dataclass
class HTTPRequest:
    """One parsed HTTP request (headers lowercased, query string split)."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 default unless the client asked to close."""
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Dict[str, object]:
        """The body as a JSON object (structured 400s otherwise)."""
        if not self.body:
            raise HTTPError(400, "empty_body",
                            "request body must be a JSON object")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise HTTPError(400, "bad_json",
                            "request body is not valid JSON")
        if not isinstance(payload, dict):
            raise HTTPError(400, "bad_json",
                            "request body must be a JSON object, got %s"
                            % type(payload).__name__)
        return payload


async def read_request(reader: asyncio.StreamReader) -> Optional[HTTPRequest]:
    """Parse one request off the stream.

    Returns None when the peer closed the connection cleanly between
    requests (the keep-alive idle case); raises :class:`HTTPError` on
    malformed input — the connection handler answers it and closes.
    """
    try:
        raw = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial.strip():
            return None
        raise HTTPError(400, "truncated_request",
                        "connection closed mid-headers")
    except asyncio.LimitOverrunError:
        raise HTTPError(431, "headers_too_large",
                        "request headers exceed %d bytes" % MAX_HEADER_BYTES)
    if len(raw) > MAX_HEADER_BYTES:
        raise HTTPError(431, "headers_too_large",
                        "request headers exceed %d bytes" % MAX_HEADER_BYTES)
    head = raw.decode("latin-1")
    lines = head.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HTTPError(400, "bad_request_line",
                        "malformed HTTP request line: %r" % lines[0][:80])
    method, target = parts[0].upper(), parts[1]
    try:
        split = urlsplit(target)
    except ValueError:
        raise HTTPError(400, "bad_target",
                        "malformed request target: %r" % target[:80])
    path = unquote(split.path) or "/"
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    # From here the endpoint is known: annotate any refusal with it so
    # the connection handler can attribute the error to a real route.
    try:
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            if ":" not in line:
                raise HTTPError(400, "bad_header",
                                "malformed header line: %r" % line[:80])
            key, __, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        body = await _read_body(reader, method, headers)
    except HTTPError as exc:
        exc.method = exc.method or method
        exc.path = exc.path or path
        raise
    return HTTPRequest(method=method, path=path, query=query,
                       headers=headers, body=body)


async def _read_body(reader: asyncio.StreamReader, method: str,
                     headers: Dict[str, str]) -> bytes:
    """The request body: Content-Length framed, chunked, or absent.

    Chunked transfer encoding is decoded transparently (same
    :data:`MAX_BODY_BYTES` cap as plain bodies).  A body-carrying method
    with neither framing header gets the proper ``411 Length Required``,
    and a request claiming *both* framings is refused — that ambiguity
    is the classic request-smuggling vector.
    """
    length_header = headers.get("content-length")
    encoding = headers.get("transfer-encoding")
    if encoding is not None:
        codings = [part.strip().lower() for part in encoding.split(",")
                   if part.strip()]
        if codings != ["chunked"]:
            raise HTTPError(501, "unsupported_transfer_encoding",
                            "the only supported Transfer-Encoding is "
                            "'chunked', got %r" % encoding[:40])
        if length_header is not None:
            raise HTTPError(400, "ambiguous_length",
                            "a request must not carry both Content-Length "
                            "and Transfer-Encoding: chunked")
        return await _read_chunked(reader)
    if length_header is None:
        if method in _BODY_METHODS:
            raise HTTPError(411, "length_required",
                            "%s requests must carry Content-Length (or a "
                            "chunked body)" % method)
        return b""
    try:
        length = int(length_header)
    except ValueError:
        raise HTTPError(400, "bad_content_length",
                        "Content-Length is not an integer: %r"
                        % length_header[:40])
    if length < 0:
        raise HTTPError(400, "bad_content_length",
                        "Content-Length must be >= 0")
    if length > MAX_BODY_BYTES:
        raise HTTPError(413, "body_too_large",
                        "request body exceeds %d bytes" % MAX_BODY_BYTES)
    if not length:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise HTTPError(400, "truncated_body",
                        "connection closed before Content-Length "
                        "bytes arrived")


async def _read_chunked(reader: asyncio.StreamReader) -> bytes:
    """Decode one chunked-transfer-encoded body off the stream.

    Chunk extensions are ignored; trailers are consumed and discarded.
    The decoded body obeys the same :data:`MAX_BODY_BYTES` cap as a
    Content-Length one (checked incrementally, so an attacker cannot
    buffer past it by declaring many small chunks).
    """
    chunks: List[bytes] = []
    total = 0
    try:
        while True:
            size_line = await reader.readuntil(b"\r\n")
            size_text = size_line[:-2].split(b";", 1)[0].strip()
            try:
                size = int(size_text, 16)
            except ValueError:
                raise HTTPError(400, "bad_chunk_size",
                                "malformed chunk size: %r"
                                % size_text[:40].decode("latin-1"))
            if size < 0:
                raise HTTPError(400, "bad_chunk_size",
                                "chunk size must be >= 0")
            if size == 0:
                # Trailer section: header lines until the blank terminator.
                while True:
                    trailer = await reader.readuntil(b"\r\n")
                    if trailer == b"\r\n":
                        return b"".join(chunks)
            total += size
            if total > MAX_BODY_BYTES:
                raise HTTPError(413, "body_too_large",
                                "request body exceeds %d bytes"
                                % MAX_BODY_BYTES)
            data = await reader.readexactly(size + 2)
            if data[-2:] != b"\r\n":
                raise HTTPError(400, "bad_chunk",
                                "chunk data not terminated by CRLF")
            chunks.append(data[:-2])
    except asyncio.IncompleteReadError:
        raise HTTPError(400, "truncated_chunk",
                        "connection closed mid-chunked-body")
    except asyncio.LimitOverrunError:
        raise HTTPError(400, "bad_chunk_size", "chunk size line too long")


def render_response(status: int, body: bytes,
                    content_type: str = "application/json",
                    keep_alive: bool = True,
                    extra_headers: Iterable[Tuple[str, str]] = ()) -> bytes:
    """One complete Content-Length-framed HTTP/1.1 response."""
    head = [
        "HTTP/1.1 %d %s" % (status, _REASONS.get(status, "Unknown")),
        "Content-Type: %s" % content_type,
        "Content-Length: %d" % len(body),
        "Connection: %s" % ("keep-alive" if keep_alive else "close"),
    ]
    head.extend("%s: %s" % pair for pair in extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def json_body(payload: object) -> bytes:
    """A JSON response body (strict JSON: NaN/Infinity refused)."""
    return json.dumps(payload, allow_nan=False).encode("utf-8")


def sse_preamble() -> bytes:
    """Response head of a Server-Sent-Events stream.

    No Content-Length: the stream is framed by connection close, which
    every HTTP/1.1 client understands (and is why SSE responses always
    answer ``Connection: close``).
    """
    return (b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n")


def sse_event(event: str, payload: object) -> bytes:
    """One named SSE event with a JSON data line."""
    return ("event: %s\ndata: %s\n\n"
            % (event, json.dumps(payload, allow_nan=False))).encode("utf-8")


# ----------------------------------------------------------------------
# wire schema -> ServingRequest
# ----------------------------------------------------------------------
def _require_number(value: object, code: str, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise HTTPError(400, code, "%s must be a number, got %r"
                        % (what, value))
    return float(value)


def _common_fields(payload: Dict[str, object]
                   ) -> Tuple[str, int, Optional[float]]:
    dataset = payload.get("dataset")
    if not isinstance(dataset, str) or not dataset:
        raise HTTPError(400, "missing_dataset",
                        "'dataset' must be a non-empty string")
    priority = payload.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise HTTPError(400, "bad_priority",
                        "'priority' must be an integer (lower runs first)")
    deadline_s = payload.get("deadline_s")
    if deadline_s is not None:
        deadline_s = _require_number(deadline_s, "bad_deadline",
                                     "'deadline_s'")
    return dataset, priority, deadline_s


def constraint_from_payload(payload: Dict[str, object]) -> LinearConstraint:
    """The ``constraint`` object of a query body, validated."""
    spec = payload.get("constraint")
    if not isinstance(spec, dict):
        raise HTTPError(400, "missing_constraint",
                        "'constraint' must be an object with 'coeffs' "
                        "and 'offset'")
    coeffs = spec.get("coeffs")
    if not isinstance(coeffs, (list, tuple)) or not coeffs:
        raise HTTPError(400, "bad_constraint",
                        "'constraint.coeffs' must be a non-empty list of "
                        "numbers (a_1..a_{d-1} of x_d <= a_0 + sum a_i x_i)")
    coeffs = tuple(_require_number(c, "bad_constraint",
                                   "'constraint.coeffs' entries")
                   for c in coeffs)
    offset = _require_number(spec.get("offset"), "bad_constraint",
                             "'constraint.offset'")
    return LinearConstraint(coeffs=coeffs, offset=offset)


def parse_query_request(payload: Dict[str, object],
                        tenant: str) -> ServingRequest:
    """A ``POST /query`` body as a serving request for ``tenant``."""
    dataset, priority, deadline_s = _common_fields(payload)
    constraint = constraint_from_payload(payload)
    return ServingRequest(tenant=tenant, dataset=dataset,
                          constraint=constraint, priority=priority,
                          deadline_s=deadline_s)


def parse_mutation_request(payload: Dict[str, object], tenant: str,
                           op: str) -> ServingRequest:
    """A ``POST /insert`` / ``POST /delete`` body as a serving request."""
    dataset, priority, deadline_s = _common_fields(payload)
    point = payload.get("point")
    if not isinstance(point, (list, tuple)) or len(point) < 2:
        raise HTTPError(400, "bad_point",
                        "'point' must be a list of >= 2 numbers")
    record = tuple(_require_number(c, "bad_point", "'point' entries")
                   for c in point)
    return ServingRequest(tenant=tenant, dataset=dataset, op=op,
                          point=record, priority=priority,
                          deadline_s=deadline_s)


def parse_stream_query(params: Dict[str, str],
                       tenant: str) -> ServingRequest:
    """A ``GET /query/stream`` query string as a serving request.

    Same schema as the POST body, flattened into URL parameters:
    ``coeffs`` comma-separated, ``offset``/``priority``/``deadline_s``
    scalar.
    """
    payload: Dict[str, object] = {"dataset": params.get("dataset")}
    raw_coeffs = params.get("coeffs", "")
    try:
        coeffs = [float(part) for part in raw_coeffs.split(",")
                  if part.strip()]
    except ValueError:
        raise HTTPError(400, "bad_constraint",
                        "'coeffs' must be comma-separated numbers, got %r"
                        % raw_coeffs[:80])
    spec: Dict[str, object] = {"coeffs": coeffs}
    if "offset" in params:
        try:
            spec["offset"] = float(params["offset"])
        except ValueError:
            raise HTTPError(400, "bad_constraint",
                            "'offset' must be a number, got %r"
                            % params["offset"][:40])
    payload["constraint"] = spec
    if "priority" in params:
        try:
            payload["priority"] = int(params["priority"])
        except ValueError:
            raise HTTPError(400, "bad_priority",
                            "'priority' must be an integer, got %r"
                            % params["priority"][:40])
    if "deadline_s" in params:
        try:
            payload["deadline_s"] = float(params["deadline_s"])
        except ValueError:
            raise HTTPError(400, "bad_deadline",
                            "'deadline_s' must be a number, got %r"
                            % params["deadline_s"][:40])
    return parse_query_request(payload, tenant)
