"""The serving core: one event loop, one executor, graceful shutdown.

:class:`EngineServer` owns the whole network stack: it builds the
authenticator (and thereby the shared admission controller), obtains the
engine's long-lived :class:`~repro.engine.serving.AsyncExecutor` bound to
that controller, and runs ``asyncio.start_server`` on a **persistent
event loop in a daemon thread** — so synchronous callers (tests, the
bench harness, a notebook) can start a server, talk to it over real
sockets, and stop it, all without owning a loop themselves.

Shutdown is graceful by construction: ``stop()`` flips a loop-side event
that (1) stops accepting new connections, (2) lets every open connection
finish the request it is currently serving (the per-connection handler
races "read next request" against the stop event, so idle keep-alive
connections close immediately), and (3) drains the executor — requests
already admitted or queued still run to completion and their responses
are written before the loop exits.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Iterable, Optional, Set, Tuple

from repro.engine.server.auth import ApiKey, ApiKeyAuthenticator
from repro.engine.server.protocol import (STREAM_LIMIT, HTTPError,
                                          json_body, read_request,
                                          render_response)


class EngineServer:
    """An asyncio HTTP front-end for one :class:`QueryEngine`.

    Parameters
    ----------
    engine:
        The engine to serve.  The server uses the engine's persistent
        serving executor (``engine.serving_executor``), so embedded
        ``serve_async`` calls and HTTP traffic share one scheduler and
        one set of tenant budgets.
    keys:
        The :class:`ApiKey` credentials to accept.
    host / port:
        Bind address; port 0 picks a free port (read it back from
        :attr:`address` after :meth:`start`).
    max_concurrency:
        Worker-thread cap of the serving executor.
    warm_cache:
        Pre-touch every dataset's stores when the server starts, so the
        first requests are not all cold misses.
    idle_timeout:
        Seconds a keep-alive connection gets to deliver its next
        complete request before the server closes it.  None (the
        default) keeps the old behaviour: idle connections live until
        client close or shutdown.  A request already being processed is
        never interrupted — the deadline only covers the wait for the
        next request (which also bounds slow-written requests).
    """

    def __init__(self, engine, keys: Iterable[ApiKey],
                 host: str = "127.0.0.1", port: int = 0,
                 max_concurrency: int = 8,
                 warm_cache: bool = True,
                 idle_timeout: Optional[float] = None) -> None:
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive or None, got %r"
                             % (idle_timeout,))
        self._idle_timeout = idle_timeout
        self._engine = engine
        self.auth = ApiKeyAuthenticator(keys)
        self.executor = engine.serving_executor(
            admission=self.auth.admission,
            max_concurrency=max_concurrency)
        from repro.engine.server.app import EngineApp
        self.app = EngineApp(engine, self.auth, self.executor)
        self._host = host
        self._port = port
        self._warm_cache = warm_cache
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — available once :meth:`start` returns."""
        if self._address is None:
            raise RuntimeError("the server is not started")
        return self._address

    @property
    def url(self) -> str:
        host, port = self.address
        return "http://%s:%d" % (host, port)

    def start(self) -> "EngineServer":
        """Bind, start serving, and return once the socket is listening."""
        if self.running:
            return self
        self._started.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="engine-http-server", daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise RuntimeError("server failed to start") \
                from self._startup_error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain in-flight requests, then return."""
        if not self.running:
            return
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            loop.call_soon_threadsafe(stop_event.set)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server did not shut down within %.1fs"
                               % timeout)
        self._thread = None

    def __enter__(self) -> "EngineServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # loop side
    # ------------------------------------------------------------------
    async def _main(self) -> None:
        try:
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            await self.executor.start()
            server = await asyncio.start_server(
                self._handle_connection, self._host, self._port,
                limit=STREAM_LIMIT)
            self._address = server.sockets[0].getsockname()[:2]
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        core = self.executor.core
        warm = None
        if self._warm_cache:
            warm = core.warm_stores(self._engine.catalog.datasets(),
                                    self.executor.warm_cache_blocks)
            warm.__enter__()
        try:
            self._started.set()
            await self._stop_event.wait()
            # 1. refuse new connections;
            server.close()
            await server.wait_closed()
            # 2. let open connections finish their current request;
            if self._conn_tasks:
                await asyncio.gather(*tuple(self._conn_tasks),
                                     return_exceptions=True)
            # 3. drain whatever the scheduler still holds.
            await self.executor.stop(drain=True)
        finally:
            if warm is not None:
                warm.__exit__(None, None, None)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        stop_waiter: Optional[asyncio.Task] = None
        try:
            while not self._stop_event.is_set():
                read_started = time.monotonic()
                read = asyncio.ensure_future(read_request(reader))
                stop_waiter = asyncio.ensure_future(self._stop_event.wait())
                try:
                    await asyncio.wait({read, stop_waiter},
                                       return_when=asyncio.FIRST_COMPLETED,
                                       timeout=self._idle_timeout)
                finally:
                    if not stop_waiter.done():
                        stop_waiter.cancel()
                if not read.done():
                    # Either shutdown arrived while the connection sat
                    # idle between requests, or the idle deadline
                    # expired with no next request on the wire: nothing
                    # is half-served, close the socket cleanly.
                    read.cancel()
                    break
                try:
                    request = read.result()
                except HTTPError as exc:
                    # Malformed wire input: count it, answer it, close.
                    # The parser annotates the error with method/path
                    # once the request line parsed, so a refused body
                    # (413, 411, bad chunk) still lands under its real
                    # endpoint; the elapsed time is measured from the
                    # read start (it includes keep-alive idle wait,
                    # which is the connection's honest wall time).
                    # Stats first: a client must never read the error
                    # response before the refusal is visible in /stats.
                    endpoint = self.app.endpoint_label(
                        getattr(exc, "path", None))
                    self._engine.stats.note_http(
                        endpoint, exc.status,
                        time.monotonic() - read_started)
                    writer.write(render_response(
                        exc.status, json_body(exc.payload()),
                        keep_alive=False))
                    await writer.drain()
                    break
                if request is None:  # peer closed cleanly
                    break
                keep = await self.app.handle(request, writer)
                if not keep:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
