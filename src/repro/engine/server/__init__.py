"""The network front-end: a dependency-free asyncio HTTP server.

Layers, bottom up:

* :mod:`~repro.engine.server.protocol` — HTTP/1.1 parsing, the JSON
  wire schema, SSE framing, structured :class:`HTTPError` refusals;
* :mod:`~repro.engine.server.auth` — API-key -> tenant mapping feeding
  one shared admission controller, plus per-key request-rate limits;
* :mod:`~repro.engine.server.app` — the six routes over the engine's
  long-lived serving executor;
* :mod:`~repro.engine.server.runner` — :class:`EngineServer`, the
  persistent-event-loop serving core with graceful drain;
* :mod:`~repro.engine.server.client` — a stdlib test/bench client.

The usual entry point is :meth:`QueryEngine.serve_http`.
"""

from repro.engine.server.auth import ApiKey, ApiKeyAuthenticator
from repro.engine.server.app import EngineApp
from repro.engine.server.client import ServerClient, SSEEvent
from repro.engine.server.protocol import (HTTPError, HTTPRequest,
                                          MAX_BODY_BYTES, MAX_HEADER_BYTES)
from repro.engine.server.runner import EngineServer

__all__ = [
    "ApiKey",
    "ApiKeyAuthenticator",
    "EngineApp",
    "EngineServer",
    "HTTPError",
    "HTTPRequest",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "SSEEvent",
    "ServerClient",
]
