"""API-key authentication and per-tenant request-rate limiting.

Each :class:`ApiKey` binds a secret to a *tenant* — the logical client
the serving layer's admission control budgets.  The authenticator owns
one long-lived :class:`~repro.engine.serving.AdmissionController` built
from every key's :class:`~repro.engine.serving.TenantBudget`, which the
server hands to the engine's persistent executor (the
``serve_async(admission=...)`` seam): I/O budgets therefore persist
across requests and connections, exactly like the caller-held controller
in the embedded API.

On top of the I/O budget each key may carry a **request-rate** limit —
a second token bucket denominated in requests per second, not block
transfers.  The two guard different resources: the rate limit bounds how
often a client may knock (cheap requests included, enforced *before*
parsing the body), while the I/O budget bounds how much data its
admitted queries may move.  A key without one is unlimited on that axis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

from repro.engine.serving.admission import (AdmissionController, TenantBudget,
                                            TokenBucket)
from repro.engine.server.protocol import HTTPError, HTTPRequest


@dataclass(frozen=True)
class ApiKey:
    """One credential: secret, tenant, and the tenant's limits.

    Parameters
    ----------
    key:
        The secret the client presents (``Authorization: Bearer <key>``,
        ``X-Api-Key`` header, or ``api_key`` query parameter).
    tenant:
        Tenant the key maps to; admission control and per-tenant metrics
        key off this.  Several keys may share a tenant (and then share
        its I/O bucket), but they must agree on the budget.
    budget:
        I/O admission budget for the tenant (None = unlimited I/O).
    requests_per_s:
        Request-rate limit for this key (None = unlimited rate).
    request_burst:
        Rate-bucket capacity; defaults to 2 seconds of rate, floored at
        one request so a tiny rate still admits a first request.
    """

    key: str
    tenant: str
    budget: Optional[TenantBudget] = None
    requests_per_s: Optional[float] = None
    request_burst: Optional[float] = None

    def make_rate_bucket(self) -> Optional[TokenBucket]:
        if self.requests_per_s is None:
            return None
        burst = self.request_burst
        if burst is None:
            burst = max(1.0, 2.0 * self.requests_per_s)
        return TokenBucket(rate=self.requests_per_s, burst=burst)


class ApiKeyAuthenticator:
    """Key lookup + the admission controller all keys share.

    Built once at server start; ``admission`` is handed to the engine's
    long-lived executor so every HTTP request draws from the same
    per-tenant buckets.
    """

    def __init__(self, keys: Iterable[ApiKey],
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._keys: Dict[str, ApiKey] = {}
        self._rate_buckets: Dict[str, TokenBucket] = {}
        budgets: Dict[str, TenantBudget] = {}
        for entry in keys:
            if entry.key in self._keys:
                raise ValueError("duplicate API key %r" % entry.key)
            if entry.budget is not None:
                known = budgets.get(entry.tenant)
                if known is not None and known != entry.budget:
                    raise ValueError(
                        "tenant %r is bound to two different budgets; keys "
                        "sharing a tenant share its I/O bucket and must "
                        "agree" % entry.tenant)
                budgets[entry.tenant] = entry.budget
            self._keys[entry.key] = entry
            bucket = entry.make_rate_bucket()
            if bucket is not None:
                self._rate_buckets[entry.key] = bucket
        self.admission = AdmissionController(budgets)

    def authenticate(self, request: HTTPRequest) -> ApiKey:
        """The key a request presents, or a structured 401."""
        secret: Optional[str] = None
        header = request.headers.get("authorization", "")
        if header.lower().startswith("bearer "):
            secret = header[len("bearer "):].strip()
        if not secret:
            secret = request.headers.get("x-api-key") or None
        if not secret:
            secret = request.query.get("api_key") or None
        if not secret:
            raise HTTPError(401, "missing_api_key",
                            "present an API key via 'Authorization: Bearer "
                            "<key>', an 'X-Api-Key' header, or an 'api_key' "
                            "query parameter")
        entry = self._keys.get(secret)
        if entry is None:
            raise HTTPError(401, "unknown_api_key", "unrecognized API key")
        return entry

    def check_rate(self, key: ApiKey) -> None:
        """Charge one request against the key's rate bucket (429 if dry)."""
        bucket = self._rate_buckets.get(key.key)
        if bucket is None:
            return
        now = self._clock()
        if not bucket.try_consume(1.0, now):
            retry = bucket.seconds_until(1.0, now)
            raise HTTPError(429, "rate_limited",
                            "request rate limit exceeded for this key; "
                            "retry in %.2fs" % retry,
                            retry_after_s=retry)
