"""A small synchronous HTTP client for the engine server.

Built on stdlib :mod:`http.client` — it exists so the integration tests
and the benchmark harness exercise the server over a *real* socket with
an independent HTTP implementation, rather than trusting the server to
parse its own dialect.  One connection per call keeps the client
trivially thread-safe (the concurrency tests drive one client per
thread).

:meth:`ServerClient.query_stream` consumes the Server-Sent-Events
endpoint and returns the parsed events *with arrival timestamps*, which
is how the bench measures time-to-first-estimate vs time-to-final.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlencode


@dataclass(frozen=True)
class SSEEvent:
    """One parsed Server-Sent Event."""

    name: str
    data: Dict[str, object]
    #: ``time.perf_counter()`` at the moment the event was fully read.
    at: float


class ServerClient:
    """Talks to one :class:`EngineServer` address."""

    def __init__(self, host: str, port: int, api_key: Optional[str] = None,
                 timeout: float = 30.0) -> None:
        self._host = host
        self._port = port
        self._api_key = api_key
        self._timeout = timeout

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _headers(self) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if self._api_key is not None:
            headers["Authorization"] = "Bearer %s" % self._api_key
        return headers

    def request(self, method: str, path: str,
                payload: Optional[dict] = None
                ) -> Tuple[int, Dict[str, object]]:
        """One request; returns (status, parsed JSON body)."""
        conn = http.client.HTTPConnection(self._host, self._port,
                                          timeout=self._timeout)
        try:
            body = None
            headers = self._headers()
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
            return response.status, parsed
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # the API surface
    # ------------------------------------------------------------------
    def query(self, dataset: str, coeffs: Sequence[float], offset: float,
              priority: int = 0, deadline_s: Optional[float] = None
              ) -> Tuple[int, Dict[str, object]]:
        payload: Dict[str, object] = {
            "dataset": dataset,
            "constraint": {"coeffs": list(coeffs), "offset": offset},
            "priority": priority,
        }
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        return self.request("POST", "/query", payload)

    def _mutate(self, path: str, dataset: str, point: Sequence[float],
                priority: int = 0, deadline_s: Optional[float] = None
                ) -> Tuple[int, Dict[str, object]]:
        payload: Dict[str, object] = {"dataset": dataset,
                                      "point": list(point),
                                      "priority": priority}
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        return self.request("POST", path, payload)

    def insert(self, dataset: str, point: Sequence[float],
               **kwargs) -> Tuple[int, Dict[str, object]]:
        return self._mutate("/insert", dataset, point, **kwargs)

    def delete(self, dataset: str, point: Sequence[float],
               **kwargs) -> Tuple[int, Dict[str, object]]:
        return self._mutate("/delete", dataset, point, **kwargs)

    def stats(self) -> Tuple[int, Dict[str, object]]:
        return self.request("GET", "/stats")

    def healthz(self) -> Tuple[int, Dict[str, object]]:
        return self.request("GET", "/healthz")

    def query_stream(self, dataset: str, coeffs: Sequence[float],
                     offset: float, priority: int = 0,
                     deadline_s: Optional[float] = None
                     ) -> Tuple[int, List[SSEEvent]]:
        """Consume ``GET /query/stream``; returns (status, events).

        A non-200 status comes with a single synthetic ``error`` event
        holding the JSON error body, so callers have one shape to check.
        """
        params: Dict[str, object] = {
            "dataset": dataset,
            "coeffs": ",".join(repr(float(c)) for c in coeffs),
            "offset": repr(float(offset)),
            "priority": priority,
        }
        if deadline_s is not None:
            params["deadline_s"] = repr(float(deadline_s))
        path = "/query/stream?" + urlencode(params)
        conn = http.client.HTTPConnection(self._host, self._port,
                                          timeout=self._timeout)
        try:
            conn.request("GET", path, headers=self._headers())
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                data = json.loads(raw.decode("utf-8")) if raw else {}
                return response.status, [SSEEvent("error", data,
                                                  time.perf_counter())]
            # The stream is close-framed: read line-wise until EOF,
            # emitting an event at each blank-line boundary.
            events: List[SSEEvent] = []
            name: Optional[str] = None
            data_lines: List[str] = []
            while True:
                line = response.fp.readline()
                if not line:
                    break
                text = line.decode("utf-8").rstrip("\n")
                if text.startswith("event:"):
                    name = text[len("event:"):].strip()
                elif text.startswith("data:"):
                    data_lines.append(text[len("data:"):].strip())
                elif not text and (name or data_lines):
                    events.append(SSEEvent(
                        name or "message",
                        json.loads("\n".join(data_lines) or "{}"),
                        time.perf_counter()))
                    name, data_lines = None, []
            return 200, events
        finally:
            conn.close()
