"""Serving metrics for the query engine.

:class:`EngineStats` accumulates one record per served query — which index
the planner chose, the measured I/Os, the wall-clock latency, and whether
the answer came from the result cache — and summarises them the way a
serving dashboard would: latency percentiles, I/O totals, cache hit rates
and the plan distribution.  The benchmarks read these summaries instead of
re-deriving them from raw query results.

The async serving path adds three more signal families:

* **admission decisions** — how many requests each admission-control
  outcome saw (admitted / queued / rejected / degraded / expired);
* **queue depth** — sampled whenever the async scheduler wakes, so the
  summary can report how deep the prioritized request queue ran;
* **per-replica load** — I/Os attributed to each (dataset, shard, replica)
  triple, which is how the replica picker's balancing shows up on a
  dashboard.

The write path adds one more:

* **per-dataset write counters** — inserts, deletes, no-op deletes,
  replica applications and write I/Os per dataset, with write latency
  percentiles, fed by the engine's
  :class:`~repro.engine.writes.WritePath` on every routed mutation.

The network front-end adds one more:

* **per-endpoint HTTP traffic** — request counts, status-code counters
  and latency percentiles per route, fed by the server's app layer on
  every handled request (malformed requests land under the ``"*"``
  endpoint).

The statistics subsystem adds two more:

* **estimation q-error** — per dataset, the ``max(est/act, act/est)``
  ratio of each executed plan's expected output against what it actually
  reported, summarised as percentiles so operators can see when a
  selectivity model is misestimating;
* **rebalance events** — every shard re-split the
  :class:`~repro.engine.sharding.RebalanceManager` performed, with
  before/after shard sizes and the skew that triggered it;
* **conformal calibration** — every (expected, actual) pair also feeds a
  per-dataset :class:`~repro.engine.stats.conformal.ConformalCalibrator`
  (the distribution-free intervals degraded answers serve), whose window
  sizes and prequential coverage counters ride in ``summary()`` and as
  gauges;
* **model state** — live ensemble weights, per-member q-error, histogram
  adaptation counts and per-direction q-error, pulled from the engine's
  registered model provider into ``summary()["stats"]`` and gauges.

The recorder is thread-safe: the batch executor's concurrent path records
from worker threads.
"""

from __future__ import annotations

import math
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.obs.registry import MetricsRegistry
from repro.engine.stats.conformal import ConformalCalibrator
from repro.experiments.harness import format_table


def jsonable(value: object) -> object:
    """Normalize a summary value into strict-JSON-serializable shape.

    ``/stats`` serves :meth:`EngineStats.summary` over the wire, so the
    whole tree must survive ``json.dumps(..., allow_nan=False)`` and
    round-trip through ``json.loads`` unchanged: tuples become lists,
    numpy scalars/arrays become Python numbers/lists, non-finite floats
    (which are invalid JSON) become None, and non-string dict keys are
    stringified.  Unknown objects fall back to ``repr`` rather than
    failing the whole dashboard payload.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value) if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(item) for item in value]
    item_of = getattr(value, "item", None)
    if callable(item_of):          # numpy scalars
        try:
            return jsonable(item_of())
        except (TypeError, ValueError):
            pass
    tolist = getattr(value, "tolist", None)
    if callable(tolist):           # numpy arrays
        return jsonable(tolist())
    return repr(value)


@dataclass(frozen=True)
class ServedQueryRecord:
    """One served query, as the metrics module sees it."""

    dataset: str
    index_name: str
    latency_s: float
    ios: int
    reported: int
    result_cache_hit: bool = False
    store_cache_hits: int = 0
    #: Shards the query fanned out to (0 for unsharded datasets).
    shards_queried: int = 0
    #: Shards skipped by the planner's bounding-box pruning.
    shards_pruned: int = 0
    #: Logical tenant the request belonged to ("" outside the async path).
    tenant: str = ""
    #: True when admission control served a degraded (sample-only) answer.
    degraded: bool = False
    #: Fraction of the dataset the answer was computed from (1.0 = exact;
    #: degraded sample answers carry their sample's coverage).
    sample_rate: float = 1.0
    #: For degraded answers: the scaled full-dataset count estimate.
    estimated_count: Optional[int] = None
    #: For degraded answers: the count interval around the estimate.
    count_interval: Optional[Tuple[int, int]] = None
    #: How the interval was produced: "conformal" once the dataset's
    #: calibration set is warm, "normal_fallback" during cold start,
    #: None for exact answers.
    interval_source: Optional[str] = None


def q_error(expected: float, actual: float) -> float:
    """The planner's estimation error for one query, as a ratio >= 1.

    The standard cardinality-estimation metric: ``max(est/act, act/est)``
    with both sides clamped to 1, so a zero estimate against a zero
    actual is a perfect 1.0 instead of 0/0.
    """
    expected = max(float(expected), 1.0)
    actual = max(float(actual), 1.0)
    return max(expected / actual, actual / expected)


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 for empty input)."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must lie in [0, 1], got %r" % fraction)
    rank = min(len(sorted_values) - 1,
               max(0, int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


@dataclass
class EngineStats:
    """Aggregated serving statistics across every query the engine ran."""

    records: List[ServedQueryRecord] = field(default_factory=list)
    #: Admission-control outcome counts (admitted/queued/rejected/...).
    admission_decisions: Dict[str, int] = field(default_factory=dict)
    #: Deepest the async request queue has run (sampled per wake-up).
    _max_queue_depth: int = 0
    #: I/Os attributed per (dataset, shard_id, replica_id).
    replica_load: Dict[Tuple[str, int, int], int] = field(default_factory=dict)
    #: Per-dataset expected-output q-errors (one per executed plan /
    #: shard plan), fed by the executor's calibration-feedback path.
    estimation_errors: Dict[str, List[float]] = field(default_factory=dict)
    #: Shard re-split events (RebalanceReport summaries, in order).
    rebalance_events: List[Dict[str, object]] = field(default_factory=list)
    #: Per-dataset write counters ({"inserts", "deletes", "noop_deletes",
    #: "replica_writes", "total_ios"}) fed by the engine's write path.
    write_counters: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Per-dataset write latencies (seconds, one sample per mutation).
    write_latencies: Dict[str, List[float]] = field(default_factory=dict)
    #: Per-endpoint HTTP latencies (seconds), fed by the network
    #: front-end's app layer ("*" = unroutable/malformed requests).
    http_latencies: Dict[str, List[float]] = field(default_factory=dict)
    #: Per-endpoint HTTP status-code counts (codes stringified for JSON).
    http_statuses: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: The labeled metric families every ``note_*`` call mirrors into —
    #: scraped as Prometheus text on ``GET /metrics`` and embedded as
    #: JSON in ``summary()["metrics"]``.
    registry: MetricsRegistry = field(default_factory=MetricsRegistry,
                                      repr=False)
    #: Per-dataset conformal calibration over the same (expected, actual)
    #: pairs :meth:`note_estimation` records — the distribution-free
    #: intervals degraded answers serve once the window is warm.
    conformal: ConformalCalibrator = field(
        default_factory=ConformalCalibrator, repr=False)
    #: Optional callable returning the live ``{name: SelectivityModel}``
    #: map (the engine registers one); feeds ``summary()["stats"]`` and
    #: the per-model gauges.
    model_provider: Optional[Callable[[], Dict[str, object]]] = field(
        default=None, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        reg = self.registry
        self._m_queries = reg.counter(
            "engine_queries_total", "Served queries", ("dataset", "index"))
        self._m_ios = reg.counter(
            "engine_ios_total", "Block transfers charged to served queries",
            ("dataset",))
        self._m_reported = reg.counter(
            "engine_records_reported_total",
            "Records reported by served queries", ("dataset",))
        self._m_store_hits = reg.counter(
            "engine_store_cache_hits_total",
            "Buffer-pool hits attributed to served queries", ("dataset",))
        self._m_result_hits = reg.counter(
            "engine_result_cache_hits_total",
            "Queries answered from the result cache", ("dataset",))
        self._m_degraded = reg.counter(
            "engine_degraded_answers_total",
            "Degraded (sample-only) answers served", ("dataset",))
        self._m_latency = reg.histogram(
            "engine_query_latency_seconds", "Served-query latency",
            ("dataset",))
        self._m_qerror = reg.histogram(
            "engine_estimation_qerror",
            "Expected-output q-error per executed plan", ("dataset",),
            buckets=(1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 50.0))
        self._m_writes = reg.counter(
            "engine_writes_total", "Engine-level mutations",
            ("dataset", "op"))
        self._m_write_ios = reg.counter(
            "engine_write_ios_total",
            "Block transfers charged to mutations", ("dataset",))
        self._m_write_latency = reg.histogram(
            "engine_write_latency_seconds", "Mutation latency", ("dataset",))
        self._m_http = reg.counter(
            "engine_http_requests_total", "Handled HTTP requests",
            ("endpoint", "status"))
        self._m_http_latency = reg.histogram(
            "engine_http_latency_seconds", "HTTP handling latency",
            ("endpoint",))
        self._m_admission = reg.counter(
            "engine_admission_decisions_total",
            "Admission-control outcomes", ("decision",))
        self._m_queue_depth = reg.gauge(
            "engine_queue_depth_max",
            "Deepest the async request queue has run")
        self._m_rebalances = reg.counter(
            "engine_rebalances_total", "Shard re-split events", ("dataset",))
        self._m_replica_ios = reg.counter(
            "engine_replica_ios_total", "I/Os attributed per shard replica",
            ("dataset", "shard", "replica"))
        # Model-state gauges: last-write-wins snapshots refreshed by
        # refresh_model_metrics() (every summary() / /metrics scrape).
        self._m_adaptations = reg.gauge(
            "engine_histogram_adaptations",
            "Histogram directions replaced by workload feedback",
            ("dataset",))
        self._m_direction_qerror = reg.gauge(
            "engine_histogram_direction_qerror",
            "Geometric-mean q-error per histogram direction",
            ("dataset", "direction"))
        self._m_ensemble_weight = reg.gauge(
            "engine_ensemble_weight",
            "Normalised e-value weight per ensemble member",
            ("dataset", "member"))
        self._m_member_qerror = reg.gauge(
            "engine_ensemble_member_qerror",
            "Geometric-mean own-estimate q-error per ensemble member",
            ("dataset", "member"))
        self._m_conformal_pairs = reg.gauge(
            "engine_conformal_calibration_pairs",
            "Calibration pairs held per dataset", ("dataset",))
        self._m_conformal_intervals = reg.gauge(
            "engine_conformal_intervals_total",
            "Conformal intervals scored against actual counts",
            ("dataset",))
        self._m_conformal_covered = reg.gauge(
            "engine_conformal_covered_total",
            "Conformal intervals that covered the actual count",
            ("dataset",))
        self._m_conformal_coverage = reg.gauge(
            "engine_conformal_empirical_coverage",
            "Prequential empirical coverage per dataset (vs nominal)",
            ("dataset",))

    def record(self, record: ServedQueryRecord) -> None:
        """Append one served-query record (thread-safe)."""
        with self._lock:
            self.records.append(record)
        self._m_queries.inc(dataset=record.dataset, index=record.index_name)
        self._m_ios.inc(record.ios, dataset=record.dataset)
        self._m_reported.inc(record.reported, dataset=record.dataset)
        self._m_latency.observe(record.latency_s, dataset=record.dataset)
        if record.store_cache_hits:
            self._m_store_hits.inc(record.store_cache_hits,
                                   dataset=record.dataset)
        if record.result_cache_hit:
            self._m_result_hits.inc(dataset=record.dataset)
        if record.degraded:
            self._m_degraded.inc(dataset=record.dataset)

    def note_estimation(self, dataset: str, expected: float,
                        actual: float) -> None:
        """Record one plan's expected-vs-actual output q-error (thread-safe).

        Fed by the executor alongside calibration feedback, so every
        executed (shard) plan contributes exactly one sample — the signal
        operators watch to see when a dataset's selectivity model is
        misestimating.  Each pair also feeds the dataset's conformal
        calibration window, which is where degraded answers get their
        distribution-free intervals once it is warm.
        """
        error = q_error(expected, actual)
        with self._lock:
            self.estimation_errors.setdefault(dataset, []).append(error)
        self._m_qerror.observe(error, dataset=dataset)
        self.conformal.observe(dataset, expected, actual)

    def note_write(self, dataset: str, op: str, applied: bool, ios: int,
                   latency_s: float, replicas: int) -> None:
        """Record one engine-level mutation (thread-safe).

        One call per *logical* mutation, however many replicas it fanned
        out to; ``replicas`` counts the per-replica applications and
        ``ios`` the block transfers they charged in total.  A delete of
        an absent point lands in ``noop_deletes`` instead of ``deletes``.
        """
        with self._lock:
            counters = self.write_counters.setdefault(dataset, {
                "inserts": 0, "deletes": 0, "noop_deletes": 0,
                "replica_writes": 0, "total_ios": 0})
            if op == "insert":
                counters["inserts"] += 1
            elif applied:
                counters["deletes"] += 1
            else:
                counters["noop_deletes"] += 1
            counters["replica_writes"] += replicas
            counters["total_ios"] += ios
            self.write_latencies.setdefault(dataset, []).append(latency_s)
        if op == "insert":
            op_label = "insert"
        else:
            op_label = "delete" if applied else "noop_delete"
        self._m_writes.inc(dataset=dataset, op=op_label)
        self._m_write_ios.inc(ios, dataset=dataset)
        self._m_write_latency.observe(latency_s, dataset=dataset)

    def note_http(self, endpoint: str, status: int,
                  latency_s: float) -> None:
        """Record one handled HTTP request (thread-safe).

        ``endpoint`` is the route path (e.g. ``"/query"``); the server
        buckets unroutable or malformed requests under ``"*"`` so a
        scanner probing random paths cannot grow the table unboundedly.
        """
        code = str(int(status))
        with self._lock:
            self.http_latencies.setdefault(endpoint, []).append(latency_s)
            counts = self.http_statuses.setdefault(endpoint, {})
            counts[code] = counts.get(code, 0) + 1
        self._m_http.inc(endpoint=endpoint, status=code)
        self._m_http_latency.observe(latency_s, endpoint=endpoint)

    def note_rebalance(self, event: Dict[str, object]) -> None:
        """Record one shard re-split event (thread-safe)."""
        with self._lock:
            self.rebalance_events.append(dict(event))
        self._m_rebalances.inc(dataset=str(event.get("dataset")))

    def note_admission(self, decision: str) -> None:
        """Count one admission-control outcome (thread-safe)."""
        with self._lock:
            self.admission_decisions[decision] = \
                self.admission_decisions.get(decision, 0) + 1
        self._m_admission.inc(decision=decision)

    def note_queue_depth(self, depth: int) -> None:
        """Sample the serving queue's depth (called by the async scheduler).

        Keeps a running maximum, not the samples: the scheduler wakes up
        to a thousand times a second under a throttled tenant, and only
        the peak is reported.
        """
        with self._lock:
            if depth > self._max_queue_depth:
                self._max_queue_depth = depth
        self._m_queue_depth.max(depth)

    def record_replica_load(self, dataset: str, shard_id: int,
                            replica_id: int, ios: int) -> None:
        """Attribute I/Os to one shard replica (thread-safe)."""
        key = (dataset, shard_id, replica_id)
        with self._lock:
            self.replica_load[key] = self.replica_load.get(key, 0) + ios
        self._m_replica_ios.inc(ios, dataset=dataset, shard=shard_id,
                                replica=replica_id)

    def reset(self) -> None:
        """Drop every record (e.g. between benchmark phases)."""
        with self._lock:
            self.records.clear()
            self.admission_decisions.clear()
            self._max_queue_depth = 0
            self.replica_load.clear()
            self.estimation_errors.clear()
            self.rebalance_events.clear()
            self.write_counters.clear()
            self.write_latencies.clear()
            self.http_latencies.clear()
            self.http_statuses.clear()
        self.conformal.reset()
        self.registry.reset()

    # ------------------------------------------------------------------
    # windows
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """An opaque window marker for :meth:`snapshot_delta` (thread-safe).

        Cheap by design — it remembers *positions*, not copies — so
        benchmarks and tests can bracket a phase with
        ``marker = stats.snapshot(); ...; stats.snapshot_delta(marker)``
        instead of re-creating engines to get a clean counter window.
        """
        with self._lock:
            return {"num_records": len(self.records)}

    def snapshot_delta(self, marker: Dict[str, int]) -> Dict[str, object]:
        """Aggregates over the queries served since ``marker``.

        Returns the windowed counterparts of the headline ``summary()``
        numbers (query count, I/O and cache totals, latency percentiles,
        plan distribution), strictly JSON-serializable.  ``reset()``
        between the marker and the delta yields an empty window rather
        than an error.
        """
        start = int(marker.get("num_records", 0))
        with self._lock:
            window = list(self.records[start:])
        latencies = sorted(record.latency_s for record in window)
        return jsonable({
            "num_queries": len(window),
            "total_ios": sum(record.ios for record in window),
            "total_reported": sum(record.reported for record in window),
            "store_cache_hits": sum(record.store_cache_hits
                                    for record in window),
            "result_cache_hits": sum(1 for record in window
                                     if record.result_cache_hit),
            "shards_queried": sum(record.shards_queried
                                  for record in window),
            "shards_pruned": sum(record.shards_pruned for record in window),
            "degraded": sum(1 for record in window if record.degraded),
            "latency_s": {
                "p50": percentile(latencies, 0.5),
                "p95": percentile(latencies, 0.95),
                "p99": percentile(latencies, 0.99),
            },
            "plan_distribution": dict(Counter(record.index_name
                                              for record in window)),
        })

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def num_queries(self) -> int:
        """Number of served queries (result-cache hits included)."""
        return len(self.records)

    @property
    def total_ios(self) -> int:
        """Total block transfers across every served query."""
        return sum(record.ios for record in self.records)

    @property
    def total_reported(self) -> int:
        """Total records reported across every served query."""
        return sum(record.reported for record in self.records)

    @property
    def result_cache_hits(self) -> int:
        """Queries answered from the engine's result cache (zero I/Os)."""
        return sum(1 for record in self.records if record.result_cache_hit)

    @property
    def result_cache_hit_rate(self) -> float:
        """Fraction of served queries answered from the result cache."""
        return (self.result_cache_hits / self.num_queries
                if self.num_queries else 0.0)

    @property
    def store_cache_hits(self) -> int:
        """Buffer-pool hits attributed to served queries (free block reads)."""
        return sum(record.store_cache_hits for record in self.records)

    @property
    def store_cache_hit_rate(self) -> float:
        """Buffer-pool hits over buffer-pool lookups (hits + charged reads)."""
        lookups = self.store_cache_hits + self.total_ios
        return self.store_cache_hits / lookups if lookups else 0.0

    @property
    def shards_queried(self) -> int:
        """Total shard visits across every fanned-out query."""
        return sum(record.shards_queried for record in self.records)

    @property
    def shards_pruned(self) -> int:
        """Total shard visits the planner's pruning avoided."""
        return sum(record.shards_pruned for record in self.records)

    @property
    def shard_prune_rate(self) -> float:
        """Pruned over candidate shard visits (0.0 with no sharded traffic)."""
        candidates = self.shards_queried + self.shards_pruned
        return self.shards_pruned / candidates if candidates else 0.0

    @property
    def max_queue_depth(self) -> int:
        """Deepest the async request queue ran (0 without async traffic)."""
        return self._max_queue_depth

    def plan_distribution(self) -> Dict[str, int]:
        """How many queries each index served (the planner's routing mix)."""
        return dict(Counter(record.index_name for record in self.records))

    def latency_percentiles(self, fractions=(0.5, 0.9, 0.99)) -> Dict[str, float]:
        """Latency percentiles in seconds, keyed "p50", "p90", ..."""
        ordered = sorted(record.latency_s for record in self.records)
        return {"p%g" % (fraction * 100): percentile(ordered, fraction)
                for fraction in fractions}

    def tenant_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant traffic summary (queries, I/Os, latency percentiles).

        Only records carrying a tenant label (the async serving path)
        participate; an empty dict means no tenant-attributed traffic.
        Snapshots the record list under the lock, so a dashboard thread
        can call this while workers are recording.
        """
        with self._lock:
            records = list(self.records)
        by_tenant: Dict[str, List[ServedQueryRecord]] = {}
        for record in records:
            if record.tenant:
                by_tenant.setdefault(record.tenant, []).append(record)
        out: Dict[str, Dict[str, object]] = {}
        for tenant in sorted(by_tenant):
            group = by_tenant[tenant]
            latencies = sorted(record.latency_s for record in group)
            out[tenant] = {
                "queries": len(group),
                "total_ios": sum(record.ios for record in group),
                "degraded": sum(1 for record in group if record.degraded),
                "latency_s": {
                    "p50": percentile(latencies, 0.5),
                    "p95": percentile(latencies, 0.95),
                    "p99": percentile(latencies, 0.99),
                },
            }
        return out

    def replica_load_summary(self) -> Dict[str, int]:
        """Per-replica I/O totals keyed ``dataset/shard/replica`` (JSON-safe).

        Copies the load table under the lock: fan-out workers insert new
        replica keys concurrently, and iterating a mutating dict raises.
        """
        with self._lock:
            items = sorted(self.replica_load.items())
        return {"%s/%d/%d" % key: ios for key, ios in items}

    def admission_summary(self) -> Dict[str, int]:
        """A stable copy of the admission-decision counters (lock-held)."""
        with self._lock:
            return dict(self.admission_decisions)

    def estimation_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-dataset expected-output q-error percentiles.

        One entry per dataset that executed at least one plan: sample
        count, p50/p90/max and mean of the q-errors.  A p50 near 1.0
        means the selectivity model prices typical queries well; a heavy
        tail (p90/max) is the operator's cue to switch models (or that a
        mutated shard needs rebalancing).  Snapshots under the lock.
        """
        with self._lock:
            errors = {dataset: list(values)
                      for dataset, values in self.estimation_errors.items()}
        out: Dict[str, Dict[str, float]] = {}
        for dataset in sorted(errors):
            ordered = sorted(errors[dataset])
            out[dataset] = {
                "plans": len(ordered),
                "p50": percentile(ordered, 0.5),
                "p90": percentile(ordered, 0.9),
                "max": ordered[-1] if ordered else 0.0,
                "mean": sum(ordered) / len(ordered) if ordered else 0.0,
            }
        return out

    def write_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-dataset write counters plus latency percentiles.

        One entry per dataset that accepted at least one engine-level
        mutation: the counters from :meth:`note_write` plus p50/p95/p99
        write latency in seconds.  Snapshots under the lock, so a
        dashboard thread can call this while writers are recording.
        """
        with self._lock:
            counters = {dataset: dict(values)
                        for dataset, values in self.write_counters.items()}
            latencies = {dataset: sorted(values)
                         for dataset, values in self.write_latencies.items()}
        out: Dict[str, Dict[str, object]] = {}
        for dataset in sorted(counters):
            ordered = latencies.get(dataset, [])
            payload: Dict[str, object] = dict(counters[dataset])
            payload["latency_s"] = {
                "p50": percentile(ordered, 0.5),
                "p95": percentile(ordered, 0.95),
                "p99": percentile(ordered, 0.99),
            }
            out[dataset] = payload
        return out

    def http_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-endpoint HTTP traffic: counts, status codes, latencies.

        One entry per endpoint the network front-end served, with the
        request count, per-status-code counters and p50/p95/p99 handling
        latency in seconds.  Empty without HTTP traffic.  Snapshots
        under the lock, so ``/stats`` can serve it while connection
        handlers are recording.
        """
        with self._lock:
            latencies = {endpoint: sorted(values)
                         for endpoint, values in self.http_latencies.items()}
            statuses = {endpoint: dict(counts)
                        for endpoint, counts in self.http_statuses.items()}
        out: Dict[str, Dict[str, object]] = {}
        for endpoint in sorted(latencies):
            ordered = latencies[endpoint]
            out[endpoint] = {
                "requests": len(ordered),
                "status": statuses.get(endpoint, {}),
                "latency_s": {
                    "p50": percentile(ordered, 0.5),
                    "p95": percentile(ordered, 0.95),
                    "p99": percentile(ordered, 0.99),
                },
            }
        return out

    def rebalance_summary(self) -> Dict[str, object]:
        """Shard re-split events: total count, per-dataset counts, events."""
        with self._lock:
            events = [dict(event) for event in self.rebalance_events]
        return {
            "count": len(events),
            "by_dataset": dict(Counter(str(event.get("dataset"))
                                       for event in events)),
            "events": events,
        }

    def mean_ios(self) -> float:
        """Average I/Os per served query."""
        return self.total_ios / self.num_queries if self.num_queries else 0.0

    # ------------------------------------------------------------------
    # model state (ensemble weights, histogram adaptation, conformal)
    # ------------------------------------------------------------------
    def set_model_provider(
            self, provider: Optional[Callable[[], Dict[str, object]]]
    ) -> None:
        """Register the live ``{name: SelectivityModel}`` source.

        The engine registers a provider that walks its catalog (datasets
        and shard children) at call time, so :meth:`model_summary` and
        the gauges always reflect the *current* models — shard stats get
        rebuilt on upgrade/re-split, so holding model references here
        would go stale.
        """
        self.model_provider = provider

    def model_summary(self) -> Dict[str, Dict[str, object]]:
        """Live per-model state: weights, adaptation, per-direction q-error.

        One entry per model the provider reports (top-level datasets plus
        ``name/shard<id>`` children), carrying the model's ``describe()``
        payload; histogram models additionally surface their
        per-direction geometric-mean q-error, and ensemble members'
        histogram state is lifted alongside the weights.  Refreshes the
        corresponding Prometheus gauges as a side effect, so
        ``summary()`` and ``/metrics`` report the same snapshot.
        """
        if self.model_provider is None:
            return {}
        out: Dict[str, Dict[str, object]] = {}
        for name, model in sorted(self.model_provider().items()):
            if model is None:
                continue
            payload: Dict[str, object] = dict(model.describe())
            self._collect_histogram_state(name, model, payload)
            weights = getattr(model, "weights", None)
            if isinstance(weights, dict):
                for member, weight in weights.items():
                    self._m_ensemble_weight.set(weight, dataset=name,
                                                member=member)
                for member, error in model.member_qerror().items():
                    if error is not None:
                        self._m_member_qerror.set(error, dataset=name,
                                                  member=member)
                members = getattr(model, "members", ())
                member_names = getattr(model, "MEMBER_NAMES", ())
                for member_name, member in zip(member_names, members):
                    self._collect_histogram_state(
                        "%s/%s" % (name, member_name), member,
                        payload.setdefault("members", {})
                        .setdefault(member_name, {}))
            out[name] = payload
        return out

    def _collect_histogram_state(self, label: str, model: object,
                                 payload: Dict[str, object]) -> None:
        """Fold one histogram-capable model's adaptation state in."""
        direction_qerror = getattr(model, "direction_qerror", None)
        if not callable(direction_qerror):
            return
        per_direction = direction_qerror()
        payload["adaptations"] = getattr(model, "adaptations", 0)
        payload["direction_qerror"] = per_direction
        self._m_adaptations.set(payload["adaptations"], dataset=label)
        for entry in per_direction:
            if entry["qerror"] is not None:
                self._m_direction_qerror.set(
                    entry["qerror"], dataset=label,
                    direction=entry["direction"])

    def refresh_model_metrics(self) -> Dict[str, Dict[str, object]]:
        """Update the model/conformal gauges from live state.

        Called before every ``/metrics`` scrape (and by ``summary()``),
        since gauges are last-write-wins snapshots rather than hot-path
        counters.  Returns the model summary it refreshed from.
        """
        models = self.model_summary()
        for name, state in self.conformal.describe()["datasets"].items():
            self._m_conformal_pairs.set(state["pairs"], dataset=name)
            self._m_conformal_intervals.set(state["intervals"], dataset=name)
            self._m_conformal_covered.set(state["covered"], dataset=name)
            if state["empirical_coverage"] is not None:
                self._m_conformal_coverage.set(state["empirical_coverage"],
                                               dataset=name)
        return models

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Everything a dashboard (or BENCH json) wants, as one dict.

        The returned tree is strictly JSON-serializable — tuples, numpy
        scalars and non-finite floats are normalized by
        :func:`jsonable` — because ``/stats`` ships it over the wire
        verbatim and ``json.dumps(summary, allow_nan=False)`` must not
        raise.
        """
        models = self.refresh_model_metrics()
        return jsonable({
            "num_queries": self.num_queries,
            "total_ios": self.total_ios,
            "mean_ios": self.mean_ios(),
            "total_reported": self.total_reported,
            "result_cache_hits": self.result_cache_hits,
            "result_cache_hit_rate": self.result_cache_hit_rate,
            "store_cache_hits": self.store_cache_hits,
            "store_cache_hit_rate": self.store_cache_hit_rate,
            "shards_queried": self.shards_queried,
            "shards_pruned": self.shards_pruned,
            "shard_prune_rate": self.shard_prune_rate,
            "latency_s": self.latency_percentiles(),
            "plan_distribution": self.plan_distribution(),
            "estimation_qerror": self.estimation_summary(),
            "stats": models,
            "conformal": self.conformal.describe(),
            "writes": self.write_summary(),
            "rebalances": self.rebalance_summary(),
            "admission": self.admission_summary(),
            "max_queue_depth": self.max_queue_depth,
            "replica_load": self.replica_load_summary(),
            "tenants": self.tenant_summary(),
            "http": self.http_summary(),
            "metrics": self.registry.to_json(),
        })

    def to_table(self, title: Optional[str] = None) -> str:
        """Per-index serving table (queries, I/Os, latency percentiles)."""
        by_index: Dict[str, List[ServedQueryRecord]] = {}
        for record in self.records:
            by_index.setdefault(record.index_name, []).append(record)
        header = ["index", "#q", "mean I/Os", "total I/Os", "p50 ms",
                  "p99 ms", "res-cache hits"]
        rows = []
        for name in sorted(by_index):
            group = by_index[name]
            latencies = sorted(record.latency_s for record in group)
            rows.append([
                name,
                str(len(group)),
                "%.1f" % (sum(r.ios for r in group) / len(group)),
                str(sum(r.ios for r in group)),
                "%.2f" % (percentile(latencies, 0.5) * 1e3),
                "%.2f" % (percentile(latencies, 0.99) * 1e3),
                str(sum(1 for r in group if r.result_cache_hit)),
            ])
        return format_table(header, rows, title=title or "engine serving stats")
