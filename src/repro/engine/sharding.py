"""Sharded datasets: partition a point set across several block stores.

One :class:`~repro.io.store.BlockStore` is one disk; past a point a single
disk (and the single buffer pool in front of it) is the bottleneck.  A
:class:`ShardedDataset` partitions a dataset's points across ``K`` shards —
each with its own store, its own backend and its own index suite — so the
executor can fan a query out and the planner can price a plan as
(relevant shards × the per-shard paper bound).

Two routers ship:

* :class:`HashShardRouter` — points are spread by a deterministic hash,
  balancing load but touching every shard on every query;
* :class:`RangeShardRouter` — points are split at quantiles of a *leading
  attribute*, so a constraint that is selective in that attribute misses
  most shards entirely.

Pruning is exact, not heuristic: every shard records the bounding box of
its points, and a shard participates only if the query halfspace intersects
that box (the minimum of the constraint residual over a box is a closed
form).  For range shards and steep leading-attribute constraints this
reproduces classic partition pruning; for hash shards the boxes all span
the data and nothing is pruned — which is exactly the trade-off the two
routers represent.
"""

from __future__ import annotations

import abc
import bisect
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    TYPE_CHECKING,
    Tuple,
)

import numpy as np

from repro.core.conjunction import ConstraintConjunction
from repro.geometry.primitives import LinearConstraint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (catalog imports us)
    from repro.engine.catalog import Catalog, Dataset
    from repro.engine.metrics import EngineStats
    from repro.engine.stats import SelectivityModel


def sample_hits(sample: np.ndarray, dimension: int,
                constraint: LinearConstraint) -> np.ndarray:
    """The sample rows satisfying ``constraint`` (zero I/Os).

    One vectorised residual computation; the single membership rule behind
    both selectivity estimation and the admission controller's degraded
    sample answers, so the two can never drift apart.
    """
    if constraint.dimension != dimension:
        raise ValueError(
            "constraint dimension %d does not match dataset dimension %d"
            % (constraint.dimension, dimension))
    residuals = (sample[:, -1]
                 - sample[:, :-1] @ np.asarray(constraint.coeffs))
    return sample[residuals <= constraint.offset]


def selectivity_on_sample(sample: np.ndarray, dimension: int,
                          constraint: LinearConstraint) -> float:
    """Fraction of the sample satisfying ``constraint`` (zero I/Os).

    Shared by plain and sharded datasets so their selectivity estimates
    can never diverge.
    """
    if len(sample) == 0:
        return 0.0
    return len(sample_hits(sample, dimension, constraint)) / len(sample)


def constraint_feasible_over_box(constraint: LinearConstraint,
                                 lows: Sequence[float],
                                 highs: Sequence[float]) -> bool:
    """True if some point of the axis-aligned box can satisfy the constraint.

    The constraint is ``x_d - sum_i a_i x_i <= a_0``; the left side is
    linear, so its minimum over the box is attained at a corner picked
    per-coordinate: the low corner of ``x_d``, and for each ``x_i`` the
    high corner when ``a_i > 0`` (it is subtracted) else the low corner.
    If even that minimum exceeds ``a_0`` no point of the box qualifies.
    """
    if len(lows) != constraint.dimension:
        raise ValueError("box dimension %d does not match constraint "
                         "dimension %d" % (len(lows), constraint.dimension))
    minimum = lows[-1]
    for coeff, lo, hi in zip(constraint.coeffs, lows, highs):
        minimum -= coeff * (hi if coeff > 0 else lo)
    # Relative slack: with large coordinates/coefficients the corner
    # products carry rounding error far above any absolute epsilon, and a
    # boundary point (offsets come from residual quantiles) must never be
    # pruned away.
    slack = 1e-9 * max(1.0, abs(minimum), abs(constraint.offset))
    return minimum <= constraint.offset + slack


class ShardRouter(abc.ABC):
    """Maps points to shard ids; built once per sharded dataset."""

    #: Short scheme name ("hash" / "range") used in configs and reprs.
    scheme: str = "abstract"

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1, got %r" % num_shards)
        self.num_shards = num_shards

    @abc.abstractmethod
    def shard_of(self, point: Sequence[float]) -> int:
        """The shard id a point belongs to."""

    def assign(self, points: np.ndarray) -> List[np.ndarray]:
        """Row indices of ``points`` per shard (length ``num_shards``)."""
        buckets: List[List[int]] = [[] for __ in range(self.num_shards)]
        for row, point in enumerate(points):
            buckets[self.shard_of(point)].append(row)
        return [np.asarray(bucket, dtype=int) for bucket in buckets]

    def describe(self) -> Dict[str, object]:
        """JSON-friendly router description (persisted by benchmarks)."""
        return {"scheme": self.scheme, "num_shards": self.num_shards}

    def __repr__(self) -> str:
        return "%s(num_shards=%d)" % (type(self).__name__, self.num_shards)


class HashShardRouter(ShardRouter):
    """Deterministic hash partitioning over the whole point tuple.

    Python's numeric hash is stable across runs (only str/bytes hashing is
    randomised), so the assignment is reproducible.
    """

    scheme = "hash"

    def shard_of(self, point: Sequence[float]) -> int:
        return hash(tuple(float(c) for c in point)) % self.num_shards


class RangeShardRouter(ShardRouter):
    """Quantile range partitioning on one *leading* attribute.

    Boundaries are the ``k/K`` quantiles of ``points[:, attribute]``, so
    shards are balanced on the build distribution; ``shard_of`` bisects the
    boundary list.
    """

    scheme = "range"

    def __init__(self, num_shards: int, boundaries: Sequence[float],
                 attribute: int = 0):
        super().__init__(num_shards)
        if len(boundaries) != num_shards - 1:
            raise ValueError("need %d boundaries for %d shards, got %d"
                             % (num_shards - 1, num_shards, len(boundaries)))
        if list(boundaries) != sorted(boundaries):
            raise ValueError("boundaries must be sorted, got %r"
                             % (list(boundaries),))
        self.attribute = attribute
        self.boundaries = [float(b) for b in boundaries]

    @classmethod
    def from_points(cls, points: np.ndarray, num_shards: int,
                    attribute: int = 0) -> "RangeShardRouter":
        """Choose boundaries as quantiles of the attribute's distribution."""
        points = np.asarray(points, dtype=float)
        if not 0 <= attribute < points.shape[1]:
            raise ValueError("attribute %d out of range for dimension %d"
                             % (attribute, points.shape[1]))
        fractions = np.arange(1, num_shards) / num_shards
        boundaries = np.quantile(points[:, attribute], fractions)
        return cls(num_shards, boundaries.tolist(), attribute=attribute)

    def shard_of(self, point: Sequence[float]) -> int:
        return bisect.bisect_right(self.boundaries,
                                   float(point[self.attribute]))

    def assign(self, points: np.ndarray) -> List[np.ndarray]:
        """Vectorised range routing: one searchsorted over the attribute."""
        points = np.asarray(points, dtype=float)
        shard_ids = np.searchsorted(np.asarray(self.boundaries),
                                    points[:, self.attribute], side="right")
        return [np.flatnonzero(shard_ids == shard)
                for shard in range(self.num_shards)]

    def describe(self) -> Dict[str, object]:
        payload = super().describe()
        payload["attribute"] = self.attribute
        payload["boundaries"] = list(self.boundaries)
        return payload


def make_router(scheme: str, points: np.ndarray, num_shards: int,
                attribute: int = 0) -> ShardRouter:
    """Build a router of the given scheme over the dataset's points."""
    if scheme == "hash":
        return HashShardRouter(num_shards)
    if scheme == "range":
        return RangeShardRouter.from_points(points, num_shards,
                                            attribute=attribute)
    raise ValueError("unknown sharding scheme %r (expected 'hash' or "
                     "'range')" % (scheme,))


@dataclass
class Shard:
    """One shard: replicated child datasets plus the pruning bounding box.

    ``replicas`` holds N copies of the shard's points, each a full child
    dataset with its own store and index suite; replica 0 is the *primary*
    (exposed as :attr:`dataset` for the common unreplicated case).  The
    executor picks the least-loaded replica per query, so concurrent
    tenants touching the same shard overlap their I/O across replicas.
    The list is empty for an *empty* shard (possible under hash routing of
    tiny datasets); empty shards hold no store, build no indexes and are
    always pruned.

    The bounding box is computed from the build-time points.  Mutations
    through a shard's dynamic index can land *outside* it, so the engine
    marks the shard ``box_stale`` on the first mutation — a stale box is
    no longer trusted for pruning (the shard always participates), keeping
    pruning exact rather than heuristic.

    Mutations also interact with replication: the engine's write path
    (:class:`~repro.engine.writes.WritePath`) fans every insert/delete
    out to **all** replicas inside :meth:`write_fanout`, so the copies
    stay byte-identical and :meth:`replicas_for_query` keeps returning
    every replica after writes — the least-loaded picker's choices stay
    open.  Mutating one replica's index *directly* on a replicated shard
    is vetoed pre-write by :meth:`check_direct_mutation` (it would
    silently desynchronise the copies); single-replica shards accept
    direct index mutations as before.
    """

    shard_id: int
    replicas: List["Dataset"] = field(default_factory=list)
    lows: Optional[Tuple[float, ...]] = None
    highs: Optional[Tuple[float, ...]] = None
    box_stale: bool = False
    #: True while a lazily materialized shard is still running on the
    #: provisional uniform stats model; cleared when
    #: :meth:`~repro.engine.catalog.Catalog.upgrade_shard_stats` promotes
    #: it onto the dataset's configured model.
    stats_provisional: bool = False
    #: Serializes write fan-outs on this shard (one logical mutation at
    #: a time touches the replica set).
    _write_lock: threading.Lock = field(default_factory=threading.Lock,
                                        repr=False, compare=False)
    #: Thread currently fanning a mutation out to every replica (None =
    #: no fan-out in flight); the direct-mutation veto exempts it.
    _fanout_owner: Optional[int] = field(default=None, repr=False,
                                         compare=False)

    @property
    def dataset(self) -> Optional["Dataset"]:
        """The primary replica (None for an empty shard)."""
        return self.replicas[0] if self.replicas else None

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def is_empty(self) -> bool:
        return not self.replicas

    @property
    def size(self) -> int:
        return 0 if self.is_empty else self.replicas[0].size

    @contextmanager
    def write_fanout(self):
        """Scope one logical mutation being applied to *every* replica.

        The engine's write path holds this while fanning an insert/delete
        out: it serializes writers on the shard and exempts the owning
        thread from the direct-mutation veto.  Replicas stay identical
        because nothing else may mutate them meanwhile.
        """
        with self._write_lock:
            self._fanout_owner = threading.get_ident()
            try:
                yield
            finally:
                self._fanout_owner = None

    def check_direct_mutation(self) -> None:
        """Veto a single-replica mutation on a replicated shard.

        Wired as a *pre*-mutation listener by the engine, so the raise
        lands before any write is applied and the rejected replica stays
        byte-identical to its siblings.  Writing one replica of a
        replicated shard would silently desynchronise the copies — the
        engine-level write path fans the mutation out to all of them
        instead (its fan-out thread is exempt).

        Single-replica shards keep accepting direct index mutations, as
        they always have — but note those bypass the dataset's write
        barrier, so they are not safe against a *concurrent* re-split
        (the pre-existing contract: direct mutations are a
        single-threaded convenience; concurrent writers go through
        ``QueryEngine.insert``/``delete``).
        """
        if len(self.replicas) > 1 \
                and self._fanout_owner != threading.get_ident():
            raise ValueError(
                "shard %d holds %d replicas; mutating one replica's index "
                "directly would desynchronise the copies — route the write "
                "through QueryEngine.insert/delete, which fans it out to "
                "every replica" % (self.shard_id, len(self.replicas)))

    def mark_mutated(self) -> None:
        """Record that the shard's data changed after the build.

        Called once per logical mutation by the engine's post-mutation
        hooks; disables box pruning for this shard from now on (the
        mutation may have landed outside the build-time bounding box).
        """
        self.box_stale = True

    def replicas_for_query(self) -> List[int]:
        """Replica ids a query may be served from — always all of them.

        The write path keeps replicas identical (fan-out with rollback),
        so reads stay free to spread over every copy even after
        mutations.
        """
        return list(range(len(self.replicas)))

    def planning_dataset(self) -> "Dataset":
        """The replica dataset the planner should cost candidates against.

        Replicas are identical by construction (the write path fans
        mutations out to all of them), so this is simply the primary;
        its ``mutated`` flag makes the planner skip statically-built
        indexes after updates.
        """
        return self.replicas[0]

    def may_contain(self, constraint: LinearConstraint) -> bool:
        """True unless the bounding box proves the shard reports nothing."""
        if self.is_empty:
            return False
        if self.box_stale:
            return True
        return constraint_feasible_over_box(constraint, self.lows, self.highs)

    def may_contain_conjunction(self,
                                conjunction: ConstraintConjunction) -> bool:
        """True unless some conjunct alone already excludes the box."""
        if self.is_empty:
            return False
        if self.box_stale:
            return True
        return all(constraint_feasible_over_box(c, self.lows, self.highs)
                   for c in conjunction.constraints)


@dataclass
class ShardedDataset:
    """A dataset partitioned across per-shard stores and index suites.

    The global ``stats`` model estimates whole-dataset selectivity exactly
    as :class:`~repro.engine.catalog.Dataset` does (falling back to the
    uniform ``sample`` when no model is attached); each shard's child
    dataset additionally keeps its own model so the planner can price
    per-shard output sizes with shard-local statistics.  ``prune`` can be
    flipped off to force fan-out to every shard (benchmarks use this to
    measure what pruning saves).

    ``generation`` counts re-splits: the :class:`RebalanceManager` bumps
    it when it rebuilds the shard layout, and the executor re-plans any
    query whose plan was made against an older generation.
    """

    name: str
    points: np.ndarray
    sample: np.ndarray
    router: ShardRouter
    shards: List[Shard] = field(default_factory=list)
    prune: bool = True
    #: Pluggable selectivity model (None = estimate on the sample).
    stats: Optional["SelectivityModel"] = None
    #: Index builds performed over every shard — ``{"kind", "index_name",
    #: "params"}`` records kept by the catalog so a re-split can rebuild
    #: the identical suite (same names, same parameters) on new shards.
    suite_builds: List[Dict[str, object]] = field(default_factory=list)
    #: Re-split counter; plans carry the generation they were made against.
    generation: int = 0
    #: Registration parameters (block size, backend, stats model, ...)
    #: replayed by the catalog when re-splitting.
    register_params: Dict[str, object] = field(default_factory=dict)
    #: The dataset's write barrier: engine-level mutations hold it for
    #: route+fanout, and a re-split holds it for its whole
    #: collect-swap-rebuild-rewire window — so a write can neither land
    #: in shards that are about to be retired and miss the collected
    #: snapshot (it would be silently lost), nor route against a
    #: half-swapped layout or freshly-built indexes whose mutation
    #: hooks are not wired yet.  Re-entrant so the rebalance manager
    #: can hold it around the catalog re-split *plus* its listeners.
    write_lock: threading.RLock = field(default_factory=threading.RLock,
                                        repr=False, compare=False)

    @property
    def dimension(self) -> int:
        """Ambient dimension of the stored points."""
        return int(self.points.shape[1])

    @property
    def size(self) -> int:
        """Number of stored points across every shard (the paper's N)."""
        return int(self.points.shape[0])

    @property
    def live_size(self) -> int:
        """Current point count across shards, observed mutations included."""
        return self.stats.size if self.stats is not None else self.size

    @property
    def num_shards(self) -> int:
        """The configured shard count K (empty shards included)."""
        return self.router.num_shards

    def nonempty_shards(self) -> List[Shard]:
        """Shards that actually hold points (and therefore indexes)."""
        return [shard for shard in self.shards if not shard.is_empty]

    def estimate_selectivity(self, constraint: LinearConstraint) -> float:
        """Fraction of all points expected to satisfy ``constraint``."""
        if self.stats is not None:
            return self.stats.estimate_selectivity(constraint)
        return selectivity_on_sample(self.sample, self.dimension, constraint)

    def estimate_output(self, constraint: LinearConstraint) -> int:
        """Expected number of reported points across shards (the paper's T)."""
        if self.stats is not None:
            return self.stats.estimate_output(constraint)
        return int(round(self.estimate_selectivity(constraint) * self.size))

    def shard_live_sizes(self) -> List[int]:
        """Current per-shard point counts, mutations included.

        Uses each shard's planning replica and its live size (replicas
        hold identical data), so post-insert skew is visible — the
        build-time ``shards[i].size`` is not.
        """
        return [0 if shard.is_empty else shard.planning_dataset().live_size
                for shard in self.shards]

    def relevant_shards(self, constraint: LinearConstraint) -> List[Shard]:
        """The shards a query must visit (box pruning unless disabled)."""
        if not self.prune:
            return self.nonempty_shards()
        return [shard for shard in self.shards
                if shard.may_contain(constraint)]

    def relevant_shards_conjunction(
            self, conjunction: ConstraintConjunction) -> List[Shard]:
        """Shards a conjunction must visit (each conjunct can prune)."""
        if not self.prune:
            return self.nonempty_shards()
        return [shard for shard in self.shards
                if shard.may_contain_conjunction(conjunction)]

    @property
    def replicas_per_shard(self) -> int:
        """The replication factor (max replicas over non-empty shards)."""
        return max((shard.num_replicas for shard in self.shards), default=0)

    def describe(self) -> Dict[str, object]:
        """JSON-friendly sharding summary (persisted by benchmarks)."""
        return {
            "name": self.name,
            "router": self.router.describe(),
            "shard_sizes": [shard.size for shard in self.shards],
            "replicas_per_shard": self.replicas_per_shard,
            "generation": self.generation,
        }

    def __repr__(self) -> str:
        return "ShardedDataset(name=%r, N=%d, %r)" % (
            self.name, self.size, self.router)


# ----------------------------------------------------------------------
# rebalancing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RebalanceReport:
    """What one re-split did (recorded in EngineStats and benchmarks)."""

    dataset: str
    #: "manual" (QueryEngine.rebalance) or "auto" (threshold trigger).
    reason: str
    #: The sharded dataset's generation after the re-split.
    generation: int
    old_sizes: Tuple[int, ...]
    new_sizes: Tuple[int, ...]
    imbalance_before: float
    imbalance_after: float
    drift_before: float

    def summary(self) -> Dict[str, object]:
        """JSON-friendly view (EngineStats keeps these as events)."""
        return {
            "dataset": self.dataset,
            "reason": self.reason,
            "generation": self.generation,
            "old_sizes": list(self.old_sizes),
            "new_sizes": list(self.new_sizes),
            "imbalance_before": self.imbalance_before,
            "imbalance_after": self.imbalance_after,
            "drift_before": self.drift_before,
        }


class RebalanceManager:
    """Detects shard skew and re-splits range shards at fresh quantiles.

    Range shards are split at *build-time* quantiles; inserts through a
    shard's dynamic index land wherever the caller sends them, so the
    split drifts: one shard bloats (its I/O share and its histogram skew
    grow) and its bounding box goes stale, which disables pruning for
    every later query.  The manager watches two signals, both fed by the
    engine's mutation hooks:

    * **size imbalance** — the largest shard's live size over the fair
      share ``N/K``;
    * **statistics drift** — the worst per-shard selectivity-model
      ``drift()`` (equi-depth bucket skew for histogram models).

    When either exceeds ``threshold`` (after at least ``min_mutations``
    mutations), :meth:`maybe_rebalance` re-splits: live points are
    collected from every shard's planning replica, fresh quantile
    boundaries are computed, per-shard stores / index suites / models are
    rebuilt through the catalog, and the registered listeners run (the
    engine wires result-cache invalidation and mutation-hook re-wiring
    there).  Plans made against the old layout are invalidated by the
    dataset's bumped ``generation``.

    Only range-sharded datasets rebalance: hash routing has no
    boundaries to move.
    """

    def __init__(self, catalog: "Catalog",
                 stats: Optional["EngineStats"] = None,
                 threshold: float = 2.0, min_mutations: int = 64):
        if threshold <= 1.0:
            raise ValueError("threshold must exceed 1.0 (1.0 means "
                             "perfectly balanced), got %r" % threshold)
        if min_mutations < 1:
            raise ValueError("min_mutations must be >= 1, got %r"
                             % min_mutations)
        self._catalog = catalog
        self._stats = stats
        self.threshold = threshold
        self.min_mutations = min_mutations
        self._mutations: Dict[str, int] = {}
        self._listeners: List[Callable[[str, RebalanceReport], None]] = []

    def add_listener(
            self,
            listener: Callable[[str, RebalanceReport], None]) -> None:
        """Run ``listener(dataset_name, report)`` after every re-split."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # skew signals
    # ------------------------------------------------------------------
    def note_mutation(self, dataset_name: str) -> None:
        """Count one mutation against a dataset (fed by engine hooks)."""
        self._mutations[dataset_name] = \
            self._mutations.get(dataset_name, 0) + 1

    def mutations(self, dataset_name: str) -> int:
        """Mutations observed since the last re-split (or registration)."""
        return self._mutations.get(dataset_name, 0)

    @staticmethod
    def _imbalance(sizes: Sequence[int]) -> float:
        """Largest shard over the fair share (1.0 = perfectly balanced)."""
        total = sum(sizes)
        if total <= 0 or not sizes:
            return 1.0
        return max(sizes) / (total / len(sizes))

    def skew(self, dataset_name: str) -> Dict[str, float]:
        """The dataset's current skew signals (imbalance, drift, mutations)."""
        sharded = self._catalog.sharded(dataset_name)
        sizes = sharded.shard_live_sizes()
        drift = 0.0
        for shard in sharded.nonempty_shards():
            model = shard.planning_dataset().stats
            if model is not None:
                drift = max(drift, model.drift())
        return {
            "imbalance": self._imbalance(sizes),
            "drift": drift,
            "mutations": float(self.mutations(dataset_name)),
        }

    def should_rebalance(self, dataset_name: str) -> bool:
        """True when skew warrants a re-split (cheap; no I/Os)."""
        if not self._catalog.is_sharded(dataset_name):
            return False
        sharded = self._catalog.sharded(dataset_name)
        if sharded.router.scheme != "range":
            return False
        if self.mutations(dataset_name) < self.min_mutations:
            return False
        signals = self.skew(dataset_name)
        return (signals["imbalance"] >= self.threshold
                or signals["drift"] >= self.threshold)

    # ------------------------------------------------------------------
    # the re-split
    # ------------------------------------------------------------------
    def rebalance(self, dataset_name: str,
                  reason: str = "manual") -> RebalanceReport:
        """Re-split a range-sharded dataset at fresh quantiles now.

        Collects live points (mutations included) from every shard's
        planning replica, rebuilds routers / stores / index suites /
        statistics through the catalog, resets the mutation counter, and
        notifies the listeners (cache invalidation, hook re-wiring).
        """
        before = self.skew(dataset_name)
        sharded = self._catalog.sharded(dataset_name)
        # Hold the dataset's write barrier across the re-split AND the
        # listeners: the engine re-wires its mutation hooks onto the new
        # generation's indexes in a listener, and a write slipping in
        # between the swap and that re-wiring would mutate hook-less
        # indexes — stored but invisible to planning, statistics and
        # cache invalidation.  (Re-entrant: the catalog re-split
        # acquires the same lock inside.)
        with sharded.write_lock:
            outcome = self._catalog.resplit_sharded_dataset(dataset_name)
            self._mutations[dataset_name] = 0
            report = RebalanceReport(
                dataset=dataset_name,
                reason=reason,
                generation=int(outcome["generation"]),
                old_sizes=tuple(outcome["old_sizes"]),
                new_sizes=tuple(outcome["new_sizes"]),
                imbalance_before=before["imbalance"],
                imbalance_after=self.skew(dataset_name)["imbalance"],
                drift_before=before["drift"],
            )
            for listener in self._listeners:
                listener(dataset_name, report)
        if self._stats is not None:
            self._stats.note_rebalance(report.summary())
        return report

    def maybe_rebalance(self,
                        dataset_name: str) -> Optional[RebalanceReport]:
        """Re-split iff the skew signals cross the threshold."""
        if self.should_rebalance(dataset_name):
            return self.rebalance(dataset_name, reason="auto")
        return None
