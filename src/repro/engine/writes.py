"""The engine-level write path: routed inserts with replica write-fanout.

Reads route through the planner; writes route through the *shard
attribute*.  :class:`WritePath` is the mutation twin of the execution
core: given ``insert(dataset, point)`` / ``delete(dataset, point)`` it

* **routes** the point to its shard via the dataset's
  :class:`~repro.engine.sharding.ShardRouter` — including range shards
  whose boundaries moved under rebalancing: the router object is swapped
  at every re-split, and routing happens under the dataset's *write
  barrier* (:attr:`~repro.engine.sharding.ShardedDataset.write_lock`),
  which a re-split holds for its whole collect-swap-rebuild window, so a
  write always sees a complete layout — never one mid-swap, and never
  one whose live points were already collected (the write would be
  silently dropped from the rebuilt shards);
* **fans the mutation out to every replica** of the target shard, so the
  copies stay byte-identical and reads keep spreading over all of them
  (no replica pinning).  The fan-out is atomic-enough: secondaries are
  written first and the primary last, a pre-mutation veto (or any
  failure) on a later replica **rolls the already-applied replicas back
  via the inverse operation**, and the one-per-logical-mutation hooks —
  statistics reservoir/histogram updates, rebalance skew counters,
  result-cache invalidation, shard-box staleness — are wired to the
  primary alone, so they fire exactly once and only when every replica
  holds the write;
* **accounts** the write: per-replica I/Os are measured off each store,
  and per-dataset write counts and latency percentiles land in
  :class:`~repro.engine.metrics.EngineStats`.

Plain (unsharded) datasets take the same path minus routing: the
mutation applies to the dataset's single mutation-capable index.  A
dataset whose suite was built statically (no ``"dynamic"`` kind) rejects
writes with a clear error — the catalog resolves the target index via
:meth:`~repro.engine.catalog.Catalog.mutable_index_of`.

Each replica's application happens under that replica's store lock, the
same lock the executors hold around queries, so concurrent
``serve_async`` reads observe each replica either before or after a
mutation — never mid-write.

Writes to one sharded dataset serialize on its write barrier, even when
they target disjoint shards — a deliberate correctness-first trade-off
(a mutation is a handful of amortised I/Os, so the barrier is cheap
next to the reads it protects).  Sharding the barrier — shared mode for
writers, exclusive for re-splits, with the per-shard fan-out lock doing
the serialization — is the upgrade path if write throughput ever
becomes the bottleneck.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import repro.engine.tracing as tracing
from repro.engine.catalog import Catalog, Dataset
from repro.engine.metrics import EngineStats
from repro.engine.sharding import Shard

#: Amortised I/O estimate charged per replica application when admission
#: control prices a write before it runs: one blocked buffer/tombstone
#: append plus its share of the eventual rebuild.  Settled against the
#: observed I/Os afterwards, like read estimates are.
WRITE_IOS_PER_REPLICA = 2.0


@dataclass(frozen=True)
class MutationResult:
    """One applied engine-level mutation (what ``insert``/``delete`` return)."""

    dataset: str
    #: "insert" or "delete".
    op: str
    point: Tuple[float, ...]
    #: False only for a delete of an absent point (a no-op).
    applied: bool
    #: Shard the router chose (-1 for an unsharded dataset).
    shard_id: int
    #: Replicas the mutation was applied to (1 for unsharded datasets).
    replicas: int
    #: Block transfers charged across every replica application.
    ios: int
    latency_s: float
    #: The sharded dataset's re-split generation the write was routed
    #: against (0 for unsharded datasets).
    generation: int


class WritePath:
    """Routes engine-level mutations and fans them out to replicas.

    Parameters
    ----------
    catalog:
        The engine's catalog (owns datasets, shards and their indexes).
    stats:
        Optional :class:`EngineStats` sink for per-dataset write counters
        and latency percentiles.
    invalidate:
        Optional ``invalidate(dataset_name)`` callback (the execution
        core's result-cache flush).  A *successful* mutation invalidates
        through the primary replica's mutation hooks; this callback
        covers the **aborted** fan-out, whose rollback may have raced a
        concurrent read against an already-mutated secondary — the
        cached answer would otherwise serve the rolled-back point
        forever.
    """

    def __init__(self, catalog: Catalog,
                 stats: Optional[EngineStats] = None,
                 invalidate=None):
        self._catalog = catalog
        self._stats = stats
        self._invalidate = invalidate
        self._materialize_listeners: List = []
        self._write_listeners: List = []

    def add_write_listener(self, listener) -> None:
        """Subscribe ``listener(dataset, shard_id, op, point, applied)``
        to every committed engine-level mutation.

        Fired after the replica fan-out applied (sharded writes: still
        under the dataset's write barrier, so listeners observe
        mutations in apply order — the cluster coordinator's write log
        depends on that).  Aborted fan-outs (rolled back) do not fire;
        ``shard_id`` is -1 for unsharded datasets.
        """
        self._write_listeners.append(listener)

    def add_materialize_listener(self, listener) -> None:
        """Subscribe ``listener(dataset_name, shard_id)`` to lazy builds.

        Fired (under the dataset's write barrier) right after an insert
        routed into an empty shard materializes its replicas and index
        suite — the engine facade uses it to wire its mutation hooks onto
        the freshly built indexes before the insert is applied.
        """
        self._materialize_listeners.append(listener)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def insert(self, dataset_name: str, point) -> MutationResult:
        """Insert one point, routed by shard attribute, on every replica."""
        return self._mutate(dataset_name, point, "insert")

    def delete(self, dataset_name: str, point) -> MutationResult:
        """Delete one point (one copy) everywhere it is replicated.

        Returns a result with ``applied=False`` when the point was not
        present — a no-op, mirroring the dynamic index's contract.
        """
        return self._mutate(dataset_name, point, "delete")

    def estimate_ios(self, dataset_name: str, point=None) -> float:
        """Predicted write cost, for admission control (pure arithmetic).

        With a ``point`` the routed shard's actual replica count prices
        the fan-out; without one the dataset's replication factor is the
        (upper-bound) width.
        """
        if not self._catalog.is_sharded(dataset_name):
            self._catalog.dataset(dataset_name)   # raise on unknown names
            return WRITE_IOS_PER_REPLICA
        sharded = self._catalog.sharded(dataset_name)
        if point is not None:
            record = tuple(float(c) for c in point)
            shard = sharded.shards[sharded.router.shard_of(record)]
            if not shard.is_empty:
                return WRITE_IOS_PER_REPLICA * shard.num_replicas
        return WRITE_IOS_PER_REPLICA * max(1, sharded.replicas_per_shard)

    # ------------------------------------------------------------------
    # the mutation
    # ------------------------------------------------------------------
    def _mutate(self, dataset_name: str, point, op: str) -> MutationResult:
        started = time.perf_counter()
        with tracing.span("write.mutate", dataset=dataset_name,
                          op=op) as span:
            if self._catalog.is_sharded(dataset_name):
                result = self._mutate_sharded(dataset_name, point, op,
                                              started)
            else:
                result = self._mutate_plain(dataset_name, point, op,
                                            started)
            if span.enabled:
                span.set_many({
                    "applied": result.applied,
                    "shard_id": result.shard_id,
                    "replicas": result.replicas,
                    "ios": result.ios,
                    "generation": result.generation,
                })
        if self._stats is not None:
            self._stats.note_write(result.dataset, result.op,
                                   applied=result.applied, ios=result.ios,
                                   latency_s=result.latency_s,
                                   replicas=result.replicas)
        return result

    def _mutate_plain(self, dataset_name: str, point, op: str,
                      started: float) -> MutationResult:
        dataset = self._catalog.dataset(dataset_name)
        record = self._as_record(point, dataset)
        index = Catalog.mutable_index_of(dataset)
        with dataset.store.lock:
            before = dataset.store.stats.snapshot()
            applied = self._apply(index, op, record)
            delta = dataset.store.stats.delta(before)
        for listener in self._write_listeners:
            listener(dataset_name, -1, op, record, applied)
        return MutationResult(
            dataset=dataset_name, op=op, point=record, applied=applied,
            shard_id=-1, replicas=1,
            ios=delta.total + delta.cache_hits,
            latency_s=time.perf_counter() - started, generation=0)

    def _mutate_sharded(self, dataset_name: str, point, op: str,
                        started: float) -> MutationResult:
        sharded = self._catalog.sharded(dataset_name)
        record = self._as_record(point, sharded)
        # The dataset's write barrier serializes this route+fanout against
        # re-splits (which hold it across their collect-swap-rebuild
        # window): routing always uses the *current* generation's router
        # and shard list, and the write can never land in shards whose
        # live points a concurrent re-split already collected — that
        # write would be missing from the rebuilt layout.
        with sharded.write_lock:
            generation = sharded.generation
            shard = sharded.shards[sharded.router.shard_of(record)]
            if shard.is_empty:
                if op == "delete":
                    # An empty shard holds nothing, so the point is
                    # absent by definition: the documented no-op, not an
                    # error (blind deletes must behave uniformly however
                    # the router placed the key).
                    return MutationResult(
                        dataset=dataset_name, op=op, point=record,
                        applied=False, shard_id=shard.shard_id,
                        replicas=0, ios=0,
                        latency_s=time.perf_counter() - started,
                        generation=generation)
                # Lazy materialization: a range shard that received no
                # build points grows its replicas, stores and index suite
                # on first insert (still under the write barrier), so
                # live ingest into a fresh shard works instead of
                # erroring.  Listeners (the engine's hook wiring) run
                # before the fan-out applies, so statistics and staleness
                # hooks observe this very insert.
                shard = self._catalog.materialize_shard(dataset_name,
                                                        shard.shard_id)
                for listener in self._materialize_listeners:
                    listener(dataset_name, shard.shard_id)
            with shard.write_fanout():
                applied, ios = self._apply_fanout(dataset_name, shard, op,
                                                  record)
            for listener in self._write_listeners:
                listener(dataset_name, shard.shard_id, op, record, applied)
        return MutationResult(
            dataset=dataset_name, op=op, point=record, applied=applied,
            shard_id=shard.shard_id, replicas=shard.num_replicas,
            ios=ios, latency_s=time.perf_counter() - started,
            generation=generation)

    def _apply_fanout(self, dataset_name: str, shard: Shard, op: str,
                      record: Tuple[float, ...]) -> Tuple[bool, int]:
        """Apply one mutation to every replica, or to none.

        Secondaries first, primary last: the primary carries the
        one-per-logical-mutation hooks (statistics, cache invalidation,
        box staleness), so they fire only once every secondary already
        holds the write.  A failure part-way rolls the applied replicas
        back via the inverse operation, restores their ``mutated``
        flags, flushes the dataset's result cache (a concurrent read may
        have cached an answer off an already-mutated secondary), and
        re-raises the original error — annotated with the I/Os the
        aborted attempt really spent, so admission can charge them.
        """
        order = shard.replicas[1:] + shard.replicas[:1]
        mutated_flags = [replica.mutated for replica in shard.replicas]
        applied: List[Tuple[Dataset, object, bool]] = []
        total_ios = 0
        fanout_span = tracing.current_span().child(
            "write.fanout", shard_id=shard.shard_id,
            replicas=len(order))
        try:
            for child in order:
                index = Catalog.mutable_index_of(child)
                with child.store.lock:
                    before = child.store.stats.snapshot()
                    outcome = self._apply(index, op, record)
                    delta = child.store.stats.delta(before)
                total_ios += delta.total + delta.cache_hits
                applied.append((child, index, outcome))
                fanout_span.child(
                    "write.replica", replica=child.name,
                    ios=delta.total + delta.cache_hits,
                    applied=outcome).finish()
        except Exception as exc:
            rollback_span = fanout_span.child(
                "write.rollback", replicas_applied=len(applied),
                cause="%s: %s" % (type(exc).__name__, exc))
            ios_before_rollback = total_ios
            total_ios += self._rollback(applied, op, record, exc)
            rollback_span.set("ios", total_ios - ios_before_rollback)
            rollback_span.finish()
            fanout_span.set("error", "aborted")
            fanout_span.finish()
            # The apply (and its inverse) flagged secondaries mutated;
            # the data is back to the pre-write state, so the flags are
            # restored too (inverse ops run after this would re-set them).
            for replica, flag in zip(shard.replicas, mutated_flags):
                replica.mutated = flag
            if self._invalidate is not None:
                # The primary's invalidation hook never fired (the
                # primary was never written): flush any answer a
                # concurrent read cached off a mid-fanout secondary.
                self._invalidate(dataset_name)
            try:
                exc.write_ios_observed = total_ios
            except AttributeError:  # exceptions with __slots__
                pass
            raise
        # Replicas are identical, so the outcomes agree; report the
        # primary's (it ran last).
        fanout_span.set("ios", total_ios)
        fanout_span.finish()
        return applied[-1][2], total_ios

    def _rollback(self, applied, op: str, record: Tuple[float, ...],
                  cause: Exception) -> int:
        """Undo partially-applied replicas with the inverse operation.

        Returns the block transfers the rollback itself charged (the
        aborted write's admission settlement includes them).
        """
        inverse = "delete" if op == "insert" else "insert"
        total_ios = 0
        for child, index, outcome in reversed(applied):
            if not outcome:
                continue          # a no-op delete needs no inverse
            try:
                with child.store.lock:
                    before = child.store.stats.snapshot()
                    self._apply(index, inverse, record)
                    delta = child.store.stats.delta(before)
                total_ios += delta.total + delta.cache_hits
            except Exception as rollback_exc:
                raise RuntimeError(
                    "write-fanout rollback failed on replica %r (while "
                    "undoing a fan-out aborted by: %s); its copy may "
                    "have diverged from its siblings"
                    % (child.name, cause)) from rollback_exc
        return total_ios

    @staticmethod
    def _apply(index, op: str, record: Tuple[float, ...]) -> bool:
        """One replica application; True unless a delete found nothing."""
        if op == "insert":
            index.insert(record)
            return True
        if op == "delete":
            return bool(index.delete(record))
        raise ValueError("unknown mutation op %r (expected 'insert' or "
                         "'delete')" % (op,))

    @staticmethod
    def _as_record(point, entry) -> Tuple[float, ...]:
        record = tuple(float(c) for c in point)
        if len(record) != entry.dimension:
            raise ValueError(
                "point dimension %d does not match dataset %r dimension %d"
                % (len(record), entry.name, entry.dimension))
        return record
