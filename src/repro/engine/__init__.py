"""The query-serving subsystem: catalog, planner, executor and metrics.

The paper gives several structures with different space/query trade-offs
for the *same* problem; a serving system needs to pick among them per
query.  This package is that layer:

* :class:`~repro.engine.catalog.Catalog` — registers datasets, bulk-builds
  any combination of :class:`~repro.core.interface.ExternalIndex`
  implementations over a shared store, and tracks build cost;
* :class:`~repro.engine.planner.Planner` — estimates each candidate's
  query I/Os from the paper's bounds (via ``estimated_query_ios``),
  calibrated against observed history, and routes to the cheapest;
* :class:`~repro.engine.executor.BatchExecutor` — batch serving with
  constraint dedup, an LRU result cache (with invalidation hooks for
  dynamic indexes), warm buffer pools, a thread-pool path for concurrent
  read-only tenants, and per-shard query fan-out;
* :mod:`~repro.engine.sharding` — hash/range shard routers and
  :class:`~repro.engine.sharding.ShardedDataset` (per-shard stores and
  index suites with bounding-box pruning);
* :class:`~repro.engine.calibration.CalibrationStore` — JSON persistence
  of the planner's learned constants, with staleness age-out;
* :class:`~repro.engine.metrics.EngineStats` — latency percentiles, I/O
  totals, cache hit rates and the plan distribution;
* :class:`~repro.engine.engine.QueryEngine` — the facade wiring them up.
"""

from repro.engine.calibration import CalibrationStore
from repro.engine.catalog import (
    BuildRecord,
    Catalog,
    Dataset,
    INDEX_KINDS,
    IndexKind,
    default_suite,
)
from repro.engine.engine import QueryEngine
from repro.engine.executor import (
    BatchExecutor,
    BatchResult,
    ExecutedQuery,
    WorkloadResult,
    constraint_key,
)
from repro.engine.metrics import EngineStats, ServedQueryRecord
from repro.engine.planner import (
    AnyPlan,
    CandidateEstimate,
    Plan,
    Planner,
    ShardedPlan,
)
from repro.engine.sharding import (
    HashShardRouter,
    RangeShardRouter,
    Shard,
    ShardedDataset,
    ShardRouter,
    make_router,
)

__all__ = [
    "AnyPlan",
    "BatchExecutor",
    "BatchResult",
    "BuildRecord",
    "CalibrationStore",
    "CandidateEstimate",
    "Catalog",
    "Dataset",
    "EngineStats",
    "ExecutedQuery",
    "HashShardRouter",
    "INDEX_KINDS",
    "IndexKind",
    "Plan",
    "Planner",
    "QueryEngine",
    "RangeShardRouter",
    "ServedQueryRecord",
    "Shard",
    "ShardRouter",
    "ShardedDataset",
    "ShardedPlan",
    "WorkloadResult",
    "constraint_key",
    "default_suite",
    "make_router",
]
