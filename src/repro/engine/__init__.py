"""The query-serving subsystem: catalog, planner, executor and metrics.

The paper gives several structures with different space/query trade-offs
for the *same* problem; a serving system needs to pick among them per
query.  This package is that layer:

* :class:`~repro.engine.catalog.Catalog` — registers datasets, bulk-builds
  any combination of :class:`~repro.core.interface.ExternalIndex`
  implementations over a shared store, and tracks build cost;
* :class:`~repro.engine.planner.Planner` — estimates each candidate's
  query I/Os from the paper's bounds (via ``estimated_query_ios``),
  calibrated against observed history, and routes to the cheapest;
* :class:`~repro.engine.executor.ExecutionCore` — the shared data path
  (plan execution, sharded fan-out with replica picking, calibration
  feedback, LRU result cache with invalidation hooks for dynamic
  indexes) both executors run through;
* :class:`~repro.engine.executor.BatchExecutor` — synchronous batch
  serving with constraint dedup, warm buffer pools and a thread-pool
  path for concurrent read-only tenants;
* :class:`~repro.engine.writes.WritePath` — the engine-level mutation
  path: inserts/deletes routed by shard attribute and fanned out to
  every replica (rollback on veto), keeping replicas identical so reads
  stay free to spread after writes;
* :mod:`~repro.engine.serving` — the async serving subsystem: the
  :class:`~repro.engine.serving.AsyncExecutor` scheduler over a
  prioritized deadline queue, per-tenant token-bucket admission control
  (queue/reject/degrade), and the least-loaded replica picker;
* :mod:`~repro.engine.sharding` — hash/range shard routers,
  :class:`~repro.engine.sharding.ShardedDataset` (per-shard replicated
  stores and index suites with bounding-box pruning) and the
  :class:`~repro.engine.sharding.RebalanceManager` (skew-triggered
  quantile re-splits after dynamic inserts);
* :mod:`~repro.engine.stats` — pluggable selectivity models behind
  every ``expected_output`` estimate: the uniform sample scan and
  directional equi-depth histograms, per dataset and per shard;
* :class:`~repro.engine.calibration.CalibrationStore` — JSON persistence
  of the planner's learned constants, with staleness age-out;
* :class:`~repro.engine.metrics.EngineStats` — latency percentiles, I/O
  totals, cache hit rates and the plan distribution, backed by a
  labelled :class:`~repro.engine.obs.MetricsRegistry` (Prometheus text
  on ``GET /metrics``);
* :mod:`~repro.engine.tracing` — request-scoped span trees across
  planner, admission, executor fan-out and block I/O, with a bounded
  finished-trace registry and a slow/degraded-query log
  (:class:`~repro.engine.tracing.Tracer`; no-op singletons when off);
* :class:`~repro.engine.engine.QueryEngine` — the facade wiring them up.
"""

from repro.engine.calibration import CalibrationStore
from repro.engine.catalog import (
    BuildRecord,
    Catalog,
    Dataset,
    INDEX_KINDS,
    IndexKind,
    default_suite,
)
from repro.engine.engine import QueryEngine
from repro.engine.executor import (
    BatchExecutor,
    BatchResult,
    ExecutedQuery,
    ExecutionCore,
    WorkloadResult,
    constraint_key,
)
from repro.engine.metrics import EngineStats, ServedQueryRecord
from repro.engine.obs import MetricsRegistry, render_prometheus
from repro.engine.tracing import (
    NULL_SPAN,
    Span,
    Trace,
    Tracer,
    current_span,
    current_trace_id,
)
from repro.engine.serving import (
    AdmissionController,
    AsyncExecutor,
    LeastLoadedReplicaPicker,
    PriorityRequestQueue,
    ServeResult,
    ServedRequest,
    ServingRequest,
    TenantBudget,
    TokenBucket,
)
from repro.engine.planner import (
    AnyPlan,
    CandidateEstimate,
    Plan,
    Planner,
    ShardedPlan,
)
from repro.engine.sharding import (
    HashShardRouter,
    RangeShardRouter,
    RebalanceManager,
    RebalanceReport,
    Shard,
    ShardedDataset,
    ShardRouter,
    make_router,
)
from repro.engine.stats import (
    ConformalCalibrator,
    EnsembleModel,
    EquiDepthHistogram,
    HistogramModel,
    SelectivityModel,
    UniformSampleModel,
    make_model,
)
from repro.engine.writes import MutationResult, WritePath

__all__ = [
    "AdmissionController",
    "AnyPlan",
    "AsyncExecutor",
    "BatchExecutor",
    "BatchResult",
    "BuildRecord",
    "CalibrationStore",
    "CandidateEstimate",
    "Catalog",
    "ConformalCalibrator",
    "Dataset",
    "EngineStats",
    "EnsembleModel",
    "EquiDepthHistogram",
    "ExecutedQuery",
    "ExecutionCore",
    "HashShardRouter",
    "HistogramModel",
    "INDEX_KINDS",
    "IndexKind",
    "LeastLoadedReplicaPicker",
    "MetricsRegistry",
    "MutationResult",
    "NULL_SPAN",
    "Plan",
    "Planner",
    "PriorityRequestQueue",
    "QueryEngine",
    "RangeShardRouter",
    "RebalanceManager",
    "RebalanceReport",
    "SelectivityModel",
    "ServeResult",
    "ServedQueryRecord",
    "ServedRequest",
    "ServingRequest",
    "Shard",
    "ShardRouter",
    "ShardedDataset",
    "ShardedPlan",
    "Span",
    "TenantBudget",
    "TokenBucket",
    "Trace",
    "Tracer",
    "UniformSampleModel",
    "WorkloadResult",
    "WritePath",
    "constraint_key",
    "current_span",
    "current_trace_id",
    "default_suite",
    "make_model",
    "make_router",
    "render_prometheus",
]
