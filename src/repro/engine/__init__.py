"""The query-serving subsystem: catalog, planner, executor and metrics.

The paper gives several structures with different space/query trade-offs
for the *same* problem; a serving system needs to pick among them per
query.  This package is that layer:

* :class:`~repro.engine.catalog.Catalog` — registers datasets, bulk-builds
  any combination of :class:`~repro.core.interface.ExternalIndex`
  implementations over a shared store, and tracks build cost;
* :class:`~repro.engine.planner.Planner` — estimates each candidate's
  query I/Os from the paper's bounds (via ``estimated_query_ios``),
  calibrated against observed history, and routes to the cheapest;
* :class:`~repro.engine.executor.BatchExecutor` — batch serving with
  constraint dedup, an LRU result cache, warm buffer pools, and a
  thread-pool path for concurrent read-only tenants;
* :class:`~repro.engine.metrics.EngineStats` — latency percentiles, I/O
  totals, cache hit rates and the plan distribution;
* :class:`~repro.engine.engine.QueryEngine` — the facade wiring them up.
"""

from repro.engine.catalog import (
    BuildRecord,
    Catalog,
    Dataset,
    INDEX_KINDS,
    IndexKind,
    default_suite,
)
from repro.engine.engine import QueryEngine
from repro.engine.executor import (
    BatchExecutor,
    BatchResult,
    ExecutedQuery,
    WorkloadResult,
    constraint_key,
)
from repro.engine.metrics import EngineStats, ServedQueryRecord
from repro.engine.planner import CandidateEstimate, Plan, Planner

__all__ = [
    "BatchExecutor",
    "BatchResult",
    "BuildRecord",
    "CandidateEstimate",
    "Catalog",
    "Dataset",
    "EngineStats",
    "ExecutedQuery",
    "INDEX_KINDS",
    "IndexKind",
    "Plan",
    "Planner",
    "QueryEngine",
    "ServedQueryRecord",
    "WorkloadResult",
    "constraint_key",
    "default_suite",
]
