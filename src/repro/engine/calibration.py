"""Persisting the planner's learned constants across restarts.

The planner's calibration factors are learned from served traffic; a
restarted engine that starts from the bounds' implicit constant 1 pays a
warm-up period of misrouted queries.  :class:`CalibrationStore` wires
:meth:`~repro.engine.planner.Planner.export_calibration` /
:meth:`~repro.engine.planner.Planner.load_calibration` to a JSON file:

* :meth:`save` writes the exported state atomically (temp file + rename);
* :meth:`load` reads it back, dropping entries whose last observation is
  older than ``max_age_s`` — constants learned from last month's traffic
  (or a since-rebuilt index) age out instead of steering routing forever.

The engine facade loads the file on startup when constructed with a
``calibration_path`` and exposes :meth:`~repro.engine.engine.QueryEngine.
save_calibration` for shutdown hooks / periodic checkpoints.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, Optional

#: Default staleness horizon: a week of wall-clock time.
DEFAULT_MAX_AGE_S = 7 * 24 * 3600.0

#: Schema marker written into every calibration file.
_FORMAT_VERSION = 1


class CalibrationStore:
    """A JSON file holding planner calibration, with staleness age-out.

    Parameters
    ----------
    path:
        Where the JSON file lives.  The parent directory is created on
        first :meth:`save`.
    max_age_s:
        Entries whose ``updated_at`` is older than this many seconds at
        :meth:`load` time are discarded (0 or negative keeps everything).
    """

    def __init__(self, path: str, max_age_s: float = DEFAULT_MAX_AGE_S):
        self.path = path
        self.max_age_s = max_age_s

    def load(self, now: Optional[float] = None) -> Dict[str, Dict[str, object]]:
        """Read the persisted state, dropping stale entries.

        Returns an empty dict (never raises) for a missing, unreadable or
        malformed file — a cold start is always acceptable.
        """
        try:
            with open(self.path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return {}
        if not isinstance(payload, dict):
            return {}
        entries = payload.get("entries", {})
        if not isinstance(entries, dict):
            return {}
        now = time.time() if now is None else now
        fresh: Dict[str, Dict[str, object]] = {}
        for key, entry in entries.items():
            try:
                factor = float(entry["factor"])
                observations = int(entry["observations"])
                updated_at = float(entry.get("updated_at", 0.0))
            except (KeyError, TypeError, ValueError):
                continue
            if self.max_age_s > 0 and now - updated_at > self.max_age_s:
                continue
            fresh[key] = {"factor": factor, "observations": observations,
                          "updated_at": updated_at}
        return fresh

    def save(self, state: Dict[str, Dict[str, object]],
             now: Optional[float] = None) -> None:
        """Atomically persist an exported calibration state."""
        payload = {
            "version": _FORMAT_VERSION,
            "saved_at": time.time() if now is None else now,
            "entries": state,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory,
                                         prefix=".calibration-",
                                         suffix=".json")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(temp_path, self.path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:
        return "CalibrationStore(path=%r, max_age_s=%g)" % (
            self.path, self.max_age_s)
