"""Batch execution: dedup, result caching, warm buffer pools, concurrency.

The :class:`BatchExecutor` is the engine's data path.  Given a batch of
constraints (or a whole multi-tenant workload), it:

* asks the :class:`~repro.engine.planner.Planner` for a plan per unique
  constraint and *groups* execution by chosen index, so consecutive
  queries touch the same structure and reuse its hot blocks;
* serves exact-duplicate constraints from an LRU **result cache** (a batch
  with repeated hot queries pays I/Os only for the first occurrence);
* optionally enlarges the dataset store's buffer pool for the duration of
  the batch (**warm-cache serving**) and restores it afterwards, so the
  per-query benchmarks elsewhere keep measuring the cold-cache model;
* feeds every observed (predicted, actual) I/O pair back into the
  planner's calibration and every latency/IO sample into
  :class:`~repro.engine.metrics.EngineStats`;
* can run the per-dataset batches of a workload on a thread pool —
  queries are read-only and each dataset owns its store(s), so tenants are
  served concurrently without sharing mutable block state;
* **fans out** queries against sharded datasets: each relevant shard runs
  its own per-shard plan (on the same shared thread pool — every shard
  owns its store), the per-shard I/Os are attributed individually to the
  planner's calibration and summed into the query's cost, and the fan-out
  width (shards queried / pruned) lands in the metrics;
* exposes an **invalidation hook**: dynamic indexes register a mutation
  listener through :meth:`BatchExecutor.watch_index`, so an insert into a
  :class:`~repro.core.dynamic.DynamicPartitionTreeIndex` flushes the
  dataset's result-cache entries instead of serving stale answers.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.conjunction import ConstraintConjunction, query_conjunction
from repro.core.interface import Point
from repro.engine.catalog import Catalog
from repro.engine.metrics import EngineStats, ServedQueryRecord
from repro.engine.planner import AnyPlan, Plan, Planner, ShardedPlan
from repro.geometry.primitives import LinearConstraint
from repro.io.cache import LRUCache
from repro.io.store import IOStats

ConstraintKey = Tuple


def constraint_key(constraint: LinearConstraint) -> ConstraintKey:
    """Hashable identity of a constraint (dedup and result-cache key)."""
    return (constraint.coeffs, constraint.offset)


def conjunction_key(conjunction: ConstraintConjunction) -> ConstraintKey:
    """Hashable identity of a conjunction."""
    return ("conj",
            tuple(constraint_key(c) for c in conjunction.constraints),
            tuple((h.normal, h.offset) for h in conjunction.extra_halfspaces))


@dataclass
class ExecutedQuery:
    """One served query: its answer, its plan, and what it cost."""

    dataset: str
    index_name: str
    points: List[Point]
    ios: IOStats
    latency_s: float
    estimated_ios: float
    from_result_cache: bool = False
    #: Fan-out width for sharded datasets (0 = unsharded dataset).
    shards_queried: int = 0
    #: Shards skipped by bounding-box pruning (sharded datasets only).
    shards_pruned: int = 0

    @property
    def count(self) -> int:
        """Number of reported points."""
        return len(self.points)

    @property
    def total_ios(self) -> int:
        """Block transfers charged to this query (0 on a result-cache hit)."""
        return self.ios.total


@dataclass
class BatchResult:
    """Outcome of one batch against one dataset, in request order."""

    dataset: str
    queries: List[ExecutedQuery]
    wall_seconds: float
    executed: int
    result_cache_hits: int

    @property
    def total_ios(self) -> int:
        """Block transfers charged to the whole batch."""
        return sum(query.total_ios for query in self.queries)

    @property
    def total_reported(self) -> int:
        """Points reported across the batch."""
        return sum(query.count for query in self.queries)


@dataclass
class WorkloadResult:
    """Outcome of a multi-tenant workload, in request order."""

    queries: List[ExecutedQuery]
    batches: Dict[str, BatchResult]
    wall_seconds: float

    @property
    def total_ios(self) -> int:
        """Block transfers charged to the whole workload."""
        return sum(batch.total_ios for batch in self.batches.values())

    @property
    def result_cache_hits(self) -> int:
        """Requests answered from the result cache."""
        return sum(batch.result_cache_hits for batch in self.batches.values())


class BatchExecutor:
    """Runs query batches against the catalog under the planner's routing.

    Parameters
    ----------
    catalog / planner:
        The engine's catalog and planner.
    stats:
        Optional :class:`EngineStats` sink; a private one is created when
        omitted (exposed as :attr:`stats`).
    result_cache_entries:
        Capacity of the answer LRU (0 disables result caching).
    warm_cache_blocks:
        Buffer-pool size used while serving a warm batch; the store's
        original (small) pool is restored when the batch finishes.
    fanout_workers:
        Size of the shared thread pool used for per-shard fan-out (and as
        the default for :meth:`run_workload`'s threaded path); 0 runs
        shards sequentially on the calling thread.
    """

    def __init__(self, catalog: Catalog, planner: Planner,
                 stats: Optional[EngineStats] = None,
                 result_cache_entries: int = 256,
                 warm_cache_blocks: int = 64,
                 fanout_workers: int = 8):
        self._catalog = catalog
        self._planner = planner
        self.stats = stats if stats is not None else EngineStats()
        self._results: LRUCache[Tuple[str, ConstraintKey], Tuple[str, List[Point]]]
        self._results = LRUCache(result_cache_entries)
        self._results_lock = threading.Lock()
        self._warm_cache_blocks = warm_cache_blocks
        self._fanout_workers = fanout_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _shared_pool(self) -> Optional[ThreadPoolExecutor]:
        """The lazily-created thread pool shard fan-out runs on."""
        if self._fanout_workers <= 0:
            return None
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._fanout_workers,
                    thread_name_prefix="repro-engine")
            return self._pool

    def shutdown(self) -> None:
        """Stop the shared thread pool (idempotent)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    # ------------------------------------------------------------------
    # result-cache invalidation
    # ------------------------------------------------------------------
    def watch_index(self, dataset_name: str, index: object) -> bool:
        """Subscribe to an index's mutations, if it publishes any.

        Indexes exposing ``add_mutation_listener`` (the dynamic partition
        tree) get a callback that flushes the dataset's result-cache
        entries, so updates never serve stale cached answers.  Returns
        True when a listener was registered.
        """
        subscribe = getattr(index, "add_mutation_listener", None)
        if not callable(subscribe):
            return False
        subscribe(lambda: self.invalidate_dataset(dataset_name))
        return True

    def invalidate_dataset(self, dataset_name: str) -> int:
        """Drop every cached result for one dataset; returns entries dropped."""
        with self._results_lock:
            return self._results.evict_where(
                lambda key: key[0] == dataset_name)

    # ------------------------------------------------------------------
    # single queries
    # ------------------------------------------------------------------
    def execute(self, dataset_name: str, constraint: LinearConstraint,
                clear_cache: bool = False) -> ExecutedQuery:
        """Plan and run one constraint, recording metrics and calibration.

        ``clear_cache`` requests a cold-cache measurement: it empties the
        buffer pool first *and* bypasses the result cache, so the reported
        I/Os are what the query costs from scratch.
        """
        key = (dataset_name, constraint_key(constraint))
        if not clear_cache:
            cached = self._result_cache_get(key)
            if cached is not None:
                return cached
        plan = self._planner.plan(dataset_name, constraint)
        return self._dispatch(dataset_name, constraint, plan, key,
                              clear_cache=clear_cache)

    def execute_conjunction(self, dataset_name: str,
                            conjunction: ConstraintConjunction,
                            clear_cache: bool = False) -> ExecutedQuery:
        """Plan and run a conjunction (convex-polytope query).

        As in :meth:`execute`, ``clear_cache`` requests a cold-cache
        measurement and bypasses the result cache.
        """
        key = (dataset_name, conjunction_key(conjunction))
        if not clear_cache:
            cached = self._result_cache_get(key)
            if cached is not None:
                return cached
        plan = self._planner.plan_conjunction(dataset_name, conjunction)
        if isinstance(plan, ShardedPlan):
            return self._run_sharded(dataset_name, None, plan, key,
                                     clear_cache=clear_cache,
                                     conjunction=conjunction)
        dataset = self._catalog.dataset(dataset_name)
        index = dataset.indexes[plan.index_name]
        if clear_cache:
            dataset.store.clear_cache()
        started = time.perf_counter()
        before = dataset.store.stats.snapshot()
        points = query_conjunction(index, conjunction)
        ios = dataset.store.stats.delta(before)
        latency = time.perf_counter() - started
        return self._finish(dataset_name, plan, points, ios, latency, key)

    # ------------------------------------------------------------------
    # batches and workloads
    # ------------------------------------------------------------------
    def run_batch(self, dataset_name: str,
                  constraints: Sequence[LinearConstraint],
                  warm_cache: bool = True) -> BatchResult:
        """Serve a batch against one dataset.

        Unique constraints are planned once, grouped by chosen index, and
        executed with a shared (optionally enlarged) buffer pool; repeats
        are answered from the result cache.  Sharded datasets warm every
        shard's pool and fan each constraint out to its relevant shards.
        """
        stores = self._catalog.stores(dataset_name)
        started = time.perf_counter()
        answers: Dict[ConstraintKey, ExecutedQuery] = {}
        ordered_keys = [constraint_key(c) for c in constraints]

        # Plan each unique constraint and group execution by chosen index
        # (for sharded datasets: by the plan's fan-out label).
        unique: Dict[ConstraintKey, LinearConstraint] = {}
        for constraint, key in zip(constraints, ordered_keys):
            unique.setdefault(key, constraint)
        groups: Dict[str, List[Tuple[ConstraintKey, LinearConstraint]]] = {}
        for key, constraint in unique.items():
            cached = self._result_cache_get((dataset_name, key))
            if cached is not None:
                answers[key] = cached
                continue
            plan = self._planner.plan(dataset_name, constraint)
            groups.setdefault(plan.index_name, []).append((key, constraint))

        previous_pools: List[Tuple[object, int]] = []
        if warm_cache:
            for store in stores:
                previous_pools.append((store, store.resize_cache(
                    max(store.cache_blocks, self._warm_cache_blocks))))
        try:
            for index_name in sorted(groups):
                for key, constraint in groups[index_name]:
                    # Re-plan just before running: calibration learned from
                    # earlier queries in this batch may have rerouted the
                    # constraint (the pre-pass grouping is only a locality
                    # heuristic).
                    plan = self._planner.plan(dataset_name, constraint)
                    answers[key] = self._dispatch(
                        dataset_name, constraint, plan,
                        (dataset_name, key), clear_cache=False)
        finally:
            for store, previous in previous_pools:
                store.resize_cache(previous)

        executed = sum(len(group) for group in groups.values())
        first_position: Dict[ConstraintKey, int] = {}
        for position, key in enumerate(ordered_keys):
            first_position.setdefault(key, position)
        in_order: List[ExecutedQuery] = []
        hits = 0
        for position, key in enumerate(ordered_keys):
            answer = answers[key]
            if position != first_position[key]:
                # A repeat inside the batch: serve the points resolved for
                # the first occurrence and charge nothing.
                answer = self._as_cache_hit(answer)
                self._record(answer)
            if answer.from_result_cache:
                hits += 1
            in_order.append(answer)
        return BatchResult(dataset=dataset_name, queries=in_order,
                           wall_seconds=time.perf_counter() - started,
                           executed=executed, result_cache_hits=hits)

    def run_workload(self, requests: Sequence[Tuple[str, LinearConstraint]],
                     warm_cache: bool = True, use_threads: bool = False,
                     max_workers: Optional[int] = None) -> WorkloadResult:
        """Serve a mixed-tenant workload of (dataset, constraint) requests.

        Requests are partitioned per dataset and each dataset's batch runs
        as in :meth:`run_batch` — concurrently on a thread pool when
        ``use_threads`` is set (safe: queries are read-only and each
        dataset owns its store).
        """
        started = time.perf_counter()
        per_dataset: Dict[str, List[LinearConstraint]] = {}
        positions: Dict[str, List[int]] = {}
        for position, (dataset_name, constraint) in enumerate(requests):
            per_dataset.setdefault(dataset_name, []).append(constraint)
            positions.setdefault(dataset_name, []).append(position)

        batches: Dict[str, BatchResult] = {}
        if use_threads and len(per_dataset) > 1:
            with ThreadPoolExecutor(
                    max_workers=max_workers or len(per_dataset)) as pool:
                futures = {
                    dataset_name: pool.submit(self.run_batch, dataset_name,
                                              constraints, warm_cache)
                    for dataset_name, constraints in per_dataset.items()}
                batches = {name: future.result()
                           for name, future in futures.items()}
        else:
            for dataset_name, constraints in per_dataset.items():
                batches[dataset_name] = self.run_batch(
                    dataset_name, constraints, warm_cache=warm_cache)

        ordered: List[Optional[ExecutedQuery]] = [None] * len(requests)
        for dataset_name, batch in batches.items():
            for position, answer in zip(positions[dataset_name],
                                        batch.queries):
                ordered[position] = answer
        return WorkloadResult(queries=[q for q in ordered if q is not None],
                              batches=batches,
                              wall_seconds=time.perf_counter() - started)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _dispatch(self, dataset_name: str, constraint: LinearConstraint,
                  plan: AnyPlan, cache_key: Tuple[str, ConstraintKey],
                  clear_cache: bool) -> ExecutedQuery:
        """Route a planned query down the plain or fan-out execution path."""
        if isinstance(plan, ShardedPlan):
            return self._run_sharded(dataset_name, constraint, plan,
                                     cache_key, clear_cache=clear_cache)
        return self._run_planned(dataset_name, constraint, plan, cache_key,
                                 clear_cache=clear_cache)

    def _run_sharded(self, dataset_name: str,
                     constraint: Optional[LinearConstraint],
                     plan: ShardedPlan,
                     cache_key: Tuple[str, ConstraintKey],
                     clear_cache: bool,
                     conjunction: Optional[ConstraintConjunction] = None
                     ) -> ExecutedQuery:
        """Fan a query out to the plan's relevant shards and merge.

        Each shard runs its own per-shard plan against its own store; the
        per-shard I/Os are attributed to calibration individually and
        summed into the merged answer.  Shards run concurrently on the
        shared pool when it exists (each shard owns its store, so the
        only shared state — planner calibration and metrics — is locked).
        """
        sharded = self._catalog.sharded(dataset_name)
        shards_by_id = {shard.shard_id: shard for shard in sharded.shards}
        started = time.perf_counter()

        def run_shard(item: Tuple[int, Plan]) -> Tuple[Plan, List[Point], IOStats]:
            shard_id, shard_plan = item
            dataset = shards_by_id[shard_id].dataset
            index = dataset.indexes[shard_plan.index_name]
            store = dataset.store
            if clear_cache:
                store.clear_cache()
            before = store.stats.snapshot()
            if conjunction is not None:
                points = query_conjunction(index, conjunction)
            else:
                points = index.query(constraint)
            return shard_plan, points, store.stats.delta(before)

        pool = self._shared_pool()
        if pool is not None and len(plan.shard_plans) > 1:
            outcomes = list(pool.map(run_shard, plan.shard_plans))
        else:
            outcomes = [run_shard(item) for item in plan.shard_plans]

        points: List[Point] = []
        ios = IOStats()
        for shard_plan, shard_points, shard_ios in outcomes:
            points.extend(shard_points)
            ios.merge(shard_ios)
            # Per-shard calibration feedback, keyed by the parent dataset
            # (shards share one learned constant per index kind).  As in
            # _finish, buffer-pool hits count as the cold reads they would
            # have been.
            self._planner.observe(dataset_name, shard_plan.index_name,
                                  shard_plan.chosen.model_ios,
                                  shard_ios.total + shard_ios.cache_hits)
        latency = time.perf_counter() - started
        answer = ExecutedQuery(dataset=dataset_name,
                               index_name=plan.index_name,
                               points=points, ios=ios, latency_s=latency,
                               estimated_ios=plan.estimated_ios,
                               shards_queried=plan.shards_queried,
                               shards_pruned=plan.shards_pruned)
        self._record(answer)
        with self._results_lock:
            self._results.put(cache_key, (plan.index_name, list(points)))
        return answer

    def _run_planned(self, dataset_name: str, constraint: LinearConstraint,
                     plan: Plan, cache_key: Tuple[str, ConstraintKey],
                     clear_cache: bool) -> ExecutedQuery:
        dataset = self._catalog.dataset(dataset_name)
        index = dataset.indexes[plan.index_name]
        store = dataset.store
        if clear_cache:
            store.clear_cache()
        started = time.perf_counter()
        before = store.stats.snapshot()
        points = index.query(constraint)
        ios = store.stats.delta(before)
        latency = time.perf_counter() - started
        return self._finish(dataset_name, plan, points, ios, latency,
                            cache_key)

    def _finish(self, dataset_name: str, plan: Plan, points: List[Point],
                ios: IOStats, latency: float,
                cache_key: Tuple[str, ConstraintKey]) -> ExecutedQuery:
        # Calibration models the *cold* cost of a structure (what the plan
        # estimates predict), so count buffer-pool hits as the reads they
        # would have been on a cold pool — otherwise whichever index runs
        # later in a warm batch absorbs free reads and its factor collapses
        # toward MIN_FACTOR, misrouting subsequent queries.
        self._planner.observe(dataset_name, plan.index_name,
                              plan.chosen.model_ios,
                              ios.total + ios.cache_hits)
        answer = ExecutedQuery(dataset=dataset_name,
                               index_name=plan.index_name,
                               points=points, ios=ios, latency_s=latency,
                               estimated_ios=plan.estimated_ios)
        self._record(answer)
        with self._results_lock:
            self._results.put(cache_key, (plan.index_name, list(points)))
        return answer

    def _result_cache_get(
            self, key: Tuple[str, ConstraintKey]) -> Optional[ExecutedQuery]:
        with self._results_lock:
            hit = self._results.get(key)
        if hit is None:
            return None
        index_name, points = hit
        answer = ExecutedQuery(dataset=key[0], index_name=index_name,
                               points=list(points), ios=IOStats(),
                               latency_s=0.0, estimated_ios=0.0,
                               from_result_cache=True)
        self._record(answer)
        return answer

    @staticmethod
    def _as_cache_hit(answer: ExecutedQuery) -> ExecutedQuery:
        return ExecutedQuery(dataset=answer.dataset,
                             index_name=answer.index_name,
                             points=list(answer.points), ios=IOStats(),
                             latency_s=0.0, estimated_ios=0.0,
                             from_result_cache=True)

    def _record(self, answer: ExecutedQuery) -> None:
        self.stats.record(ServedQueryRecord(
            dataset=answer.dataset,
            index_name=answer.index_name,
            latency_s=answer.latency_s,
            ios=answer.total_ios,
            reported=answer.count,
            result_cache_hit=answer.from_result_cache,
            store_cache_hits=answer.ios.cache_hits,
            shards_queried=answer.shards_queried,
            shards_pruned=answer.shards_pruned,
        ))
