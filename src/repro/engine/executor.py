"""Batch execution: dedup, result caching, warm buffer pools, concurrency.

Two layers live here:

* :class:`ExecutionCore` — the engine's shared data path.  Given a planned
  query it runs the plan (plain or sharded fan-out with replica picking),
  feeds every observed (predicted, actual) I/O pair back into the
  planner's calibration, records metrics, and maintains the LRU **result
  cache** (with the invalidation hooks dynamic indexes need).  Both the
  synchronous :class:`BatchExecutor` and the asyncio
  :class:`~repro.engine.serving.executor.AsyncExecutor` execute through
  this one core, so the two serving paths cannot drift apart.
* :class:`BatchExecutor` — the synchronous batch front-end.  Given a batch
  of constraints (or a whole multi-tenant workload), it plans each unique
  constraint, *groups* execution by chosen index so consecutive queries
  touch the same structure, serves exact duplicates from the result cache,
  optionally enlarges the stores' buffer pools for the duration of the
  batch (**warm-cache serving**), and can run the per-dataset batches of a
  workload on a thread pool.

Sharded datasets **fan out**: each relevant shard runs its own per-shard
plan on the shared thread pool, on the shard's least-loaded *replica*
(each replica owns its store), and the per-shard I/Os are attributed
individually — to the planner's calibration (merged per query under one
lock via :meth:`~repro.engine.planner.Planner.observe_many`), to the
per-replica load counters in :class:`~repro.engine.metrics.EngineStats`,
and summed into the query's cost.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import repro.engine.tracing as tracing
from repro.core.conjunction import ConstraintConjunction, query_conjunction
from repro.core.interface import Point
from repro.core.kernels import vectorized_enabled
from repro.engine.catalog import Catalog
from repro.engine.metrics import EngineStats, ServedQueryRecord, q_error
from repro.engine.planner import AnyPlan, Plan, Planner, ShardedPlan
from repro.engine.tracing import Tracer
from repro.engine.writes import MutationResult, WritePath
from repro.geometry.primitives import LinearConstraint
from repro.io.cache import LRUCache
from repro.io.store import BlockStore, IOStats

ConstraintKey = Tuple


def constraint_key(constraint: LinearConstraint) -> ConstraintKey:
    """Hashable identity of a constraint (dedup and result-cache key)."""
    return (constraint.coeffs, constraint.offset)


def conjunction_key(conjunction: ConstraintConjunction) -> ConstraintKey:
    """Hashable identity of a conjunction."""
    return ("conj",
            tuple(constraint_key(c) for c in conjunction.constraints),
            tuple((h.normal, h.offset) for h in conjunction.extra_halfspaces))


@dataclass
class ExecutedQuery:
    """One served query: its answer, its plan, and what it cost."""

    dataset: str
    index_name: str
    points: List[Point]
    ios: IOStats
    latency_s: float
    estimated_ios: float
    from_result_cache: bool = False
    #: Fan-out width for sharded datasets (0 = unsharded dataset).
    shards_queried: int = 0
    #: Shards skipped by bounding-box pruning (sharded datasets only).
    shards_pruned: int = 0
    #: Logical tenant the request belonged to ("" outside the async path).
    tenant: str = ""
    #: True when admission control served a sample-only degraded answer.
    degraded: bool = False
    #: Fraction of the dataset the answer was computed from (1.0 = exact;
    #: degraded answers carry their sample's coverage so callers can
    #: scale counts).
    sample_rate: float = 1.0
    #: For degraded answers: ``count / sample_rate`` rounded — the scaled
    #: estimate of how many points the *full* dataset would report.
    estimated_count: Optional[int] = None
    #: For degraded answers: an interval on the full count — conformal
    #: (:class:`repro.engine.stats.conformal.ConformalCalibrator`) once
    #: the dataset's calibration window is warm, else the normal
    #: approximation (:func:`repro.engine.serving.admission.
    #: scaled_count_estimate`).
    count_interval: Optional[Tuple[int, int]] = None
    #: Which machinery produced ``count_interval``: ``"conformal"`` or
    #: ``"normal_fallback"`` (None for exact answers).
    interval_source: Optional[str] = None

    @property
    def count(self) -> int:
        """Number of reported points."""
        return len(self.points)

    @property
    def total_ios(self) -> int:
        """Block transfers charged to this query (0 on a result-cache hit)."""
        return self.ios.total


@dataclass
class BatchResult:
    """Outcome of one batch against one dataset, in request order."""

    dataset: str
    queries: List[ExecutedQuery]
    wall_seconds: float
    executed: int
    result_cache_hits: int

    @property
    def total_ios(self) -> int:
        """Block transfers charged to the whole batch."""
        return sum(query.total_ios for query in self.queries)

    @property
    def total_reported(self) -> int:
        """Points reported across the batch."""
        return sum(query.count for query in self.queries)


@dataclass
class WorkloadResult:
    """Outcome of a multi-tenant workload, in request order."""

    queries: List[ExecutedQuery]
    batches: Dict[str, BatchResult]
    wall_seconds: float

    @property
    def total_ios(self) -> int:
        """Block transfers charged to the whole workload."""
        return sum(batch.total_ios for batch in self.batches.values())

    @property
    def result_cache_hits(self) -> int:
        """Requests answered from the result cache."""
        return sum(batch.result_cache_hits for batch in self.batches.values())


class ExecutionCore:
    """The shared plan-execution data path behind every executor.

    Parameters
    ----------
    catalog / planner:
        The engine's catalog and planner.
    stats:
        Optional :class:`EngineStats` sink; a private one is created when
        omitted (exposed as :attr:`stats`).
    result_cache_entries:
        Capacity of the answer LRU (0 disables result caching).
    fanout_workers:
        Size of the shared thread pool used for per-shard fan-out; 0 runs
        shards sequentially on the calling thread.
    replica_picker:
        Strategy choosing which shard replica serves each per-shard query;
        defaults to the least-loaded picker
        (:class:`~repro.engine.serving.replicas.LeastLoadedReplicaPicker`).
    """

    def __init__(self, catalog: Catalog, planner: Planner,
                 stats: Optional[EngineStats] = None,
                 result_cache_entries: int = 256,
                 fanout_workers: int = 8,
                 replica_picker: Optional[object] = None,
                 tracer: Optional[Tracer] = None):
        self.catalog = catalog
        self.planner = planner
        self.stats = stats if stats is not None else EngineStats()
        #: Request-trace lifecycle: the serving layers open traces here
        #: and the core's spans land in whatever trace is active.
        self.tracer = tracer if tracer is not None else Tracer()
        self._results: LRUCache[Tuple[str, ConstraintKey], Tuple[str, List[Point]]]
        self._results = LRUCache(result_cache_entries)
        self._results_lock = threading.Lock()
        # Per-dataset invalidation generation (guarded by _results_lock).
        # An executing query snapshots it before touching the index; the
        # post-execution cache put is dropped if an invalidation bumped it
        # meanwhile, so a concurrent mutation can never be overwritten by
        # the stale answer that raced it.
        self._generations: Dict[str, int] = {}
        self._fanout_workers = fanout_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        if replica_picker is None:
            # Deferred import: the serving package imports this module.
            from repro.engine.serving.replicas import LeastLoadedReplicaPicker
            replica_picker = LeastLoadedReplicaPicker()
        self.replica_picker = replica_picker
        #: The mutation twin of this core: routed inserts/deletes with
        #: replica write-fanout, sharing the same catalog and metrics
        #: sink (so sync and async writes cannot drift apart either).
        #: The invalidate hook covers aborted fan-outs, whose rollback
        #: must flush answers cached off a mid-fanout secondary.
        self.writes = WritePath(catalog, stats=self.stats,
                                invalidate=self.invalidate_dataset)
        #: Optional process transport (see :mod:`repro.engine.cluster`):
        #: when attached, sharded fan-out offers each per-shard query to
        #: the shard's worker process first and falls back to the local
        #: in-process path whenever no worker can serve it.
        self.cluster = None

    def attach_cluster(self, coordinator) -> None:
        """Route sharded fan-out through a process-worker coordinator."""
        self.cluster = coordinator

    def run_write(self, dataset_name: str, op: str,
                  point) -> MutationResult:
        """Apply one engine-level mutation (the async path's write hook).

        Delegates to the shared :class:`~repro.engine.writes.WritePath`;
        result-cache invalidation, statistics feedback and shard-box
        staleness all fire through the mutation listeners the engine
        facade wired onto the primary replica's dynamic index.
        """
        if op == "insert":
            return self.writes.insert(dataset_name, point)
        if op == "delete":
            return self.writes.delete(dataset_name, point)
        raise ValueError("unknown mutation op %r" % (op,))

    def _shared_pool(self) -> Optional[ThreadPoolExecutor]:
        """The lazily-created thread pool shard fan-out runs on."""
        if self._fanout_workers <= 0:
            return None
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._fanout_workers,
                    thread_name_prefix="repro-engine")
            return self._pool

    def shutdown(self) -> None:
        """Stop the shared thread pool (idempotent)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    @contextmanager
    def warm_stores(self, names: Sequence[str],
                    warm_cache_blocks: int) -> Iterator[None]:
        """Enlarge the named datasets' buffer pools for a serving window.

        Every store backing each named dataset (one, or one per shard
        replica) is resized to at least ``warm_cache_blocks`` for the
        duration of the ``with`` block and restored afterwards, so
        per-query benchmarks keep measuring the cold-cache model.
        Unknown dataset names are skipped, not raised: per-request error
        isolation reports them at planning time, and a typo in one
        request must not abort a whole serving run.
        """
        previous: List[Tuple[BlockStore, int]] = []
        cluster_tokens: List[Tuple] = []
        try:
            for name in names:
                try:
                    stores = self.catalog.stores(name)
                except KeyError:
                    continue
                for store in stores:
                    previous.append((store, store.resize_cache(
                        max(store.cache_blocks, warm_cache_blocks))))
            if self.cluster is not None:
                # Worker buffer pools mirror the parent's for the same
                # window, so warm-batch I/O accounting matches across
                # modes.
                cluster_tokens = self.cluster.resize_caches(
                    list(names), warm_cache_blocks)
            yield
        finally:
            if self.cluster is not None and cluster_tokens:
                self.cluster.restore_caches(cluster_tokens)
            for store, size in previous:
                store.resize_cache(size)

    # ------------------------------------------------------------------
    # result-cache invalidation
    # ------------------------------------------------------------------
    def watch_index(self, dataset_name: str, index: object) -> bool:
        """Subscribe to an index's mutations, if it publishes any.

        Indexes exposing ``add_mutation_listener`` (the dynamic partition
        tree) get a callback that flushes the dataset's result-cache
        entries, so updates never serve stale cached answers.  Returns
        True when a listener was registered.
        """
        subscribe = getattr(index, "add_mutation_listener", None)
        if not callable(subscribe):
            return False
        subscribe(lambda: self.invalidate_dataset(dataset_name))
        return True

    def invalidate_dataset(self, dataset_name: str) -> int:
        """Drop every cached result for one dataset; returns entries dropped.

        Also bumps the dataset's generation so answers computed *before*
        this invalidation can no longer be cached after it.
        """
        with self._results_lock:
            self._generations[dataset_name] = \
                self._generations.get(dataset_name, 0) + 1
            return self._results.evict_where(
                lambda key: key[0] == dataset_name)

    def result_generation(self, dataset_name: str) -> int:
        """The dataset's current invalidation generation (snapshot before
        executing a query, pass to the cache put)."""
        with self._results_lock:
            return self._generations.get(dataset_name, 0)

    def _cache_put(self, dataset_name: str,
                   cache_key: Tuple[str, ConstraintKey],
                   value: Tuple[str, List[Point]], generation: int) -> None:
        """Cache an answer unless the dataset was invalidated meanwhile."""
        with self._results_lock:
            if self._generations.get(dataset_name, 0) == generation:
                self._results.put(cache_key, value)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def dispatch(self, dataset_name: str, constraint: LinearConstraint,
                 plan: AnyPlan, cache_key: Tuple[str, ConstraintKey],
                 clear_cache: bool, tenant: str = "") -> ExecutedQuery:
        """Route a planned query down the plain or fan-out execution path."""
        if isinstance(plan, ShardedPlan):
            return self.run_sharded(dataset_name, constraint, plan,
                                    cache_key, clear_cache=clear_cache,
                                    tenant=tenant)
        return self.run_planned(dataset_name, constraint, plan, cache_key,
                                clear_cache=clear_cache, tenant=tenant)

    def run_sharded(self, dataset_name: str,
                    constraint: Optional[LinearConstraint],
                    plan: ShardedPlan,
                    cache_key: Tuple[str, ConstraintKey],
                    clear_cache: bool,
                    conjunction: Optional[ConstraintConjunction] = None,
                    tenant: str = "") -> ExecutedQuery:
        """Fan a query out to the plan's relevant shards and merge.

        Each shard runs its own per-shard plan against its least-loaded
        replica's store; the per-shard I/Os are attributed to calibration
        (merged per query under one planner lock), to the per-replica load
        counters, and summed into the merged answer.  Shards run
        concurrently on the shared pool when it exists (each replica owns
        its store, so the only shared state — planner calibration and
        metrics — is locked).
        """
        sharded = self.catalog.sharded(dataset_name)
        if plan.generation != sharded.generation:
            # A rebalance re-split the shards after this plan was made:
            # its shard ids, boxes and per-shard indexes describe a
            # layout that no longer exists, so executing it could miss
            # points that moved shards.  Re-plan against the new layout.
            plan = (self.planner.plan_conjunction(dataset_name, conjunction)
                    if conjunction is not None
                    else self.planner.plan(dataset_name, constraint))
        shards_by_id = {shard.shard_id: shard for shard in sharded.shards}
        generation = self.result_generation(dataset_name)
        started = time.perf_counter()
        # The pool workers below do not inherit this thread's contextvars
        # (only asyncio.to_thread copies the context), so the fan-out
        # span is captured here and each shard hangs its child on it
        # explicitly — Span.child is thread-safe under the trace's lock.
        fanout_span = tracing.current_span().child(
            "executor.fanout", dataset=dataset_name,
            shards=len(plan.shard_plans))

        traced = fanout_span.enabled

        def run_shard(item: Tuple[int, Plan]):
            shard_id, shard_plan = item
            shard = shards_by_id[shard_id]
            # Tracing inside the worker is two clock reads and nothing
            # else: building the span node and its attribute dict here
            # would run Python bytecode under the GIL in every worker,
            # stretching the fan-out's critical path (the bench's <5%
            # overhead gate catches it) — so the tree is assembled on
            # the calling thread after the pool joins, from values the
            # worker returns anyway.
            shard_started = time.perf_counter() if traced else 0.0
            replica_id = self.replica_picker.acquire(
                dataset_name, shard, shard_plan.estimated_ios)
            served_replica = replica_id
            worker_meta = None
            try:
                remote = None
                if self.cluster is not None:
                    # Process transport: offer the query to the shard's
                    # worker fleet (preferring the picked replica,
                    # failing over to its siblings).  A worker answer
                    # carries the same points and I/O counters the local
                    # path would have measured — the worker rebuilt the
                    # replica deterministically — so everything below
                    # the transport is mode-agnostic.  None means no
                    # worker could serve it; the parent's own state is
                    # always current, so the local path is the ultimate
                    # failover target.
                    remote = self.cluster.run_query(
                        dataset_name, shard, replica_id,
                        shard_plan.index_name, constraint=constraint,
                        conjunction=conjunction, clear_cache=clear_cache,
                        trace_id=fanout_span.trace_id if traced else None,
                        parent=fanout_span.name if traced else None)
                if remote is not None:
                    points, ios, served_replica, worker_meta = remote
                else:
                    dataset = shard.replicas[replica_id]
                    index = dataset.indexes[shard_plan.index_name]
                    store = dataset.store
                    # One store = one disk = one request at a time: the
                    # lock keeps concurrent async requests that landed on
                    # the same replica from racing the buffer pool and
                    # smearing each other's I/O attribution.
                    with store.lock:
                        if clear_cache:
                            store.clear_cache()
                        before = store.stats.snapshot()
                        if conjunction is not None:
                            points = query_conjunction(index, conjunction)
                        else:
                            points = index.query(constraint)
                        ios = store.stats.delta(before)
            finally:
                self.replica_picker.release(
                    dataset_name, shard_id, replica_id,
                    shard_plan.estimated_ios)
            self.stats.record_replica_load(dataset_name, shard_id,
                                           served_replica, ios.total)
            shard_ended = time.perf_counter() if traced else 0.0
            return (shard_id, shard_plan, points, ios, served_replica,
                    shard_started, shard_ended, worker_meta)

        pool = self._shared_pool()
        if pool is not None and len(plan.shard_plans) > 1:
            outcomes = list(pool.map(run_shard, plan.shard_plans))
        else:
            outcomes = [run_shard(item) for item in plan.shard_plans]

        if traced:
            for (shard_id, shard_plan, shard_points, shard_ios,
                 replica_id, shard_started, shard_ended,
                 worker_meta) in outcomes:
                store = shards_by_id[shard_id].replicas[replica_id].store
                span = fanout_span.child(
                    "executor.shard",
                    shard_id=shard_id,
                    replica_id=replica_id,
                    index=shard_plan.index_name,
                    # "ios" is what EngineStats charges the request for
                    # this shard (reads+writes); cold-equivalent cost
                    # (+cache_hits) is what calibration sees.
                    ios=shard_ios.total,
                    observed_cold_ios=shard_ios.total
                    + shard_ios.cache_hits,
                    model_ios=round(shard_plan.chosen.model_ios, 2),
                    calibration=round(shard_plan.chosen.calibration, 4),
                    estimated_ios=round(shard_plan.estimated_ios, 2),
                    expected_output=round(shard_plan.expected_output, 2),
                    reported=len(shard_points),
                    q_error=round(q_error(shard_plan.expected_output,
                                          len(shard_points)), 3),
                    vectorized=vectorized_enabled(),
                    **store.span_attributes(shard_ios))
                span.started_s = shard_started
                span.ended_s = shard_ended
                if worker_meta is not None:
                    # Graft the worker's span subtree under this shard
                    # span.  Worker clocks are per-process (perf_counter
                    # has no cross-process epoch), so the child anchors
                    # at the parent span's start and keeps only the
                    # worker-measured duration — explain(analyze=True)
                    # still reconciles: child ⊆ parent holds because the
                    # RPC round trip envelopes the worker's work.
                    child = span.child(worker_meta.get("name",
                                                       "worker.query"),
                                       **worker_meta.get("attributes", {}))
                    child.started_s = shard_started
                    child.ended_s = shard_started + float(
                        worker_meta.get("duration_s", 0.0))

        points: List[Point] = []
        ios = IOStats()
        observations = []
        for shard_id, shard_plan, shard_points, shard_ios, *___ in outcomes:
            points.extend(shard_points)
            ios.merge(shard_ios)
            # Per-shard calibration feedback, keyed by the parent dataset
            # (shards share one learned constant per index kind).  As in
            # run_planned, buffer-pool hits count as the cold reads they
            # would have been.
            observations.append((shard_plan.index_name,
                                 shard_plan.chosen.model_ios,
                                 shard_ios.total + shard_ios.cache_hits))
            if conjunction is None:
                # Estimation feedback rides the calibration path: each
                # shard plan's expected output against what its shard
                # reported.  (Conjunction plans are costed with a single
                # conjunct's output — an intentional upper bound, not an
                # estimate — so they are excluded from q-error.)
                self.stats.note_estimation(dataset_name,
                                           shard_plan.expected_output,
                                           len(shard_points))
                # The same pair feeds the shard's own selectivity model
                # (adaptive histograms re-aim their direction set from
                # it; the base model ignores it).
                model = shards_by_id[shard_id].planning_dataset().stats
                if model is not None:
                    model.note_estimation_feedback(
                        constraint, shard_plan.expected_output,
                        len(shard_points))
        self.planner.observe_many(dataset_name, observations)
        latency = time.perf_counter() - started
        if fanout_span.enabled:
            fanout_span.set_many({
                "ios": ios.total,
                "cache_hits": ios.cache_hits,
                "reported": len(points),
                "shards_pruned": plan.shards_pruned,
            })
        fanout_span.finish()
        answer = ExecutedQuery(dataset=dataset_name,
                               index_name=plan.index_name,
                               points=points, ios=ios, latency_s=latency,
                               estimated_ios=plan.estimated_ios,
                               shards_queried=plan.shards_queried,
                               shards_pruned=plan.shards_pruned,
                               tenant=tenant)
        self.record(answer)
        self._cache_put(dataset_name, cache_key,
                        (plan.index_name, list(points)), generation)
        return answer

    def run_planned(self, dataset_name: str, constraint: LinearConstraint,
                    plan: Plan, cache_key: Tuple[str, ConstraintKey],
                    clear_cache: bool, tenant: str = "") -> ExecutedQuery:
        """Execute a single-store plan, recording metrics and calibration."""
        dataset = self.catalog.dataset(dataset_name)
        index = dataset.indexes[plan.index_name]
        store = dataset.store
        generation = self.result_generation(dataset_name)
        with tracing.span("executor.execute") as span:
            started = time.perf_counter()
            # Serialize whole queries on the store: concurrent async
            # requests against one unsharded dataset would otherwise race
            # the buffer pool and absorb each other's I/O counts.
            with store.lock:
                if clear_cache:
                    store.clear_cache()
                before = store.stats.snapshot()
                points = index.query(constraint)
                ios = store.stats.delta(before)
            latency = time.perf_counter() - started
            if span.enabled:
                span.set_many(store.span_attributes(ios))
                span.set_many({
                    "dataset": dataset_name,
                    "index": plan.index_name,
                    "ios": ios.total,
                    "vectorized": vectorized_enabled(),
                })
            return self.finish(dataset_name, plan, points, ios, latency,
                               cache_key, tenant=tenant,
                               generation=generation, span=span,
                               constraint=constraint, model=dataset.stats)

    def finish(self, dataset_name: str, plan: Plan, points: List[Point],
               ios: IOStats, latency: float,
               cache_key: Tuple[str, ConstraintKey],
               tenant: str = "",
               generation: Optional[int] = None,
               estimation: bool = True,
               span: object = tracing.NULL_SPAN,
               constraint: Optional[LinearConstraint] = None,
               model: Optional[object] = None) -> ExecutedQuery:
        """Feed back calibration, record metrics, cache and return.

        ``generation`` must be the dataset's :meth:`result_generation`
        snapshot taken *before* the query executed; when an invalidation
        bumped it meanwhile the answer is returned but not cached.
        Passing None (unknown provenance) skips caching outright.
        ``estimation=False`` keeps the plan's expected output out of the
        q-error metrics (conjunction plans, whose estimate is a
        deliberate single-conjunct upper bound).  ``span`` is the open
        execute span (if any): the calibration feedback pair becomes its
        attributes so misestimates are attributable per request.
        """
        # Calibration models the *cold* cost of a structure (what the plan
        # estimates predict), so count buffer-pool hits as the reads they
        # would have been on a cold pool — otherwise whichever index runs
        # later in a warm batch absorbs free reads and its factor collapses
        # toward MIN_FACTOR, misrouting subsequent queries.
        self.planner.observe(dataset_name, plan.index_name,
                             plan.chosen.model_ios,
                             ios.total + ios.cache_hits)
        if estimation:
            self.stats.note_estimation(dataset_name, plan.expected_output,
                                       len(points))
            if model is not None and constraint is not None:
                # Adaptive selectivity models fold the same q-error pair
                # back into their direction set (the base model's hook
                # is a no-op).
                model.note_estimation_feedback(constraint,
                                               plan.expected_output,
                                               len(points))
        if getattr(span, "enabled", False):
            span.set_many({
                "model_ios": round(plan.chosen.model_ios, 2),
                "calibration": round(plan.chosen.calibration, 4),
                "estimated_ios": round(plan.estimated_ios, 2),
                "observed_cold_ios": ios.total + ios.cache_hits,
                "expected_output": round(plan.expected_output, 2),
                "reported": len(points),
                "q_error": round(q_error(plan.expected_output,
                                         len(points)), 3)
                if estimation else None,
            })
        answer = ExecutedQuery(dataset=dataset_name,
                               index_name=plan.index_name,
                               points=points, ios=ios, latency_s=latency,
                               estimated_ios=plan.estimated_ios,
                               tenant=tenant)
        self.record(answer)
        if generation is not None:
            self._cache_put(dataset_name, cache_key,
                            (plan.index_name, list(points)), generation)
        return answer

    def result_cache_get(
            self, key: Tuple[str, ConstraintKey],
            tenant: str = "") -> Optional[ExecutedQuery]:
        """Serve a cached answer (zero I/Os) if one is resident."""
        with self._results_lock:
            hit = self._results.get(key)
        if hit is None:
            return None
        index_name, points = hit
        tracing.current_span().set("result_cache_hit", True)
        answer = ExecutedQuery(dataset=key[0], index_name=index_name,
                               points=list(points), ios=IOStats(),
                               latency_s=0.0, estimated_ios=0.0,
                               from_result_cache=True, tenant=tenant)
        self.record(answer)
        return answer

    @staticmethod
    def as_cache_hit(answer: ExecutedQuery) -> ExecutedQuery:
        """A zero-cost copy of an answer (for repeats inside one batch)."""
        return ExecutedQuery(dataset=answer.dataset,
                             index_name=answer.index_name,
                             points=list(answer.points), ios=IOStats(),
                             latency_s=0.0, estimated_ios=0.0,
                             from_result_cache=True, tenant=answer.tenant)

    def record(self, answer: ExecutedQuery) -> None:
        """Append one served-query record to the metrics sink."""
        self.stats.record(ServedQueryRecord(
            dataset=answer.dataset,
            index_name=answer.index_name,
            latency_s=answer.latency_s,
            ios=answer.total_ios,
            reported=answer.count,
            result_cache_hit=answer.from_result_cache,
            store_cache_hits=answer.ios.cache_hits,
            shards_queried=answer.shards_queried,
            shards_pruned=answer.shards_pruned,
            tenant=answer.tenant,
            degraded=answer.degraded,
            sample_rate=answer.sample_rate,
            estimated_count=answer.estimated_count,
            count_interval=answer.count_interval,
            interval_source=answer.interval_source,
        ))


class BatchExecutor:
    """Runs query batches against the catalog under the planner's routing.

    Parameters
    ----------
    catalog / planner:
        The engine's catalog and planner.
    stats:
        Optional :class:`EngineStats` sink; a private one is created when
        omitted (exposed as :attr:`stats`).
    result_cache_entries:
        Capacity of the answer LRU (0 disables result caching).
    warm_cache_blocks:
        Buffer-pool size used while serving a warm batch; the store's
        original (small) pool is restored when the batch finishes.
    fanout_workers:
        Size of the core's shared thread pool for per-shard fan-out; 0
        runs shards sequentially on the calling thread.  (The threaded
        :meth:`run_workload` path sizes its own pool from its
        ``max_workers`` argument, one thread per dataset by default.)
    core:
        An existing :class:`ExecutionCore` to execute through (the engine
        facade shares one core between this executor and the async one);
        a private core is created when omitted.
    """

    def __init__(self, catalog: Catalog, planner: Planner,
                 stats: Optional[EngineStats] = None,
                 result_cache_entries: int = 256,
                 warm_cache_blocks: int = 64,
                 fanout_workers: int = 8,
                 core: Optional[ExecutionCore] = None,
                 tracer: Optional[Tracer] = None):
        self.core = core if core is not None else ExecutionCore(
            catalog, planner, stats=stats,
            result_cache_entries=result_cache_entries,
            fanout_workers=fanout_workers, tracer=tracer)
        # Always derive from the core: planning against one catalog while
        # executing through another would silently serve wrong datasets.
        self._catalog = self.core.catalog
        self._planner = self.core.planner
        self.stats = self.core.stats
        self.warm_cache_blocks = warm_cache_blocks

    def shutdown(self) -> None:
        """Stop the core's shared thread pool (idempotent)."""
        self.core.shutdown()

    # ------------------------------------------------------------------
    # result-cache invalidation (delegated to the shared core)
    # ------------------------------------------------------------------
    def watch_index(self, dataset_name: str, index: object) -> bool:
        """Subscribe to an index's mutations (see the core's docstring)."""
        return self.core.watch_index(dataset_name, index)

    def invalidate_dataset(self, dataset_name: str) -> int:
        """Drop every cached result for one dataset; returns entries dropped."""
        return self.core.invalidate_dataset(dataset_name)

    # ------------------------------------------------------------------
    # single queries
    # ------------------------------------------------------------------
    def execute(self, dataset_name: str, constraint: LinearConstraint,
                clear_cache: bool = False) -> ExecutedQuery:
        """Plan and run one constraint, recording metrics and calibration.

        ``clear_cache`` requests a cold-cache measurement: it empties the
        buffer pool first *and* bypasses the result cache, so the reported
        I/Os are what the query costs from scratch.
        """
        key = (dataset_name, constraint_key(constraint))
        if not clear_cache:
            cached = self.core.result_cache_get(key)
            if cached is not None:
                return cached
        plan = self._planner.plan(dataset_name, constraint)
        return self.core.dispatch(dataset_name, constraint, plan, key,
                                  clear_cache=clear_cache)

    def execute_conjunction(self, dataset_name: str,
                            conjunction: ConstraintConjunction,
                            clear_cache: bool = False) -> ExecutedQuery:
        """Plan and run a conjunction (convex-polytope query).

        As in :meth:`execute`, ``clear_cache`` requests a cold-cache
        measurement and bypasses the result cache.
        """
        key = (dataset_name, conjunction_key(conjunction))
        if not clear_cache:
            cached = self.core.result_cache_get(key)
            if cached is not None:
                return cached
        plan = self._planner.plan_conjunction(dataset_name, conjunction)
        if isinstance(plan, ShardedPlan):
            return self.core.run_sharded(dataset_name, None, plan, key,
                                         clear_cache=clear_cache,
                                         conjunction=conjunction)
        dataset = self._catalog.dataset(dataset_name)
        index = dataset.indexes[plan.index_name]
        store = dataset.store
        generation = self.core.result_generation(dataset_name)
        with tracing.span("executor.execute", conjunction=True) as span:
            started = time.perf_counter()
            with store.lock:
                if clear_cache:
                    store.clear_cache()
                before = store.stats.snapshot()
                points = query_conjunction(index, conjunction)
                ios = store.stats.delta(before)
            latency = time.perf_counter() - started
            if span.enabled:
                span.set_many(store.span_attributes(ios))
                span.set_many({"dataset": dataset_name,
                               "index": plan.index_name,
                               "ios": ios.total,
                               "vectorized": vectorized_enabled()})
            return self.core.finish(dataset_name, plan, points, ios,
                                    latency, key, generation=generation,
                                    estimation=False, span=span)

    # ------------------------------------------------------------------
    # batches and workloads
    # ------------------------------------------------------------------
    def run_batch(self, dataset_name: str,
                  constraints: Sequence[LinearConstraint],
                  warm_cache: bool = True) -> BatchResult:
        """Serve a batch against one dataset.

        Unique constraints are planned once, grouped by chosen index, and
        executed with a shared (optionally enlarged) buffer pool; repeats
        are answered from the result cache.  Sharded datasets warm every
        replica's pool and fan each constraint out to its relevant shards.
        """
        started = time.perf_counter()
        answers: Dict[ConstraintKey, ExecutedQuery] = {}
        ordered_keys = [constraint_key(c) for c in constraints]

        # Plan each unique constraint and group execution by chosen index
        # (for sharded datasets: by the plan's fan-out label).
        unique: Dict[ConstraintKey, LinearConstraint] = {}
        for constraint, key in zip(constraints, ordered_keys):
            unique.setdefault(key, constraint)
        groups: Dict[str, List[Tuple[ConstraintKey, LinearConstraint]]] = {}
        for key, constraint in unique.items():
            cached = self.core.result_cache_get((dataset_name, key))
            if cached is not None:
                answers[key] = cached
                continue
            plan = self._planner.plan(dataset_name, constraint)
            groups.setdefault(plan.index_name, []).append((key, constraint))

        with self.core.warm_stores([dataset_name] if warm_cache else [],
                                   self.warm_cache_blocks):
            for index_name in sorted(groups):
                for key, constraint in groups[index_name]:
                    # Re-plan just before running: calibration learned from
                    # earlier queries in this batch may have rerouted the
                    # constraint (the pre-pass grouping is only a locality
                    # heuristic).
                    plan = self._planner.plan(dataset_name, constraint)
                    answers[key] = self.core.dispatch(
                        dataset_name, constraint, plan,
                        (dataset_name, key), clear_cache=False)

        executed = sum(len(group) for group in groups.values())
        first_position: Dict[ConstraintKey, int] = {}
        for position, key in enumerate(ordered_keys):
            first_position.setdefault(key, position)
        in_order: List[ExecutedQuery] = []
        hits = 0
        for position, key in enumerate(ordered_keys):
            answer = answers[key]
            if position != first_position[key]:
                # A repeat inside the batch: serve the points resolved for
                # the first occurrence and charge nothing.
                answer = self.core.as_cache_hit(answer)
                self.core.record(answer)
            if answer.from_result_cache:
                hits += 1
            in_order.append(answer)
        return BatchResult(dataset=dataset_name, queries=in_order,
                           wall_seconds=time.perf_counter() - started,
                           executed=executed, result_cache_hits=hits)

    def run_workload(self, requests: Sequence[Tuple[str, LinearConstraint]],
                     warm_cache: bool = True, use_threads: bool = False,
                     max_workers: Optional[int] = None) -> WorkloadResult:
        """Serve a mixed-tenant workload of (dataset, constraint) requests.

        Requests are partitioned per dataset and each dataset's batch runs
        as in :meth:`run_batch` — concurrently on a thread pool when
        ``use_threads`` is set (safe: queries are read-only and each
        dataset owns its store).  Within one dataset's batch execution is
        serial in arrival order; the async serving path
        (:meth:`repro.engine.engine.QueryEngine.serve_async`) is the one
        that interleaves tenants inside a single dataset.
        """
        started = time.perf_counter()
        per_dataset: Dict[str, List[LinearConstraint]] = {}
        positions: Dict[str, List[int]] = {}
        for position, (dataset_name, constraint) in enumerate(requests):
            per_dataset.setdefault(dataset_name, []).append(constraint)
            positions.setdefault(dataset_name, []).append(position)

        batches: Dict[str, BatchResult] = {}
        if use_threads and len(per_dataset) > 1:
            with ThreadPoolExecutor(
                    max_workers=max_workers or len(per_dataset)) as pool:
                futures = {
                    dataset_name: pool.submit(self.run_batch, dataset_name,
                                              constraints, warm_cache)
                    for dataset_name, constraints in per_dataset.items()}
                batches = {name: future.result()
                           for name, future in futures.items()}
        else:
            for dataset_name, constraints in per_dataset.items():
                batches[dataset_name] = self.run_batch(
                    dataset_name, constraints, warm_cache=warm_cache)

        ordered: List[Optional[ExecutedQuery]] = [None] * len(requests)
        for dataset_name, batch in batches.items():
            for position, answer in zip(positions[dataset_name],
                                        batch.queries):
                ordered[position] = answer
        return WorkloadResult(queries=[q for q in ordered if q is not None],
                              batches=batches,
                              wall_seconds=time.perf_counter() - started)
