"""Request-scoped tracing: span trees across every serving layer.

A :class:`Trace` is opened per served request (by the HTTP front-end or
by the async executor) and carries a tree of :class:`Span` nodes timed on
the monotonic clock.  Spans flow through every layer of the engine — the
planner, admission, the execution core's shard/replica fan-out, the write
path, and down to the :class:`~repro.io.store.BlockStore` counters — so a
slow or degraded request can be decomposed into *where* its time and I/Os
went instead of disappearing into aggregate counters.

Propagation is via a :mod:`contextvars` context variable, which follows
``await`` chains for free.  It does **not** follow
``loop.run_in_executor`` or ``ThreadPoolExecutor.map`` into worker
threads (only ``asyncio.to_thread`` copies the context), so the two
thread-crossing seams in this engine pass spans explicitly: the serving
executor re-activates the request span inside the dispatch worker
(:func:`activate`), and the shard fan-out creates children of a captured
parent span (:meth:`Span.child` is thread-safe under the trace's lock).

The disabled path is a no-op singleton: when no trace is active (or the
:class:`Tracer` is off), :func:`span` returns a shared null context and
:data:`NULL_SPAN` swallows every call without allocating, so tracing
costs one contextvar read per instrumentation site.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
import weakref
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span", "NullSpan", "NULL_SPAN", "Trace", "NULL_TRACE", "Tracer",
    "current_span", "current_trace", "current_trace_id", "span", "activate",
]


class Span:
    """One timed node in a trace tree.

    Spans time themselves with ``time.perf_counter`` from construction to
    :meth:`finish` and carry a flat attribute dict plus child spans.
    Children may be appended from worker threads (the shard fan-out does)
    — the append is serialized under the owning trace's lock, and every
    traversal snapshots the child list under the same lock.

    The tree is deliberately *acyclic*: a span references only its
    children, shares the owning trace's lock and clock base directly,
    and holds the trace itself through a weakref.  Every request would
    otherwise retire one cycle (parent <-> child, trace <-> root) per
    trace, and cyclic garbage on the request hot path turns into
    full-heap gc pauses under load — the bench's overhead gate catches
    exactly that.
    """

    __slots__ = ("name", "trace_id", "started_s", "ended_s",
                 "attributes", "children", "_lock", "_base", "_trace_ref")

    enabled = True

    def __init__(self, name: str, trace: "Trace",
                 attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.trace_id = trace.trace_id
        self._lock = trace.lock
        self._base = trace.started_s
        self._trace_ref = weakref.ref(trace)
        self.started_s = time.perf_counter()
        self.ended_s: Optional[float] = None
        # Adopted, not copied: the caller's kwargs dict becomes the
        # attribute store directly — span construction is on the
        # request hot path, so no throwaway dicts.
        self.attributes: Dict[str, Any] = \
            {} if attributes is None else attributes
        self.children: List["Span"] = []

    @property
    def trace(self) -> Optional["Trace"]:
        """The owning trace (weak: None once the trace is dropped)."""
        return self._trace_ref()

    # -- attributes ----------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_many(self, attributes: Dict[str, Any]) -> None:
        self.attributes.update(attributes)

    # -- tree ----------------------------------------------------------
    def child(self, name: str, **attributes: Any) -> "Span":
        """Open a child span (safe to call from any thread)."""
        trace = self._trace_ref()
        if trace is None:  # the owning trace is gone; drop quietly
            return NULL_SPAN
        node = Span(name, trace, attributes)
        with self._lock:
            self.children.append(node)
        return node

    def finish(self) -> "Span":
        """Stop the clock (idempotent — the first call wins)."""
        if self.ended_s is None:
            self.ended_s = time.perf_counter()
        return self

    @property
    def duration_s(self) -> float:
        end = self.ended_s if self.ended_s is not None \
            else time.perf_counter()
        return end - self.started_s

    # -- context-manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attributes["error"] = "%s: %s" % (exc_type.__name__, exc)
        self.finish()
        return False

    # -- traversal / export --------------------------------------------
    def iter(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        with self._lock:
            children = list(self.children)
        for node in children:
            yield from node.iter()

    def find(self, name: str) -> List["Span"]:
        """Every span in this subtree with the given name."""
        return [node for node in self.iter() if node.name == name]

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable tree; times are ms relative to trace start."""
        base = self._base
        with self._lock:
            children = list(self.children)
        return {
            "name": self.name,
            "start_ms": round((self.started_s - base) * 1e3, 3),
            "duration_ms": round(self.duration_s * 1e3, 3),
            "attributes": dict(self.attributes),
            "children": [node.to_dict() for node in children],
        }

    def __repr__(self) -> str:
        return "Span(%r, %.3fms, %d children)" % (
            self.name, self.duration_s * 1e3, len(self.children))


class NullSpan:
    """The disabled-tracing singleton: every operation is a no-op.

    ``child`` returns the singleton itself, so arbitrarily deep
    instrumentation chains stay allocation-free when tracing is off.
    """

    __slots__ = ()

    enabled = False
    name = ""
    trace_id = ""
    trace = None  # rebound to NULL_TRACE once it exists below
    started_s = 0.0
    ended_s = 0.0
    duration_s = 0.0

    @property
    def attributes(self) -> Dict[str, Any]:
        return {}

    def set(self, key: str, value: Any) -> None:
        pass

    def set_many(self, attributes: Dict[str, Any]) -> None:
        pass

    def child(self, name: str, **attributes: Any) -> "NullSpan":
        return self

    def finish(self) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def iter(self) -> Iterator["Span"]:
        return iter(())

    def find(self, name: str) -> List["Span"]:
        return []

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def __repr__(self) -> str:
        return "NullSpan()"


#: The shared no-op span: ``current_span()`` when no trace is active.
NULL_SPAN = NullSpan()


class Trace:
    """One request's span tree, identified by a ``trace_id``.

    The trace owns the lock that serializes cross-thread child appends
    and records both the monotonic start (for in-tree relative times) and
    the wall-clock start (so exported traces can be ordered globally).
    :meth:`finish` freezes the duration and hands the finished tree to
    the owning :class:`Tracer` for the trace registry / slow-query log.
    """

    __slots__ = ("trace_id", "name", "root", "lock", "started_s",
                 "started_at", "finished", "duration_s", "_tracer",
                 "__weakref__")

    enabled = True

    def __init__(self, trace_id: str, name: str,
                 tracer: Optional["Tracer"] = None) -> None:
        self.trace_id = trace_id
        self.name = name
        self.lock = threading.Lock()
        self.started_s = time.perf_counter()
        self.started_at = time.time()
        self.finished = False
        self.duration_s = 0.0
        self._tracer = tracer
        self.root = Span(name, self)

    def finish(self) -> "Trace":
        """Close the root span and register the finished tree (idempotent)."""
        if self.finished:
            return self
        self.root.finish()
        self.duration_s = self.root.duration_s
        self.finished = True
        if self._tracer is not None:
            self._tracer._register(self)
        return self

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Every span in the tree, optionally filtered by name."""
        if name is None:
            return list(self.root.iter())
        return self.root.find(name)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "started_at": self.started_at,
            "duration_ms": round(self.duration_s * 1e3, 3)
            if self.finished else round(self.root.duration_s * 1e3, 3),
            "finished": self.finished,
            "root": self.root.to_dict(),
        }

    def __repr__(self) -> str:
        return "Trace(%s, %r, finished=%s)" % (
            self.trace_id, self.name, self.finished)


class _NullTrace:
    """Disabled-tracer counterpart of :data:`NULL_SPAN`."""

    __slots__ = ()

    enabled = False
    trace_id = ""
    name = ""
    root = NULL_SPAN
    finished = True
    duration_s = 0.0
    started_at = 0.0

    def finish(self) -> "_NullTrace":
        return self

    def spans(self, name: Optional[str] = None) -> List[Span]:
        return []

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def __repr__(self) -> str:
        return "NullTrace()"


#: What a disabled :class:`Tracer` hands out instead of a :class:`Trace`.
NULL_TRACE = _NullTrace()
NullSpan.trace = NULL_TRACE


# ----------------------------------------------------------------------
# context propagation
# ----------------------------------------------------------------------
_CURRENT_SPAN: "contextvars.ContextVar[Any]" = contextvars.ContextVar(
    "repro_current_span", default=NULL_SPAN)


def current_span() -> Any:
    """The span active in this context (:data:`NULL_SPAN` when none)."""
    return _CURRENT_SPAN.get()


def current_trace() -> Any:
    """The trace owning the active span, or :data:`NULL_TRACE`."""
    trace = _CURRENT_SPAN.get().trace
    return NULL_TRACE if trace is None else trace


def current_trace_id() -> str:
    """The active trace's id, or ``""`` when tracing is off."""
    return _CURRENT_SPAN.get().trace_id


class _ActiveSpan:
    """Context manager binding one span to the contextvar.

    ``finish_on_exit`` distinguishes :func:`span` (which owns its child
    and closes it) from :func:`activate` (which borrows a span across a
    thread boundary and must leave its clock alone).
    """

    __slots__ = ("_span", "_token", "_finish")

    def __init__(self, node: Span, finish_on_exit: bool) -> None:
        self._span = node
        self._finish = finish_on_exit
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Span:
        self._token = _CURRENT_SPAN.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        _CURRENT_SPAN.reset(self._token)
        if exc_type is not None:
            self._span.set(
                "error", "%s: %s" % (exc_type.__name__, exc))
        if self._finish:
            self._span.finish()
        return False


class _NullContext:
    """The shared do-nothing context for the tracing-disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> NullSpan:
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


def span(name: str, **attributes: Any):
    """Open a child of the current span and make it current.

    Usage: ``with tracing.span("planner.plan") as sp: ...``.  The child
    is finished when the block exits (exceptions are recorded in an
    ``error`` attribute).  When no trace is active this returns a shared
    null context — the disabled path allocates nothing.
    """
    parent = _CURRENT_SPAN.get()
    if parent is NULL_SPAN:
        return _NULL_CONTEXT
    return _ActiveSpan(parent.child(name, **attributes), finish_on_exit=True)


def activate(node: Any):
    """Make an existing span current without finishing it on exit.

    This is the explicit hand-off across thread boundaries
    (``run_in_executor`` workers, pool fan-out) where contextvars do not
    propagate.  Passing ``None`` or :data:`NULL_SPAN` is a no-op.
    """
    if node is None or not getattr(node, "enabled", False):
        return _NULL_CONTEXT
    return _ActiveSpan(node, finish_on_exit=False)


# ----------------------------------------------------------------------
# the tracer
# ----------------------------------------------------------------------
class Tracer:
    """Owns trace lifecycle: the on/off switch, ids, and retention.

    Finished traces land in a bounded
    :class:`~repro.engine.obs.slowlog.TraceRegistry` (fetch by id, e.g.
    ``GET /trace/<id>``) and — when slower than ``slow_threshold_s`` or
    marked degraded — in a
    :class:`~repro.engine.obs.slowlog.SlowQueryLog` ring
    (``GET /debug/slow``).  ``enabled=False`` makes :meth:`start_trace`
    hand out :data:`NULL_TRACE`, collapsing every downstream
    instrumentation site to the no-op singleton.
    """

    def __init__(self, enabled: bool = True, max_traces: int = 256,
                 slow_threshold_s: float = 0.25,
                 slow_capacity: int = 64) -> None:
        from repro.engine.obs.slowlog import SlowQueryLog, TraceRegistry
        self.enabled = enabled
        self.registry = TraceRegistry(max_traces)
        self.slow_log = SlowQueryLog(slow_threshold_s, slow_capacity)
        self._counter = itertools.count(1)

    def start_trace(self, name: str, **attributes: Any) -> Any:
        """Open a new trace (or :data:`NULL_TRACE` when disabled)."""
        if not self.enabled:
            return NULL_TRACE
        trace = Trace(self._next_id(), name, tracer=self)
        if attributes:
            trace.root.attributes.update(attributes)
        return trace

    def _next_id(self) -> str:
        # Millisecond wall clock + a process-lifetime counter: unique
        # within a server's lifetime, sortable-ish across restarts.
        return "%x-%x" % (int(time.time() * 1e3), next(self._counter))

    def _register(self, trace: Trace) -> None:
        # Hot path: every finished request lands here, so retain the
        # trace object and let readers serialize on fetch.
        self.registry.add(trace.trace_id, trace)
        root_attrs = trace.root.attributes
        degraded = (root_attrs.get("outcome") == "degraded"
                    or bool(root_attrs.get("degraded")))
        self.slow_log.offer(trace, trace.duration_s, degraded=degraded)

    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """A finished trace tree by id, or None if unknown/evicted."""
        return self.registry.get(trace_id)

    def slow(self, n: int = 20) -> List[Dict[str, Any]]:
        """The newest ``n`` slow/degraded trace trees, newest first."""
        return self.slow_log.latest(n)

    @property
    def slow_threshold_s(self) -> float:
        return self.slow_log.threshold_s

    def __repr__(self) -> str:
        return "Tracer(enabled=%s, traces=%d, slow=%d)" % (
            self.enabled, len(self.registry), len(self.slow_log))
