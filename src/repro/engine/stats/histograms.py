"""Equi-depth histograms of directional projections.

A linear constraint in this library is ``x_d - a . x_{1..d-1} <= a_0``:
its residual is a *projection* of the point onto the direction
``w = (-a_1, ..., -a_{d-1}, 1)``, so estimating a constraint's
selectivity is estimating the CDF of a one-dimensional projection of the
point set.  This module holds the two pieces
:class:`~repro.engine.stats.models.HistogramModel` composes:

* :class:`EquiDepthHistogram` — bucket boundaries at quantiles of one
  direction's projections, so every bucket holds the same number of
  points at build time.  The CDF estimate interpolates inside a single
  bucket, bounding the absolute error by one bucket's share — and unlike
  a uniform sample, the boundaries are computed from *every* stored
  point, so the deep tail (selectivity well below 1/sample_size, where a
  sample reports zero hits) stays resolvable.
* direction helpers — a *canonical* direction set to pre-project onto:
  the coordinate axis ``e_d`` (pure ``x_d`` thresholds), the principal
  directions of the point cloud (for data concentrated along a lower
  dimensional flat, like the §1.2 diagonal, the least-variance principal
  direction is exactly the residual direction of the adversarial
  queries), and a spread of fill directions over the half-sphere of
  feasible residual directions (last coordinate positive).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.primitives import LinearConstraint


class EquiDepthHistogram:
    """Equi-depth histogram over one direction's projection values.

    Parameters
    ----------
    values:
        The projections of every stored point onto the direction.
    num_buckets:
        Bucket count B; boundaries are the ``i/B`` quantiles (clamped to
        the number of distinct values available).
    """

    def __init__(self, values: Sequence[float], num_buckets: int = 64):
        values = np.sort(np.asarray(values, dtype=float).ravel())
        if len(values) == 0:
            raise ValueError("cannot build a histogram over zero values")
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1, got %r" % num_buckets)
        buckets = int(min(num_buckets, len(values)))
        self.edges = np.quantile(values, np.linspace(0.0, 1.0, buckets + 1))
        # Exact per-bucket counts (duplicates can make quantile edges
        # coincide, leaving uneven buckets; searchsorted charges each
        # value to the last bucket whose upper edge covers it).
        positions = np.searchsorted(values, self.edges, side="right")
        positions[0] = 0
        self.counts = np.diff(positions).astype(float)
        self.total = float(len(values))
        # Lazily rebuilt prefix sums so cumulative() answers with one
        # searchsorted + lookup instead of summing a count slice.  Counts
        # are integral floats (< 2^53), so the cached cumsum is exact.
        self._cumsum: Optional[np.ndarray] = None
        # Skew at build time (1.0 for distinct values; can exceed it when
        # duplicate-valued data collapses edges).  drift() reports growth
        # relative to this baseline, so duplicate-heavy builds do not
        # read as pre-drifted.
        self._built_skew = self.skew()

    @property
    def num_buckets(self) -> int:
        return len(self.counts)

    def _prefix_counts(self) -> np.ndarray:
        """Prefix sums of ``counts`` with a leading 0 (cached until mutated)."""
        if self._cumsum is None or len(self._cumsum) != self.num_buckets + 1:
            self._cumsum = np.concatenate(([0.0], np.cumsum(self.counts)))
        return self._cumsum

    def cumulative(self, threshold: float) -> float:
        """Estimated number of values ``<= threshold``.

        Exact at bucket boundaries; linear interpolation inside the one
        bucket the threshold falls in.  Answered via ``searchsorted``
        against the edges plus a cached prefix-sum lookup.
        """
        edges = self.edges
        if threshold < edges[0]:
            return 0.0
        if threshold >= edges[-1]:
            return self.total
        bucket = int(np.searchsorted(edges, threshold, side="right")) - 1
        bucket = min(max(bucket, 0), self.num_buckets - 1)
        below = float(self._prefix_counts()[bucket])
        width = edges[bucket + 1] - edges[bucket]
        fraction = 1.0 if width <= 0 else (threshold - edges[bucket]) / width
        return below + float(self.counts[bucket]) * fraction

    def cumulative_many(self, thresholds: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cumulative` over an array of thresholds."""
        thresholds = np.asarray(thresholds, dtype=float).ravel()
        edges = self.edges
        buckets = np.searchsorted(edges, thresholds, side="right") - 1
        buckets = np.clip(buckets, 0, self.num_buckets - 1)
        widths = edges[buckets + 1] - edges[buckets]
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(widths <= 0, 1.0,
                                 (thresholds - edges[buckets]) / widths)
        answers = self._prefix_counts()[buckets] + self.counts[buckets] * fractions
        answers = np.where(thresholds < edges[0], 0.0, answers)
        return np.where(thresholds >= edges[-1], self.total, answers)

    def selectivity(self, threshold: float) -> float:
        """Estimated fraction of values ``<= threshold``."""
        if self.total <= 0:
            return 0.0
        return min(1.0, self.cumulative(threshold) / self.total)

    # ------------------------------------------------------------------
    # incremental maintenance (dynamic inserts/deletes)
    # ------------------------------------------------------------------
    def _bucket_of(self, value: float) -> int:
        bucket = int(np.searchsorted(self.edges, value, side="right")) - 1
        return min(max(bucket, 0), self.num_buckets - 1)

    def insert(self, value: float) -> None:
        """Count one new projection (stretching the edge buckets if needed)."""
        value = float(value)
        if value < self.edges[0]:
            self.edges[0] = value
        elif value > self.edges[-1]:
            self.edges[-1] = value
        self.counts[self._bucket_of(value)] += 1.0
        self.total += 1.0
        self._cumsum = None

    def delete(self, value: float) -> None:
        """Uncount one projection (no-op below zero, e.g. absent points)."""
        bucket = self._bucket_of(float(value))
        if self.counts[bucket] > 0:
            self.counts[bucket] -= 1.0
            self.total = max(0.0, self.total - 1.0)
            self._cumsum = None

    # ------------------------------------------------------------------
    # drift
    # ------------------------------------------------------------------
    def skew(self) -> float:
        """Largest bucket's share relative to the equi-depth fair share.

        1.0 means perfectly balanced (the build-time state for distinct
        values); K means one bucket holds K times its fair share.
        """
        if self.total <= 0 or self.num_buckets == 0:
            return 1.0
        fair = self.total / self.num_buckets
        return float(self.counts.max()) / fair

    def drift(self) -> float:
        """Current skew relative to the build-time skew (1.0 = unchanged).

        Equi-depth buckets start balanced, so a stream of inserts
        concentrated in one region drives exactly one bucket's count up —
        this ratio is the histogram's skew signal for shard rebalancing.
        """
        return self.skew() / max(self._built_skew, 1e-12)


# ----------------------------------------------------------------------
# canonical directions
# ----------------------------------------------------------------------
def normalize_direction(direction: Sequence[float]) -> np.ndarray:
    """Unit vector with a canonical sign (last non-zero coordinate > 0).

    Residual directions of feasible constraints always have a positive
    last coordinate, so flipping keeps every canonical direction on the
    same half-sphere the queries live on.
    """
    array = np.asarray(direction, dtype=float).ravel()
    norm = float(np.linalg.norm(array))
    if norm <= 0:
        raise ValueError("direction must be non-zero")
    array = array / norm
    for coordinate in array[::-1]:
        if coordinate != 0:
            if coordinate < 0:
                array = -array
            break
    return array


def constraint_direction(constraint: LinearConstraint
                         ) -> Tuple[np.ndarray, float]:
    """The unit residual direction of a constraint, plus its scale.

    The constraint ``x_d - a . x_{1..d-1} <= a_0`` holds iff
    ``w . x <= a_0`` for ``w = (-a, 1)``; dividing by ``|w|`` gives the
    unit direction and the matching threshold ``a_0 / |w|``.
    """
    raw = np.append(-np.asarray(constraint.coeffs, dtype=float), 1.0)
    norm = float(np.linalg.norm(raw))
    return raw / norm, norm


def principal_directions(points: np.ndarray) -> List[np.ndarray]:
    """Principal (eigen) directions of the centered point cloud.

    For data concentrated near a lower-dimensional flat — the paper's
    §1.2 diagonal — the least-variance principal direction is the
    residual direction of the adversarial queries, which is exactly the
    direction a histogram must cover to resolve their selectivity.
    """
    points = np.asarray(points, dtype=float)
    if len(points) < 2:
        return []
    centered = points - points.mean(axis=0)
    covariance = centered.T @ centered / len(points)
    __, vectors = np.linalg.eigh(covariance)
    return [normalize_direction(vectors[:, column])
            for column in range(vectors.shape[1])]


def canonical_directions(points: np.ndarray, num_directions: int = 16,
                         seed: Optional[int] = None) -> np.ndarray:
    """The default direction set for a dataset's histograms.

    Always includes the axis ``e_d`` (pure ``x_d`` thresholds) and the
    point cloud's principal directions (data-adaptive coverage); the
    remainder are fill directions — evenly spaced over the upper
    half-circle in 2-D, seeded-random on the upper half-sphere above —
    deduplicated so near-identical directions do not waste histograms.
    """
    points = np.asarray(points, dtype=float)
    dimension = int(points.shape[1])
    axis = np.zeros(dimension)
    axis[-1] = 1.0
    candidates: List[np.ndarray] = [axis]
    candidates.extend(principal_directions(points))
    fill = max(0, num_directions - len(candidates))
    if dimension == 2:
        angles = (np.arange(fill) + 0.5) / max(fill, 1) * np.pi
        candidates.extend(normalize_direction((np.cos(a), np.sin(a)))
                          for a in angles[:fill])
    elif fill:
        generator = np.random.default_rng(seed)
        raw = generator.normal(size=(fill, dimension))
        candidates.extend(normalize_direction(row) for row in raw)
    chosen: List[np.ndarray] = []
    for direction in candidates:
        if all(abs(float(direction @ kept)) < 1.0 - 1e-9 for kept in chosen):
            chosen.append(direction)
    return np.asarray(chosen)


def describe_directions(directions: np.ndarray) -> Dict[str, object]:
    """JSON-friendly summary of a direction set (benchmarks persist it)."""
    directions = np.asarray(directions, dtype=float)
    return {"num_directions": int(len(directions)),
            "dimension": int(directions.shape[1]) if len(directions) else 0}
