"""Pluggable selectivity models: the engine's estimation seam.

Every planner decision hinges on ``expected_output`` — the paper's bounds
are output-sensitive, so a misestimated T misprices every candidate
index.  :class:`SelectivityModel` is the seam that estimate comes
through; the catalog builds one model per dataset *and one per shard
child*, so sharded planning is priced with shard-local statistics.

Three models ship:

* :class:`UniformSampleModel` — the engine's original estimator,
  relocated: evaluate the constraint on a uniform in-memory sample.
  Unbiased on any data, but its resolution floor is ``1/len(sample)`` —
  a selective query on a 512-point sample reports 0–2 hits and the
  estimate is mostly noise.
* :class:`HistogramModel` — equi-depth histograms of the points'
  projections onto a set of canonical directions (axis, principal
  directions of the cloud, fill directions).  A constraint is answered
  by projecting onto the *nearest* canonical direction, which resolves
  the deep tail from all N points instead of a sample — exactly what the
  §1.2 diagonal workload needs, where every adversarial query shares
  (almost) one residual direction.  When no canonical direction is close
  enough to the query's, the model falls back to the sample estimate, so
  it is never much worse than the uniform baseline.
* :class:`EnsembleModel` — both of the above side by side, aggregated
  with e-value-style weights updated online from each member's own
  per-query q-error (PAPERS.md's aggregation-of-conformal-predictors
  line).  On workloads where one member is mis-specified the other's
  weight takes over within tens of queries, so the ensemble tracks the
  better member without anyone choosing it up front.

Both models accept ``observe_insert`` / ``observe_delete`` feedback from
the engine's dynamic-index mutation hooks, so estimates track mutated
datasets: the sample is reservoir-refreshed, histograms are incremented,
and the live size used to scale selectivity into an output count stays
current.
"""

from __future__ import annotations

import abc
import math
from collections import deque
from typing import Dict, Optional, Sequence

import numpy as np

from repro.engine.sharding import selectivity_on_sample
from repro.engine.stats.histograms import (
    EquiDepthHistogram,
    canonical_directions,
    constraint_direction,
    normalize_direction,
)
from repro.geometry.primitives import LinearConstraint

#: The model kinds :func:`make_model` accepts by name.
MODEL_KINDS = ("uniform", "histogram", "ensemble")

#: Cosine similarity below which HistogramModel distrusts its nearest
#: canonical direction and falls back to the sample estimate (~5.7°).
DEFAULT_MIN_COSINE = 0.995


def _reservoir_insert(sample: np.ndarray, rng: np.random.Generator,
                      live_size: int, point: Sequence[float]) -> None:
    """One reservoir-sampling step: keep the sample uniform over inserts.

    Replaces a uniformly-chosen row with probability
    ``len(sample)/live_size`` — the classic algorithm-R update, shared by
    both models so their sample semantics can never diverge.
    """
    if len(sample) == 0:
        return
    slot = int(rng.integers(max(live_size, 1)))
    if slot < len(sample):
        sample[slot] = np.asarray(point, dtype=float)


def _reservoir_evict(sample: np.ndarray, rng: np.random.Generator,
                     point: Sequence[float]) -> None:
    """Purge a deleted point from the sample.

    Rows equal to the deleted point are overwritten with copies of
    uniformly-chosen surviving rows: the sample stays fixed-size and
    free of dead points (a slight duplication bias, far smaller than the
    unbounded bias of estimating against points that no longer exist).
    """
    if len(sample) == 0:
        return
    row = np.asarray(point, dtype=float)
    dead = np.flatnonzero(np.all(sample == row, axis=1))
    if len(dead) == 0 or len(dead) == len(sample):
        return
    alive = np.setdiff1d(np.arange(len(sample)), dead)
    for slot in dead:
        sample[slot] = sample[int(rng.choice(alive))]


class SelectivityModel(abc.ABC):
    """Estimates what fraction of a dataset satisfies a constraint.

    Subclasses implement :meth:`estimate_selectivity`; the base class
    turns it into an output-count estimate against the *live* size
    (build size plus observed inserts minus deletes) and provides the
    no-op mutation/drift hooks.
    """

    #: Short kind name ("uniform" / "histogram") used in configs.
    name = "abstract"

    def __init__(self, dimension: int, size: int):
        self._dimension = int(dimension)
        self._size = int(size)
        self._observed_inserts = 0
        self._observed_deletes = 0

    @property
    def dimension(self) -> int:
        """Ambient dimension of the modelled points."""
        return self._dimension

    @property
    def size(self) -> int:
        """Live number of modelled points (tracks observed mutations)."""
        return self._size

    def _check_dimension(self, constraint: LinearConstraint) -> None:
        if constraint.dimension != self._dimension:
            raise ValueError(
                "constraint dimension %d does not match dataset dimension %d"
                % (constraint.dimension, self._dimension))

    @abc.abstractmethod
    def estimate_selectivity(self, constraint: LinearConstraint) -> float:
        """Fraction of points expected to satisfy ``constraint``."""

    def estimate_output(self, constraint: LinearConstraint) -> int:
        """Expected number of reported points (the paper's T)."""
        return int(round(self.estimate_selectivity(constraint) * self._size))

    # ------------------------------------------------------------------
    # mutation feedback (wired to dynamic-index point listeners)
    # ------------------------------------------------------------------
    def observe_insert(self, point: Sequence[float]) -> None:
        """Fold one inserted point into the statistics."""
        self._size += 1
        self._observed_inserts += 1

    def observe_delete(self, point: Sequence[float]) -> None:
        """Fold one deleted point out of the statistics."""
        self._size = max(0, self._size - 1)
        self._observed_deletes += 1

    def note_estimation_feedback(self, constraint: LinearConstraint,
                                 expected: float, actual: int) -> None:
        """Post-execution q-error feedback for one served constraint.

        The executor reports every (estimated, observed) output pair
        back through this hook.  The base models ignore it; adaptive
        models (:class:`HistogramModel` with ``adapt_after`` set) fold
        it into their structure — e.g. re-aiming histogram directions at
        the workload actually being served.
        """

    @property
    def observed_inserts(self) -> int:
        """Inserts this model has observed (one per *logical* mutation).

        The engine wires point hooks to the primary replica only, so a
        write fanned out to N replicas must land here exactly once —
        the counter is how tests (and dashboards) verify that.
        """
        return self._observed_inserts

    @property
    def observed_deletes(self) -> int:
        """Deletes this model has observed (one per logical mutation)."""
        return self._observed_deletes

    def drift(self) -> float:
        """How far mutations have skewed the statistics (1.0 = none).

        Models without a drift signal return 0.0 so they never trip a
        drift-based rebalance trigger on their own.
        """
        return 0.0

    def describe(self) -> Dict[str, object]:
        """JSON-friendly model summary (benchmarks persist these)."""
        return {"model": self.name, "size": self._size,
                "observed_inserts": self._observed_inserts,
                "observed_deletes": self._observed_deletes}


class UniformSampleModel(SelectivityModel):
    """The original sample-scan estimator, relocated behind the seam.

    Holds a *reference* to the dataset's in-memory sample (the same array
    the degraded-answer path scans, so the two can never drift apart) and
    keeps it fresh under inserts with reservoir sampling: each insert
    replaces a uniformly-chosen sample row with probability
    ``len(sample)/live_size``, preserving uniformity over the live set.
    """

    name = "uniform"

    def __init__(self, sample: np.ndarray, dimension: int, size: int,
                 seed: Optional[int] = None):
        super().__init__(dimension, size)
        self._sample = np.asarray(sample, dtype=float)
        self._rng = np.random.default_rng(seed)

    def estimate_selectivity(self, constraint: LinearConstraint) -> float:
        if len(self._sample):
            self._check_dimension(constraint)
        return selectivity_on_sample(self._sample, self._dimension, constraint)

    def observe_insert(self, point: Sequence[float]) -> None:
        super().observe_insert(point)
        _reservoir_insert(self._sample, self._rng, self._size, point)

    def observe_delete(self, point: Sequence[float]) -> None:
        super().observe_delete(point)
        _reservoir_evict(self._sample, self._rng, point)

    def describe(self) -> Dict[str, object]:
        payload = super().describe()
        payload["sample_size"] = int(len(self._sample))
        return payload


class HistogramModel(SelectivityModel):
    """Directional equi-depth histograms with nearest-direction answering.

    Parameters
    ----------
    points:
        The dataset's points (projections are computed once at build).
    dimension:
        Ambient dimension (defaults to ``points.shape[1]``).
    directions:
        Canonical directions to histogram; defaults to
        :func:`~repro.engine.stats.histograms.canonical_directions`
        (axis + principal directions + fill).  Rows are normalised.
    num_buckets:
        Buckets per histogram (each holds ``N/num_buckets`` points).
    min_cosine:
        A query whose residual direction is farther than this cosine from
        every canonical direction falls back to the sample estimate (set
        to -1 to force histogram answers; requires a sample otherwise).
    sample:
        The dataset's uniform sample, used for the fallback and kept
        reservoir-fresh under inserts like :class:`UniformSampleModel`.
    adapt_after / adapt_qerror:
        Workload adaptation knobs.  With ``adapt_after > 0``, q-error
        feedback from the executor accumulates per direction; once a
        direction has priced ``adapt_after`` queries with a geometric-
        mean q-error of at least ``adapt_qerror``, it is dropped and a
        replacement — the most recent query direction the set failed to
        cover, or a re-fit of the same direction — is fitted from the
        sample reservoir.  ``adapt_after=0`` (default) disables
        adaptation entirely.
    """

    name = "histogram"

    def __init__(self, points: np.ndarray,
                 dimension: Optional[int] = None,
                 directions: Optional[Sequence[Sequence[float]]] = None,
                 num_buckets: int = 64,
                 min_cosine: float = DEFAULT_MIN_COSINE,
                 sample: Optional[np.ndarray] = None,
                 seed: Optional[int] = None,
                 adapt_after: int = 0,
                 adapt_qerror: float = 4.0):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must have shape (N >= 1, d), got %r"
                             % (points.shape,))
        super().__init__(dimension if dimension is not None
                         else points.shape[1], len(points))
        if directions is None:
            self._directions = canonical_directions(points, seed=seed)
        else:
            self._directions = np.asarray(
                [normalize_direction(row) for row in directions])
        if len(self._directions) == 0:
            raise ValueError("need at least one canonical direction")
        if self._directions.shape[1] != self._dimension:
            raise ValueError("direction dimension %d does not match dataset "
                             "dimension %d" % (self._directions.shape[1],
                                               self._dimension))
        self._min_cosine = float(min_cosine)
        self._num_buckets = int(num_buckets)
        # One matmul projects the whole dataset onto every canonical
        # direction at once; column k feeds direction k's histogram.
        projections = points @ self._directions.T
        self._histograms = [EquiDepthHistogram(projections[:, column],
                                               num_buckets=num_buckets)
                            for column in range(self._directions.shape[0])]
        # Workload adaptation state: per-direction feedback counts and
        # accumulated log q-error, plus the most recent query directions
        # the canonical set failed to cover (replacement candidates).
        self._adapt_after = int(adapt_after)
        self._adapt_qerror = float(adapt_qerror)
        self._dir_observations = np.zeros(len(self._directions), dtype=int)
        self._dir_log_qerror = np.zeros(len(self._directions), dtype=float)
        self._missed_directions = deque(maxlen=16)
        self._adaptations = 0
        self._sample = None if sample is None \
            else np.asarray(sample, dtype=float)
        if (self._sample is None or len(self._sample) == 0) \
                and self._min_cosine > -1.0:
            # Without a fallback, an off-direction query would be priced
            # from a badly-mismatched histogram with no signal at all.
            raise ValueError(
                "HistogramModel needs a fallback sample while min_cosine "
                "> -1; pass sample=..., or set min_cosine=-1 to accept "
                "nearest-direction answers unconditionally")
        self._rng = np.random.default_rng(seed)
        self._fallbacks = 0

    @property
    def num_directions(self) -> int:
        return len(self._directions)

    @property
    def fallbacks(self) -> int:
        """How many estimates fell back to the sample (poor direction fit)."""
        return self._fallbacks

    def estimate_selectivity(self, constraint: LinearConstraint) -> float:
        self._check_dimension(constraint)
        unit, scale = constraint_direction(constraint)
        cosines = self._directions @ unit
        best = int(np.argmax(cosines))
        if cosines[best] < self._min_cosine:
            self._fallbacks += 1
            return selectivity_on_sample(self._sample, self._dimension,
                                         constraint)
        return self._histograms[best].selectivity(constraint.offset / scale)

    # ------------------------------------------------------------------
    # mutation feedback
    # ------------------------------------------------------------------
    def observe_insert(self, point: Sequence[float]) -> None:
        super().observe_insert(point)
        row = np.asarray(point, dtype=float)
        values = self._directions @ row   # one matvec for every direction
        for value, histogram in zip(values, self._histograms):
            histogram.insert(float(value))
        if self._sample is not None:
            _reservoir_insert(self._sample, self._rng, self._size, row)

    def observe_delete(self, point: Sequence[float]) -> None:
        super().observe_delete(point)
        row = np.asarray(point, dtype=float)
        values = self._directions @ row
        for value, histogram in zip(values, self._histograms):
            histogram.delete(float(value))
        if self._sample is not None:
            _reservoir_evict(self._sample, self._rng, row)

    # ------------------------------------------------------------------
    # workload adaptation (q-error feedback)
    # ------------------------------------------------------------------
    def note_estimation_feedback(self, constraint: LinearConstraint,
                                 expected: float, actual: int) -> None:
        """Accumulate one query's q-error against the direction that
        priced it; adapt the direction set when one goes persistently
        bad (see the ``adapt_after`` / ``adapt_qerror`` knobs)."""
        if self._adapt_after <= 0:
            return
        if constraint.dimension != self._dimension:
            return
        error = max((float(expected) + 1.0) / (actual + 1.0),
                    (actual + 1.0) / (float(expected) + 1.0))
        unit, __ = constraint_direction(constraint)
        cosines = self._directions @ unit
        best = int(np.argmax(cosines))
        if cosines[best] < self._min_cosine:
            # The set failed to cover this query at all: remember its
            # direction as a replacement candidate rather than blaming
            # the (unused) nearest histogram.
            self._missed_directions.append(np.asarray(unit, dtype=float))
            return
        self._dir_observations[best] += 1
        self._dir_log_qerror[best] += math.log(error)
        self._maybe_adapt()

    def _maybe_adapt(self) -> None:
        """Drop the worst direction and re-fit a replacement in place.

        Eligible directions have at least ``adapt_after`` feedback
        pairs; the worst one's *geometric-mean* q-error must reach
        ``adapt_qerror``.  The replacement histogram is fitted from the
        sample reservoir (the only point set the model still holds), and
        the swap rebinds copied arrays atomically so concurrent
        estimators read either the old set or the new one, never a
        half-updated row."""
        if self._sample is None or len(self._sample) == 0:
            return
        eligible = np.flatnonzero(self._dir_observations
                                  >= self._adapt_after)
        if len(eligible) == 0:
            return
        means = np.exp(self._dir_log_qerror[eligible]
                       / self._dir_observations[eligible])
        worst_at = int(np.argmax(means))
        if means[worst_at] < self._adapt_qerror:
            return
        worst = int(eligible[worst_at])
        replacement = self._replacement_direction(worst)
        directions = self._directions.copy()
        directions[worst] = replacement
        histograms = list(self._histograms)
        histograms[worst] = EquiDepthHistogram(
            self._sample @ replacement, num_buckets=self._num_buckets)
        self._directions = directions
        self._histograms = histograms
        self._dir_observations[worst] = 0
        self._dir_log_qerror[worst] = 0.0
        self._adaptations += 1

    def _replacement_direction(self, worst: int) -> np.ndarray:
        """The direction replacing a dropped one: the newest missed
        query direction not already covered by a *surviving* direction,
        else a re-fit of the dropped direction itself (its histogram is
        rebuilt from the current reservoir, which tracked mutations the
        original build never saw)."""
        keep = np.delete(np.arange(len(self._directions)), worst)
        for position in range(len(self._missed_directions) - 1, -1, -1):
            candidate = self._missed_directions[position]
            if len(keep) == 0 or np.max(
                    self._directions[keep] @ candidate) < self._min_cosine:
                del self._missed_directions[position]
                return normalize_direction(candidate)
        return self._directions[worst]

    @property
    def adaptations(self) -> int:
        """How many directions workload feedback has replaced."""
        return self._adaptations

    def direction_qerror(self) -> list:
        """Per-direction feedback counts and geometric-mean q-error.

        One entry per canonical direction (index order), with the number
        of queries that direction has priced since its last replacement
        and the geometric mean of their q-errors (``None`` before any
        feedback).  This is the internal signal :meth:`_maybe_adapt`
        acts on, surfaced for ``EngineStats.summary()["stats"]`` and the
        ``/metrics`` gauges.
        """
        out = []
        for position in range(len(self._directions)):
            count = int(self._dir_observations[position])
            out.append({
                "direction": position,
                "observations": count,
                "qerror": None if count == 0 else float(
                    math.exp(self._dir_log_qerror[position] / count)),
            })
        return out

    def drift(self) -> float:
        """Worst per-direction bucket skew relative to build time.

        Inserts concentrated in one region of one direction drive a
        single equi-depth bucket far above its fair share; the maximum
        over directions is the signal the rebalance trigger compares
        against its threshold.
        """
        return max(histogram.drift() for histogram in self._histograms)

    def describe(self) -> Dict[str, object]:
        payload = super().describe()
        payload["directions"] = self.num_directions
        payload["buckets"] = self._histograms[0].num_buckets
        payload["fallbacks"] = self._fallbacks
        payload["adaptations"] = self._adaptations
        return payload


class EnsembleModel(SelectivityModel):
    """Uniform-sample and histogram models aggregated by e-weights.

    Runs a :class:`UniformSampleModel` and a :class:`HistogramModel`
    over the same points and (shared) sample, answering with the
    weight-averaged selectivity.  Weights are updated online in the
    e-value style: after every served query each member is scored by its
    *own* estimate's q-error against the actual count, and its weight is
    multiplied by ``qerror ** -learning_rate`` (a per-query e-factor —
    small for members that keep mispricing, ~1 for members that track
    the workload).  Products of those factors are exactly what the
    weights hold, kept in log space and renormalised so they never
    over/underflow.

    The point of the construction: nobody has to choose between the
    members up front.  On smooth data the uniform sample is unbiased and
    cheap; on the paper's adversarial diagonal the histogram resolves
    the deep tail the sample can't — the ensemble starts at an even
    split and converges onto whichever member the live workload proves
    out, while the loser's weight decays geometrically.

    Parameters
    ----------
    points / sample / dimension / seed:
        As for the member models; both members share the one ``sample``
        array (the same reference the degraded-answer path scans).
    learning_rate:
        Exponent on each per-query e-factor.  1.0 bets the full
        observed q-error each query (fast convergence, twitchy under
        noise); the 0.5 default halves the log-loss per step — a
        mis-specified member still loses ~30% of its weight every
        doubling of q-error.
    uniform_params / histogram_params:
        Extra constructor kwargs forwarded to the respective member
        (e.g. ``histogram_params={"adapt_after": 32}``).
    """

    name = "ensemble"

    #: Member order is part of the model's contract: weights, q-error
    #: summaries, and worker rebuilds all index members by this tuple.
    MEMBER_NAMES = ("uniform", "histogram")

    def __init__(self, points: np.ndarray,
                 sample: Optional[np.ndarray] = None,
                 dimension: Optional[int] = None,
                 seed: Optional[int] = None,
                 learning_rate: float = 0.5,
                 uniform_params: Optional[Dict[str, object]] = None,
                 histogram_params: Optional[Dict[str, object]] = None):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must have shape (N >= 1, d), got %r"
                             % (points.shape,))
        super().__init__(dimension if dimension is not None
                         else points.shape[1], len(points))
        if learning_rate <= 0.0:
            raise ValueError("learning_rate must be > 0, got %r"
                             % learning_rate)
        self._learning_rate = float(learning_rate)
        uniform_params = dict(uniform_params or {})
        histogram_params = dict(histogram_params or {})
        sample = np.zeros((0, self._dimension)) if sample is None \
            else np.asarray(sample, dtype=float)
        self._members = (
            UniformSampleModel(sample, dimension=self._dimension,
                               size=len(points), seed=seed,
                               **uniform_params),
            HistogramModel(points, dimension=self._dimension, sample=sample,
                           seed=seed, **histogram_params),
        )
        self._log_weights = np.zeros(len(self._members))
        self._member_observations = np.zeros(len(self._members), dtype=int)
        self._member_log_qerror = np.zeros(len(self._members))
        self._feedback = 0

    @property
    def members(self) -> Sequence[SelectivityModel]:
        """The member models, in :attr:`MEMBER_NAMES` order."""
        return self._members

    @property
    def weights(self) -> Dict[str, float]:
        """Current normalised member weights by member name."""
        raw = np.exp(self._log_weights - np.max(self._log_weights))
        normalised = raw / raw.sum()
        return {name: float(weight)
                for name, weight in zip(self.MEMBER_NAMES, normalised)}

    @property
    def feedback_count(self) -> int:
        """How many served queries have updated the weights."""
        return self._feedback

    def member_qerror(self) -> Dict[str, Optional[float]]:
        """Each member's geometric-mean q-error over its own estimates."""
        summary: Dict[str, Optional[float]] = {}
        for position, name in enumerate(self.MEMBER_NAMES):
            count = int(self._member_observations[position])
            summary[name] = None if count == 0 else float(
                math.exp(self._member_log_qerror[position] / count))
        return summary

    def estimate_selectivity(self, constraint: LinearConstraint) -> float:
        self._check_dimension(constraint)
        raw = np.exp(self._log_weights - np.max(self._log_weights))
        estimates = np.array([member.estimate_selectivity(constraint)
                              for member in self._members])
        return float(np.dot(raw / raw.sum(), estimates))

    # ------------------------------------------------------------------
    # mutation feedback — forwarded so member sizes/structures track.
    # Both members share one sample array and seed-identical RNGs, so
    # their reservoir updates land on the same rows; the shared sample
    # stays a valid uniform reservoir either way.
    # ------------------------------------------------------------------
    def observe_insert(self, point: Sequence[float]) -> None:
        super().observe_insert(point)
        for member in self._members:
            member.observe_insert(point)

    def observe_delete(self, point: Sequence[float]) -> None:
        super().observe_delete(point)
        for member in self._members:
            member.observe_delete(point)

    # ------------------------------------------------------------------
    # q-error feedback — the e-weight update
    # ------------------------------------------------------------------
    def note_estimation_feedback(self, constraint: LinearConstraint,
                                 expected: float, actual: int) -> None:
        """Score every member on its own estimate and reweight.

        ``expected`` (the ensemble's aggregate estimate, already scored
        by the engine's q-error stats) is deliberately unused: each
        member is judged by what *it* would have answered, which is the
        signal that separates them.  Members receive their own-estimate
        feedback too, so an adaptive histogram member re-aims its
        directions exactly as it would standalone.
        """
        if constraint.dimension != self._dimension:
            return
        for position, member in enumerate(self._members):
            member_expected = member.estimate_output(constraint)
            error = math.log(
                max((member_expected + 1.0) / (actual + 1.0),
                    (actual + 1.0) / (member_expected + 1.0)))
            self._member_observations[position] += 1
            self._member_log_qerror[position] += error
            self._log_weights[position] -= self._learning_rate * error
            member.note_estimation_feedback(
                constraint, member_expected, actual)
        # Renormalise in log space; only weight *ratios* matter.
        self._log_weights -= np.max(self._log_weights)
        self._feedback += 1

    def drift(self) -> float:
        """Worst member drift (either member can trip a rebalance)."""
        return max(member.drift() for member in self._members)

    def describe(self) -> Dict[str, object]:
        payload = super().describe()
        payload["weights"] = self.weights
        payload["member_qerror"] = self.member_qerror()
        payload["feedback"] = self._feedback
        payload["members"] = {name: member.describe()
                              for name, member
                              in zip(self.MEMBER_NAMES, self._members)}
        return payload


def make_model(spec: object, points: np.ndarray, sample: np.ndarray,
               seed: Optional[int] = None, **params) -> SelectivityModel:
    """Build a selectivity model from a spec.

    ``spec`` is a kind name (``"uniform"`` / ``"histogram"`` /
    ``"ensemble"``), a callable ``f(points, sample, seed, **params) ->
    SelectivityModel`` for custom models, or ``None`` (the uniform
    default).  ``params`` are forwarded to the model constructor (e.g.
    ``num_buckets`` / ``directions`` / ``min_cosine`` for histograms,
    ``learning_rate`` / ``histogram_params`` for the ensemble).
    """
    points = np.asarray(points, dtype=float)
    if spec is None:
        spec = "uniform"
    if callable(spec):
        return spec(points=points, sample=sample, seed=seed, **params)
    if spec == "uniform":
        return UniformSampleModel(sample, dimension=points.shape[1],
                                  size=len(points), seed=seed, **params)
    if spec == "histogram":
        return HistogramModel(points, sample=sample, seed=seed, **params)
    if spec == "ensemble":
        return EnsembleModel(points, sample=sample, seed=seed, **params)
    raise ValueError("unknown selectivity model %r (expected one of %s, or "
                     "a callable)" % (spec, ", ".join(MODEL_KINDS)))
