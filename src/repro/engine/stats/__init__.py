"""The statistics subsystem: pluggable selectivity estimation.

The paper's query bounds are output-sensitive, so every planner decision
hinges on the expected output size T.  This package owns that estimate:

* :class:`~repro.engine.stats.models.SelectivityModel` — the seam; one
  model per dataset and one per shard child, so sharded plans are priced
  with shard-local statistics;
* :class:`~repro.engine.stats.models.UniformSampleModel` — evaluate the
  constraint on a uniform in-memory sample (the original estimator);
* :class:`~repro.engine.stats.models.HistogramModel` — equi-depth
  histograms of projections onto canonical directions, answered by
  nearest direction with a sample fallback — resolves the deep tail on
  skewed data like the §1.2 diagonal;
* :class:`~repro.engine.stats.models.EnsembleModel` — both of the above
  side by side, aggregated with e-value-style weights updated online
  from per-query q-error, so the live workload picks the better member;
* :class:`~repro.engine.stats.conformal.ConformalCalibrator` —
  distribution-free count intervals calibrated per dataset from the
  executor's (estimate, actual) feedback pairs, replacing the ad-hoc
  normal approximation on degraded answers;
* :class:`~repro.engine.stats.histograms.EquiDepthHistogram` and the
  direction helpers the histogram model composes.

Models accept mutation feedback (``observe_insert``/``observe_delete``,
wired to dynamic-index point listeners by the engine) and expose a
``drift()`` signal the shard :class:`~repro.engine.sharding.
RebalanceManager` uses to detect when inserts have skewed a shard's
statistics.
"""

from repro.engine.stats.histograms import (
    EquiDepthHistogram,
    canonical_directions,
    constraint_direction,
    normalize_direction,
    principal_directions,
)
from repro.engine.stats.conformal import (
    DEFAULT_COVERAGE,
    DEFAULT_MIN_CALIBRATION,
    DEFAULT_WINDOW,
    ConformalCalibrator,
    scaled_residual,
)
from repro.engine.stats.models import (
    DEFAULT_MIN_COSINE,
    EnsembleModel,
    HistogramModel,
    MODEL_KINDS,
    SelectivityModel,
    UniformSampleModel,
    make_model,
)

__all__ = [
    "ConformalCalibrator",
    "DEFAULT_COVERAGE",
    "DEFAULT_MIN_CALIBRATION",
    "DEFAULT_MIN_COSINE",
    "DEFAULT_WINDOW",
    "EnsembleModel",
    "EquiDepthHistogram",
    "HistogramModel",
    "MODEL_KINDS",
    "SelectivityModel",
    "UniformSampleModel",
    "canonical_directions",
    "constraint_direction",
    "make_model",
    "normalize_direction",
    "principal_directions",
    "scaled_residual",
]
