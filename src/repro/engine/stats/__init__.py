"""The statistics subsystem: pluggable selectivity estimation.

The paper's query bounds are output-sensitive, so every planner decision
hinges on the expected output size T.  This package owns that estimate:

* :class:`~repro.engine.stats.models.SelectivityModel` — the seam; one
  model per dataset and one per shard child, so sharded plans are priced
  with shard-local statistics;
* :class:`~repro.engine.stats.models.UniformSampleModel` — evaluate the
  constraint on a uniform in-memory sample (the original estimator);
* :class:`~repro.engine.stats.models.HistogramModel` — equi-depth
  histograms of projections onto canonical directions, answered by
  nearest direction with a sample fallback — resolves the deep tail on
  skewed data like the §1.2 diagonal;
* :class:`~repro.engine.stats.histograms.EquiDepthHistogram` and the
  direction helpers the histogram model composes.

Models accept mutation feedback (``observe_insert``/``observe_delete``,
wired to dynamic-index point listeners by the engine) and expose a
``drift()`` signal the shard :class:`~repro.engine.sharding.
RebalanceManager` uses to detect when inserts have skewed a shard's
statistics.
"""

from repro.engine.stats.histograms import (
    EquiDepthHistogram,
    canonical_directions,
    constraint_direction,
    normalize_direction,
    principal_directions,
)
from repro.engine.stats.models import (
    DEFAULT_MIN_COSINE,
    HistogramModel,
    MODEL_KINDS,
    SelectivityModel,
    UniformSampleModel,
    make_model,
)

__all__ = [
    "DEFAULT_MIN_COSINE",
    "EquiDepthHistogram",
    "HistogramModel",
    "MODEL_KINDS",
    "SelectivityModel",
    "UniformSampleModel",
    "canonical_directions",
    "constraint_direction",
    "make_model",
    "normalize_direction",
    "principal_directions",
]
