"""Distribution-free conformal intervals on the engine's count estimates.

Every layer of the engine used to invent its own uncertainty story: the
degraded-answer path carried an ad-hoc ~95% normal approximation
(:func:`repro.engine.serving.admission.scaled_count_estimate`), planner
estimates carried none at all.  This module is the one shared story —
split-conformal prediction over the executor's existing
``(estimate, actual)`` feedback pairs, following the conformal
e-prediction line in PAPERS.md.

The construction is the textbook one, adapted to counts:

* every served query already reports its estimated and actual output
  size back through :meth:`EngineStats.note_estimation`; each pair
  contributes one *conformity score* — the absolute residual scaled by
  the estimate's magnitude (:func:`scaled_residual`), so a single
  quantile works across selectivities spanning orders of magnitude;
* scores accumulate in a bounded FIFO per dataset (a sliding
  calibration window, so the intervals track drifting workloads);
* an interval around a fresh estimate is the estimate ± the
  finite-sample-corrected ``ceil((n+1)·coverage)``-th smallest score,
  rescaled back into count units.  Under exchangeability the interval
  covers the true count with probability at least ``coverage`` — no
  distributional assumption on the data or the estimator.

Cold start is explicit: until a dataset's calibration set holds
``min_calibration`` pairs (and enough of them to certify the requested
coverage at all — ``ceil((n+1)·coverage) ≤ n``), :meth:`interval`
returns ``None`` and callers fall back to the normal approximation,
labelling the answer ``interval_source="normal_fallback"`` instead of
``"conformal"``.

The calibrator also tracks *prequential* empirical coverage: before a
new pair is folded in, the interval the calibrator would have produced
for it is checked against the actual count.  Those counters are what the
bench's conformal-coverage experiment (and ``EngineStats.summary()``)
report, and what the ±5-point acceptance gate measures.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, Optional, Tuple

#: Default nominal coverage (matches the ~95% normal approximation the
#: conformal intervals replace).
DEFAULT_COVERAGE = 0.95

#: Default bound on each per-dataset calibration set.  256 pairs keep
#: the quantile responsive to workload drift while giving the 95% level
#: a comfortable finite-sample margin (needs ``n >= 19``).
DEFAULT_WINDOW = 256

#: Pairs required before conformal intervals are served at all — below
#: this the quantile is noise and callers use the normal fallback.
DEFAULT_MIN_CALIBRATION = 32


def scaled_residual(estimate: float, actual: float) -> float:
    """The conformity score for one ``(estimate, actual)`` pair.

    The absolute residual divided by ``|estimate| + 1``: a query
    estimated at 10 that returned 20 scores the same as one estimated at
    1000 that returned 2000, so one calibration quantile prices the
    whole selectivity range instead of being dominated by the largest
    counts.  The ``+1`` keeps zero estimates finite.
    """
    estimate = float(estimate)
    return abs(float(actual) - estimate) / (abs(estimate) + 1.0)


class _Calibration:
    """One dataset's bounded score window plus coverage counters."""

    __slots__ = ("scores", "intervals", "covered")

    def __init__(self, window: int):
        self.scores: Deque[float] = deque(maxlen=window)
        self.intervals = 0
        self.covered = 0


class ConformalCalibrator:
    """Per-dataset split-conformal calibration over count residuals.

    Thread-safe (the executor feeds it from worker threads while the
    serving path reads intervals from the event loop).  One calibrator
    serves every dataset in an engine; sets are keyed by dataset name
    and created lazily on first feedback.

    Parameters
    ----------
    coverage:
        Nominal coverage of the intervals (the knob: 0.95 means "the
        true count falls inside at least 95% of the time").  Higher
        coverage needs more calibration pairs before intervals can be
        certified at all: ``ceil((n+1)·coverage)`` must be ≤ ``n``, so
        0.95 needs 19+ pairs, 0.99 needs 99+.
    window:
        Bound on each per-dataset calibration set (FIFO eviction).
    min_calibration:
        Pairs required before :meth:`interval` stops returning ``None``.
    """

    def __init__(self, coverage: float = DEFAULT_COVERAGE,
                 window: int = DEFAULT_WINDOW,
                 min_calibration: int = DEFAULT_MIN_CALIBRATION):
        if not 0.0 < coverage < 1.0:
            raise ValueError("coverage must be in (0, 1), got %r" % coverage)
        if int(window) < 1:
            raise ValueError("window must be >= 1, got %r" % window)
        self._coverage = float(coverage)
        self._window = int(window)
        self._min_calibration = max(1, int(min_calibration))
        self._sets: Dict[str, _Calibration] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @property
    def coverage(self) -> float:
        """Nominal coverage of the served intervals."""
        return self._coverage

    @property
    def window(self) -> int:
        """Bound on each per-dataset calibration set."""
        return self._window

    @property
    def min_calibration(self) -> int:
        """Pairs required before intervals are served."""
        return self._min_calibration

    def config(self) -> Dict[str, object]:
        """The knobs as a plain dict (travels in worker build specs)."""
        return {"coverage": self._coverage, "window": self._window,
                "min_calibration": self._min_calibration}

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------
    def observe(self, dataset: str, estimate: float, actual: int) -> None:
        """Fold one served query's ``(estimate, actual)`` pair in.

        Before the pair joins the window it is *scored against* the
        current calibration — would the interval have covered the actual
        count? — which is the prequential empirical-coverage signal the
        bench gate checks.  (Scoring first keeps the check honest: the
        pair never helps cover itself.)
        """
        with self._lock:
            calibration = self._sets.setdefault(
                dataset, _Calibration(self._window))
            quantile = self._quantile_of(calibration, self._coverage)
            if quantile is not None:
                low, high = _interval_around(float(estimate), quantile)
                calibration.intervals += 1
                if low <= int(actual) <= high:
                    calibration.covered += 1
            calibration.scores.append(scaled_residual(estimate, actual))

    # ------------------------------------------------------------------
    # intervals
    # ------------------------------------------------------------------
    def size(self, dataset: str) -> int:
        """Calibration pairs currently held for a dataset."""
        with self._lock:
            calibration = self._sets.get(dataset)
            return 0 if calibration is None else len(calibration.scores)

    def ready(self, dataset: str,
              coverage: Optional[float] = None) -> bool:
        """Whether conformal intervals are being served for a dataset."""
        return self.quantile(dataset, coverage=coverage) is not None

    def quantile(self, dataset: str,
                 coverage: Optional[float] = None) -> Optional[float]:
        """The calibrated score quantile, or ``None`` while cold.

        ``coverage`` overrides the calibrator's nominal level (the bench
        sweeps it to check monotonicity); the finite-sample correction
        ``ceil((n+1)·coverage)`` is applied either way.
        """
        level = self._coverage if coverage is None else float(coverage)
        if not 0.0 < level < 1.0:
            raise ValueError("coverage must be in (0, 1), got %r" % level)
        with self._lock:
            calibration = self._sets.get(dataset)
            if calibration is None:
                return None
            return self._quantile_of(calibration, level)

    def interval(self, dataset: str, estimate: float,
                 population: Optional[int] = None,
                 coverage: Optional[float] = None
                 ) -> Optional[Tuple[int, int]]:
        """A conformal count interval around ``estimate``, or ``None``.

        ``None`` means cold start — fewer than ``min_calibration``
        pairs, or too few to certify the requested coverage — and the
        caller should fall back to its parametric approximation.
        ``population`` clips the upper end (a count can't exceed the
        live dataset size).
        """
        quantile = self.quantile(dataset, coverage=coverage)
        if quantile is None:
            return None
        low, high = _interval_around(float(estimate), quantile)
        if population is not None:
            high = min(high, int(population))
            low = min(low, high)
        return low, high

    # ------------------------------------------------------------------
    # coverage accounting
    # ------------------------------------------------------------------
    def empirical_coverage(self, dataset: str) -> Optional[float]:
        """Observed coverage of the served intervals (prequential)."""
        with self._lock:
            calibration = self._sets.get(dataset)
            if calibration is None or calibration.intervals == 0:
                return None
            return calibration.covered / calibration.intervals

    def describe(self) -> Dict[str, object]:
        """JSON-friendly snapshot: knobs plus per-dataset calibration."""
        with self._lock:
            datasets = {}
            for name, calibration in sorted(self._sets.items()):
                quantile = self._quantile_of(calibration, self._coverage)
                datasets[name] = {
                    "pairs": len(calibration.scores),
                    "ready": quantile is not None,
                    "quantile": quantile,
                    "intervals": calibration.intervals,
                    "covered": calibration.covered,
                    "empirical_coverage": (
                        calibration.covered / calibration.intervals
                        if calibration.intervals else None),
                }
        return {"coverage": self._coverage, "window": self._window,
                "min_calibration": self._min_calibration,
                "datasets": datasets}

    def reset(self) -> None:
        """Drop every calibration set and coverage counter."""
        with self._lock:
            self._sets.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _quantile_of(self, calibration: _Calibration,
                     coverage: float) -> Optional[float]:
        """Finite-sample-corrected quantile of one window (lock held)."""
        n = len(calibration.scores)
        if n < self._min_calibration:
            return None
        rank = math.ceil((n + 1) * coverage)
        if rank > n:
            # Not enough pairs to certify this coverage level at all.
            return None
        return sorted(calibration.scores)[rank - 1]


def _interval_around(estimate: float, quantile: float) -> Tuple[int, int]:
    """Rescale a score quantile back into count units around an estimate.

    Inverts :func:`scaled_residual`: every calibration pair with score
    ≤ ``quantile`` would have had its actual count inside this band.
    Counts are integers, so the band is floored/ceiled outward (never
    narrowed) and clipped at zero.
    """
    half = quantile * (abs(estimate) + 1.0)
    low = max(0, int(math.floor(estimate - half)))
    high = max(low, int(math.ceil(estimate + half)))
    return low, high
