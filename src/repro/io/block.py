"""Disk blocks for the simulated external memory.

A :class:`Block` is the unit of transfer in the I/O model: it holds at most
``capacity`` records (the paper's parameter ``B``).  Records are arbitrary
Python objects; the simulation counts *records per block*, not bytes, which
matches the way the paper states all of its bounds (``n = N/B`` blocks,
``t = T/B`` output I/Os, and so on).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List

BlockId = int
"""Identifier of a block on the simulated disk (a simple integer address)."""


class Block:
    """A single disk block holding at most ``capacity`` records.

    Blocks are created and owned by a :class:`~repro.io.store.BlockStore`;
    user code normally obtains block *contents* (a list of records) from the
    store rather than manipulating :class:`Block` objects directly.
    """

    __slots__ = ("block_id", "capacity", "records")

    def __init__(self, block_id: BlockId, capacity: int,
                 records: Iterable[Any] = ()):
        if capacity <= 0:
            raise ValueError("block capacity must be positive, got %r" % capacity)
        self.block_id = block_id
        self.capacity = capacity
        self.records: List[Any] = list(records)
        if len(self.records) > capacity:
            raise ValueError(
                "block %d overflow: %d records > capacity %d"
                % (block_id, len(self.records), capacity)
            )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records)

    @property
    def is_full(self) -> bool:
        """True if no more records fit in this block."""
        return len(self.records) >= self.capacity

    @property
    def free_slots(self) -> int:
        """Number of additional records this block can hold."""
        return self.capacity - len(self.records)

    def append(self, record: Any) -> None:
        """Add one record, raising :class:`OverflowError` if the block is full."""
        if self.is_full:
            raise OverflowError(
                "block %d is full (capacity %d)" % (self.block_id, self.capacity)
            )
        self.records.append(record)

    def extend(self, records: Iterable[Any]) -> None:
        """Add several records, raising :class:`OverflowError` on overflow."""
        for record in records:
            self.append(record)

    def copy_records(self) -> List[Any]:
        """Return a shallow copy of the records (what a disk read returns)."""
        return list(self.records)

    def __repr__(self) -> str:
        return "Block(id=%d, %d/%d records)" % (
            self.block_id, len(self.records), self.capacity)
