"""Disk blocks for the simulated external memory.

A :class:`Block` is the unit of transfer in the I/O model: it holds at most
``capacity`` records (the paper's parameter ``B``).  Records are arbitrary
Python objects; the simulation counts *records per block*, not bytes, which
matches the way the paper states all of its bounds (``n = N/B`` blocks,
``t = T/B`` output I/Os, and so on).

Blocks whose records are uniform float tuples — point blocks, by far the
most common payload — additionally have a *columnar* representation: one
contiguous ``(n, d)`` float64 matrix.  :func:`as_point_matrix` is the
single detection rule every layer (backends, the store's buffer pool, the
batch scan kernels) shares, and :class:`BlockPayload` is the read-only
view the store hands to batch consumers: the matrix when the block is
columnar, the plain record list otherwise.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Tuple

import numpy as np

BlockId = int
"""Identifier of a block on the simulated disk (a simple integer address)."""

#: Element type of the columnar representation of point blocks.
POINT_DTYPE = np.float64


def as_point_matrix(records) -> Optional[np.ndarray]:
    """The records as a read-only ``(n, d)`` float64 matrix, or None.

    A block qualifies for the columnar path only when *every* record is a
    non-empty tuple of floats of one common width.  The type check is
    deliberately strict (ints, strings and nested tuples are rejected,
    not coerced): the file backends persist columnar blocks as raw float64
    bytes, so any record that would not round-trip bit-for-bit through
    ``float`` must keep the pickled list path.
    """
    if not records:
        return None
    first = records[0]
    if not isinstance(first, tuple) or not first:
        return None
    width = len(first)
    for record in records:
        if not isinstance(record, tuple) or len(record) != width:
            return None
        for coordinate in record:
            if not isinstance(coordinate, (float, np.floating)):
                return None
    matrix = np.asarray(records, dtype=POINT_DTYPE)
    matrix.setflags(write=False)
    return matrix


def matrix_to_records(matrix: np.ndarray) -> List[Tuple[float, ...]]:
    """Decode a columnar matrix back into the row-tuple record form."""
    return [tuple(row) for row in np.asarray(matrix, dtype=POINT_DTYPE).tolist()]


class BlockPayload:
    """One block's contents as served to batch consumers.

    Exactly one representation is guaranteed present: :attr:`matrix` (a
    read-only ``(n, d)`` float64 ndarray) for columnar point blocks, the
    record list otherwise.  :meth:`records` always works — a columnar
    payload decodes lazily — but callers on the hot path should use the
    matrix directly.  Payloads may share storage with the store's buffer
    pool: treat both representations as **read-only**.
    """

    __slots__ = ("matrix", "_records")

    def __init__(self, matrix: Optional[np.ndarray] = None,
                 records: Optional[List[Any]] = None):
        if matrix is None and records is None:
            raise ValueError("a payload needs a matrix or a record list")
        self.matrix = matrix
        self._records = records

    @property
    def is_columnar(self) -> bool:
        """True if this payload carries the contiguous float64 matrix."""
        return self.matrix is not None

    def records(self) -> List[Any]:
        """The record-list view (decoded from the matrix on demand)."""
        if self._records is None:
            self._records = matrix_to_records(self.matrix)
        return self._records

    def __len__(self) -> int:
        if self._records is not None:
            return len(self._records)
        return int(self.matrix.shape[0])

    def __repr__(self) -> str:
        kind = "columnar" if self.is_columnar else "records"
        return "BlockPayload(%s, %d records)" % (kind, len(self))


class Block:
    """A single disk block holding at most ``capacity`` records.

    Blocks are created and owned by a :class:`~repro.io.store.BlockStore`;
    user code normally obtains block *contents* (a list of records) from the
    store rather than manipulating :class:`Block` objects directly.
    """

    __slots__ = ("block_id", "capacity", "records")

    def __init__(self, block_id: BlockId, capacity: int,
                 records: Iterable[Any] = ()):
        if capacity <= 0:
            raise ValueError("block capacity must be positive, got %r" % capacity)
        self.block_id = block_id
        self.capacity = capacity
        self.records: List[Any] = list(records)
        if len(self.records) > capacity:
            raise ValueError(
                "block %d overflow: %d records > capacity %d"
                % (block_id, len(self.records), capacity)
            )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records)

    @property
    def is_full(self) -> bool:
        """True if no more records fit in this block."""
        return len(self.records) >= self.capacity

    @property
    def free_slots(self) -> int:
        """Number of additional records this block can hold."""
        return self.capacity - len(self.records)

    def append(self, record: Any) -> None:
        """Add one record, raising :class:`OverflowError` if the block is full."""
        if self.is_full:
            raise OverflowError(
                "block %d is full (capacity %d)" % (self.block_id, self.capacity)
            )
        self.records.append(record)

    def extend(self, records: Iterable[Any]) -> None:
        """Add several records, raising :class:`OverflowError` on overflow."""
        for record in records:
            self.append(record)

    def copy_records(self) -> List[Any]:
        """Return a shallow copy of the records (what a disk read returns)."""
        return list(self.records)

    def matrix(self) -> Optional[np.ndarray]:
        """The records as a contiguous ``(n, d)`` float64 matrix, or None.

        Computed on demand (blocks are mutable, so the result is not
        cached here); the store's buffer pool memoizes conversions per
        cached block version instead.
        """
        return as_point_matrix(self.records)

    def __repr__(self) -> str:
        return "Block(id=%d, %d/%d records)" % (
            self.block_id, len(self.records), self.capacity)
