"""Pluggable storage backends for the simulated disk.

:class:`~repro.io.store.BlockStore` charges I/Os; a :class:`StorageBackend`
is where the blocks actually live.  The store performs every block
materialisation through this interface, so the I/O *accounting* is
identical across backends by construction — swapping the backend changes
where bytes go (a Python dict, a file on a real disk), never how many
block transfers the model charges.  Two implementations ship:

* :class:`MemoryBackend` — blocks in a dict; the original behaviour and
  the default.
* :class:`FileBackend` — blocks serialised to a single append-only file
  read back with ``seek``/``read``.  Writes append a fresh copy of the
  block and update an in-memory offset table (a log-structured layout:
  crash-simple, sequential writes); ``compact()`` rewrites live blocks to
  reclaim the space of superseded versions.  Byte counters expose what a
  real disk actually moved, alongside the model's block counts.
* :class:`MmapBackend` — the same log layout, but reads go through an
  :mod:`mmap` view of the file instead of ``seek``/``read`` system calls,
  so repeated block reads measure page-cache behaviour rather than
  syscall traffic.  The mapping is refreshed lazily when appends grow the
  file past the mapped size (and invalidated by compaction, which moves
  live payloads).

Records are arbitrary Python objects, so the file backends serialise each
block with :mod:`pickle` — except *point blocks* (uniform float tuples,
detected by :func:`~repro.io.block.as_point_matrix`), which are written as
a small magic header plus the raw float64 bytes of their ``(n, d)``
matrix.  That columnar encoding is what makes the vectorized read path
cheap: ``get_payload`` can hand back a contiguous ndarray without running
the pickle machinery over every record, and :class:`MmapBackend` serves
it as an ``np.frombuffer`` view of the mapping (materialised into a
private copy before the lock is released, so compaction can never move
bytes under a live view).  Backends are *not* shared between stores.
"""

from __future__ import annotations

import abc
import mmap
import os
import pickle
import struct
import tempfile
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.io.block import (BlockId, POINT_DTYPE, as_point_matrix,
                            matrix_to_records)

#: Per-block header in the file layout: (block_id, payload_length).
_HEADER = struct.Struct("<qq")

#: Payload prefix marking a columnar (raw float64) point block.  Pickled
#: payloads start with the protocol opcode b"\x80", so the two layouts
#: can never be confused.
_COLUMNAR_MAGIC = b"\x01NPB"

#: Columnar payload header after the magic: (num_rows, num_columns).
_COLUMNAR_SHAPE = struct.Struct("<qq")

_COLUMNAR_HEADER = len(_COLUMNAR_MAGIC) + _COLUMNAR_SHAPE.size


def _encode_records(records: List[Any]) -> bytes:
    """Serialise one block: columnar for point blocks, pickle otherwise."""
    matrix = as_point_matrix(records)
    if matrix is None:
        return pickle.dumps(list(records), protocol=pickle.HIGHEST_PROTOCOL)
    return (_COLUMNAR_MAGIC + _COLUMNAR_SHAPE.pack(*matrix.shape)
            + matrix.tobytes())


def _decode_matrix(payload: bytes) -> np.ndarray:
    """The ``(n, d)`` float64 matrix of a columnar payload (zero-copy)."""
    rows, cols = _COLUMNAR_SHAPE.unpack_from(payload, len(_COLUMNAR_MAGIC))
    return np.frombuffer(payload, dtype=POINT_DTYPE, count=rows * cols,
                         offset=_COLUMNAR_HEADER).reshape(rows, cols)


def _decode_records(payload: bytes) -> List[Any]:
    """Deserialise one block payload back into its record list."""
    if not payload:
        return []
    if payload[:len(_COLUMNAR_MAGIC)] == _COLUMNAR_MAGIC:
        return matrix_to_records(_decode_matrix(payload))
    return pickle.loads(payload)


class StorageBackend(abc.ABC):
    """Where a :class:`~repro.io.store.BlockStore`'s blocks physically live.

    The contract mirrors a dict keyed by :data:`~repro.io.block.BlockId`:
    ``put`` creates or overwrites, ``get``/``delete`` raise :class:`KeyError`
    for unknown ids, and ``get`` returns a *fresh* list the caller may
    mutate.  Implementations never count I/Os — that is the store's job.
    """

    #: Short name used in reprs and benchmark labels.
    name: str = "abstract"

    @abc.abstractmethod
    def put(self, block_id: BlockId, records: List[Any]) -> None:
        """Store (create or overwrite) the records of one block."""

    @abc.abstractmethod
    def get(self, block_id: BlockId) -> List[Any]:
        """Return a fresh copy of a block's records (KeyError if missing)."""

    @abc.abstractmethod
    def delete(self, block_id: BlockId) -> None:
        """Forget a block (KeyError if missing)."""

    @abc.abstractmethod
    def contains(self, block_id: BlockId) -> bool:
        """True if the block is currently stored."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored blocks."""

    @abc.abstractmethod
    def block_ids(self) -> Iterator[BlockId]:
        """Iterate over the stored block ids (unspecified order)."""

    def get_payload(self, block_id: BlockId
                    ) -> Tuple[Optional[List[Any]], Optional[np.ndarray]]:
        """One block as ``(records, matrix)`` — exactly one is non-None.

        The batch read path: backends that store (or can cheaply derive)
        a point block's columnar ``(n, d)`` float64 matrix return it in
        the second slot, skipping per-record deserialisation; everything
        else falls back to the record list.  The default delegates to
        :meth:`get`.  Implementations perform exactly the same physical
        work per call as :meth:`get` (one block fetch), so the store can
        charge both paths identically.
        """
        return self.get(block_id), None

    def close(self) -> None:
        """Release any resources (file handles, temp files).  Idempotent."""

    def __contains__(self, block_id: BlockId) -> bool:
        return self.contains(block_id)

    def info(self) -> Dict[str, object]:
        """Backend-specific metrics (for benchmarks and dashboards)."""
        return {"backend": self.name, "blocks": len(self)}

    def __repr__(self) -> str:
        return "%s(blocks=%d)" % (type(self).__name__, len(self))


class MemoryBackend(StorageBackend):
    """Blocks held in a Python dict — the simulator's original behaviour.

    Point blocks additionally get a memoized columnar matrix, built on
    the first :meth:`get_payload` and invalidated by any overwrite: a
    full scan repeated over the same blocks then pays the tuple→ndarray
    conversion once per block, not once per read.  :meth:`get` is
    untouched, so the scalar path costs exactly what it always did.
    """

    name = "memory"

    def __init__(self) -> None:
        self._blocks: Dict[BlockId, List[Any]] = {}
        #: Memoized columnar conversions (None = checked, not columnar).
        self._matrices: Dict[BlockId, Optional[np.ndarray]] = {}

    def put(self, block_id: BlockId, records: List[Any]) -> None:
        self._blocks[block_id] = list(records)
        self._matrices.pop(block_id, None)

    def get(self, block_id: BlockId) -> List[Any]:
        return list(self._blocks[block_id])

    def get_payload(self, block_id: BlockId
                    ) -> Tuple[Optional[List[Any]], Optional[np.ndarray]]:
        records = self._blocks[block_id]
        if block_id not in self._matrices:
            self._matrices[block_id] = as_point_matrix(records)
        matrix = self._matrices[block_id]
        if matrix is not None:
            return None, matrix
        return list(records), None

    def delete(self, block_id: BlockId) -> None:
        del self._blocks[block_id]
        self._matrices.pop(block_id, None)

    def contains(self, block_id: BlockId) -> bool:
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def block_ids(self) -> Iterator[BlockId]:
        return iter(list(self._blocks))


class FileBackend(StorageBackend):
    """Blocks serialised to one append-only file on the real filesystem.

    Parameters
    ----------
    path:
        File to store blocks in.  When omitted a temporary file is created
        and removed again on :meth:`close`.  An existing file written by a
        previous :class:`FileBackend` is recovered by replaying its log,
        so a store can be reopened across processes.
    auto_compact_ratio:
        When the file holds more than this multiple of the live payload
        (garbage from superseded block versions), :meth:`put` triggers a
        :meth:`compact`.  ``0`` disables automatic compaction.
    """

    name = "file"

    def __init__(self, path: Optional[str] = None,
                 auto_compact_ratio: float = 4.0) -> None:
        if auto_compact_ratio and auto_compact_ratio < 1.0:
            raise ValueError("auto_compact_ratio must be >= 1 (or 0 to "
                             "disable), got %r" % auto_compact_ratio)
        self._owns_path = path is None
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-blocks-",
                                        suffix=".log")
            os.close(fd)
        self.path = path
        self._auto_compact_ratio = auto_compact_ratio
        self._lock = threading.Lock()
        # block_id -> (payload offset, payload length) of the live version.
        self._index: Dict[BlockId, Tuple[int, int]] = {}
        self._live_bytes = 0
        self._closed = False
        self.bytes_read = 0
        self.bytes_written = 0
        self.compactions = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a+b")
        self._recover()

    # ------------------------------------------------------------------
    # log plumbing
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild the offset table from an existing log file.

        A record whose payload was only partially written (crash between
        the header and the payload bytes) is detected by bounds-checking
        its length against the file size; the torn tail is truncated away
        so later appends start at a clean record boundary.
        """
        self._handle.seek(0, os.SEEK_END)
        file_size = self._handle.tell()
        self._handle.seek(0)
        position = 0
        while True:
            header = self._handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break
            block_id, length = _HEADER.unpack(header)
            offset = position + _HEADER.size
            if length < 0 or offset + length > file_size:
                break  # torn tail record: everything before it is intact
            if block_id >= 0:
                if block_id in self._index:
                    self._live_bytes -= self._index[block_id][1]
                self._index[block_id] = (offset, length)
                self._live_bytes += length
            else:
                # A tombstone: negative id encodes deletion of ~block_id.
                dead = ~block_id
                entry = self._index.pop(dead, None)
                if entry is not None:
                    self._live_bytes -= entry[1]
            position = offset + length
            self._handle.seek(position)
        if position < file_size:
            self._handle.truncate(position)
        self._handle.seek(0, os.SEEK_END)

    def _append(self, block_id: BlockId, payload: bytes) -> Tuple[int, int]:
        self._handle.seek(0, os.SEEK_END)
        self._handle.write(_HEADER.pack(block_id, len(payload)))
        offset = self._handle.tell()
        self._handle.write(payload)
        self.bytes_written += _HEADER.size + len(payload)
        return offset, len(payload)

    def _file_bytes(self) -> int:
        self._handle.seek(0, os.SEEK_END)
        return self._handle.tell()

    def _live_file_bytes(self) -> int:
        """Bytes a freshly-compacted file would occupy (headers included)."""
        return self._live_bytes + len(self._index) * _HEADER.size

    def _maybe_compact_locked(self) -> None:
        if not self._auto_compact_ratio or not self._index:
            return
        # Compare against what compaction can actually achieve (live
        # payloads *plus* their headers) — comparing to payload bytes
        # alone makes the threshold unsatisfiable for tiny blocks and
        # degenerates into a full rewrite on every put.
        if self._file_bytes() > self._auto_compact_ratio * max(
                1, self._live_file_bytes()):
            self._compact_locked()

    def _compact_locked(self) -> None:
        """Rewrite only the live block versions into a fresh log."""
        live: Dict[BlockId, bytes] = {}
        for block_id, (offset, length) in self._index.items():
            self._handle.seek(offset)
            live[block_id] = self._handle.read(length)
        self._handle.seek(0)
        self._handle.truncate()
        self._index.clear()
        self._live_bytes = 0
        for block_id, payload in sorted(live.items()):
            self._index[block_id] = self._append(block_id, payload)
            self._live_bytes += len(payload)
        self._handle.flush()
        self.compactions += 1

    # ------------------------------------------------------------------
    # StorageBackend interface
    # ------------------------------------------------------------------
    def put(self, block_id: BlockId, records: List[Any]) -> None:
        payload = _encode_records(records)
        with self._lock:
            self._check_open()
            previous = self._index.get(block_id)
            self._index[block_id] = self._append(block_id, payload)
            self._live_bytes += len(payload)
            if previous is not None:
                self._live_bytes -= previous[1]
            self._maybe_compact_locked()

    def _payload_bytes(self, block_id: BlockId) -> bytes:
        """Read one block's raw payload (the single physical fetch)."""
        with self._lock:
            self._check_open()
            offset, length = self._index[block_id]
            self._handle.seek(offset)
            payload = self._handle.read(length)
            self.bytes_read += length
        return payload

    def get(self, block_id: BlockId) -> List[Any]:
        return _decode_records(self._payload_bytes(block_id))

    def get_payload(self, block_id: BlockId
                    ) -> Tuple[Optional[List[Any]], Optional[np.ndarray]]:
        payload = self._payload_bytes(block_id)
        if payload[:len(_COLUMNAR_MAGIC)] == _COLUMNAR_MAGIC:
            # frombuffer over the just-read bytes: no pickle, no copy.
            return None, _decode_matrix(payload)
        return (pickle.loads(payload) if payload else []), None

    def delete(self, block_id: BlockId) -> None:
        with self._lock:
            self._check_open()
            __, length = self._index.pop(block_id)
            self._live_bytes -= length
            # Tombstone so recovery after reopen also forgets the block.
            self._append(~block_id, b"")

    def contains(self, block_id: BlockId) -> bool:
        with self._lock:
            return block_id in self._index

    def __len__(self) -> int:
        return len(self._index)

    def block_ids(self) -> Iterator[BlockId]:
        with self._lock:
            return iter(list(self._index))

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Drop superseded block versions from the file."""
        with self._lock:
            self._check_open()
            self._compact_locked()

    def sync(self) -> None:
        """Flush buffered writes to the OS (fsync the log file)."""
        with self._lock:
            self._check_open()
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._handle.close()
            if self._owns_path:
                try:
                    os.unlink(self.path)
                except OSError:
                    pass

    def __del__(self) -> None:  # best effort for unclosed temp files
        try:
            self.close()
        except Exception:
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("backend for %r is closed" % self.path)

    def info(self) -> Dict[str, object]:
        with self._lock:
            file_bytes = 0 if self._closed else self._file_bytes()
        return {
            "backend": self.name,
            "blocks": len(self),
            "path": self.path,
            "file_bytes": file_bytes,
            "live_bytes": self._live_bytes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "compactions": self.compactions,
        }

    def __repr__(self) -> str:
        return "FileBackend(path=%r, blocks=%d)" % (self.path, len(self))


class MmapBackend(FileBackend):
    """The log-structured file layout read through a memory mapping.

    Writes share :class:`FileBackend`'s append path (sequential, crash
    recoverable); reads slice block payloads out of an ``mmap`` view of
    the file, so hot blocks are served from the OS page cache without a
    ``seek``/``read`` round trip.  The mapping is rebuilt lazily whenever
    a read lands past the mapped size (appends grew the file) and
    invalidated outright by compaction, which relocates live payloads.
    """

    name = "mmap"

    def __init__(self, path: Optional[str] = None,
                 auto_compact_ratio: float = 4.0) -> None:
        self._map: Optional[mmap.mmap] = None
        self._mapped_size = 0
        super().__init__(path=path, auto_compact_ratio=auto_compact_ratio)

    # ------------------------------------------------------------------
    # mapping plumbing (callers hold self._lock)
    # ------------------------------------------------------------------
    def _drop_map_locked(self) -> None:
        if self._map is not None:
            self._map.close()
            self._map = None
        self._mapped_size = 0

    def _remap_locked(self) -> None:
        """(Re)map the current file contents for reading."""
        self._handle.flush()
        size = self._file_bytes()
        self._drop_map_locked()
        if size > 0:
            self._map = mmap.mmap(self._handle.fileno(), size,
                                  access=mmap.ACCESS_READ)
            self._mapped_size = size

    def _compact_locked(self) -> None:
        # Compaction relocates every live payload; the old mapping would
        # serve stale bytes at the new offsets, so drop it first.
        self._drop_map_locked()
        super()._compact_locked()

    # ------------------------------------------------------------------
    # StorageBackend interface
    # ------------------------------------------------------------------
    def get(self, block_id: BlockId) -> List[Any]:
        records, matrix = self.get_payload(block_id)
        if matrix is not None:
            return matrix_to_records(matrix)
        return records

    def get_payload(self, block_id: BlockId
                    ) -> Tuple[Optional[List[Any]], Optional[np.ndarray]]:
        with self._lock:
            self._check_open()
            offset, length = self._index[block_id]
            if self._map is None or offset + length > self._mapped_size:
                self._remap_locked()
            self.bytes_read += length
            if length == 0:
                return [], None
            magic_end = offset + len(_COLUMNAR_MAGIC)
            if self._map[offset:magic_end] == _COLUMNAR_MAGIC:
                # Zero-copy decode: frombuffer views the mapping directly,
                # then one copy detaches the result before the lock is
                # released (compaction relocates payloads, and a closed
                # mmap with live views raises BufferError).
                rows, cols = _COLUMNAR_SHAPE.unpack_from(self._map, magic_end)
                matrix = np.frombuffer(
                    self._map, dtype=POINT_DTYPE, count=rows * cols,
                    offset=offset + _COLUMNAR_HEADER,
                ).reshape(rows, cols).copy()
                return None, matrix
            payload = bytes(self._map[offset:offset + length])
        return pickle.loads(payload), None

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._drop_map_locked()
        super().close()

    def info(self) -> Dict[str, object]:
        payload = super().info()   # reports backend=self.name ("mmap")
        payload["mapped_bytes"] = self._mapped_size
        return payload

    def __repr__(self) -> str:
        return "MmapBackend(path=%r, blocks=%d)" % (self.path, len(self))


#: Backend spec strings accepted by :func:`make_backend`.
BACKEND_NAMES = ("memory", "file", "mmap")


def make_backend(spec: object = None, path: Optional[str] = None
                 ) -> StorageBackend:
    """Resolve a backend spec into a fresh :class:`StorageBackend`.

    ``spec`` may be None / ``"memory"`` (dict-backed), ``"file"``
    (file-backed, optionally at ``path``), ``"mmap"`` (file-backed with
    memory-mapped reads), an already-constructed backend (returned as
    is), or a zero-argument callable producing one.
    """
    if spec is None or spec == "memory":
        return MemoryBackend()
    if spec == "file":
        return FileBackend(path=path)
    if spec == "mmap":
        return MmapBackend(path=path)
    if isinstance(spec, StorageBackend):
        return spec
    if callable(spec):
        backend = spec()
        if not isinstance(backend, StorageBackend):
            raise TypeError("backend factory returned %r, not a "
                            "StorageBackend" % (backend,))
        return backend
    raise ValueError("unknown storage backend %r (expected one of %s, a "
                     "StorageBackend, or a factory)"
                     % (spec, ", ".join(BACKEND_NAMES)))
