"""External multiway merge sort on the simulated disk.

Sorting is the workhorse of external-memory preprocessing: the 2-D
structure sorts lines by slope, the point-location structure sorts triangle
edges by x, and the partition trees sort points along splitting axes.  The
classic bound is O(n log_{M/B} n) I/Os; with the buffer pool sizes used in
this repository the merge degree is ``memory_blocks - 1``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.io.disk_array import DiskArray
from repro.io.store import BlockStore


def external_merge_sort(store: BlockStore, data: DiskArray,
                        key: Optional[Callable[[Any], Any]] = None,
                        memory_blocks: int = 8) -> DiskArray:
    """Sort ``data`` into a new :class:`DiskArray` using multiway merging.

    Parameters
    ----------
    store:
        Disk to allocate runs and the output on.
    data:
        The input array (left untouched).
    key:
        Sort key, as for :func:`sorted`.
    memory_blocks:
        Internal memory size in blocks; run formation reads this many blocks
        at a time and merging uses ``memory_blocks - 1`` input runs.
    """
    if memory_blocks < 2:
        raise ValueError("memory_blocks must be at least 2, got %r" % memory_blocks)
    key = key if key is not None else _identity
    B = store.block_size
    run_length = memory_blocks * B

    # Phase 1: run formation — read M records, sort in memory, write a run.
    runs: List[DiskArray] = []
    buffer: List[Any] = []
    for record in data.scan():
        buffer.append(record)
        if len(buffer) >= run_length:
            runs.append(_write_run(store, buffer, key))
            buffer = []
    if buffer:
        runs.append(_write_run(store, buffer, key))
    if not runs:
        return DiskArray(store)
    # Phase 2: repeatedly merge groups of (memory_blocks - 1) runs.  A merge
    # degree of one would never make progress, so at least two runs are
    # merged per group even in the smallest memory configuration.
    merge_degree = max(2, memory_blocks - 1)
    while len(runs) > 1:
        next_runs: List[DiskArray] = []
        for start in range(0, len(runs), merge_degree):
            group = runs[start:start + merge_degree]
            if len(group) == 1:
                next_runs.append(group[0])
            else:
                merged = _merge_runs(store, group, key)
                for run in group:
                    run.clear()
                next_runs.append(merged)
        runs = next_runs
    return runs[0]


def _identity(value: Any) -> Any:
    return value


def _write_run(store: BlockStore, buffer: List[Any],
               key: Callable[[Any], Any]) -> DiskArray:
    buffer.sort(key=key)
    return DiskArray(store, buffer)


def _merge_runs(store: BlockStore, runs: List[DiskArray],
                key: Callable[[Any], Any]) -> DiskArray:
    output = DiskArray(store)
    iterators = [run.scan() for run in runs]
    heap: List[Any] = []
    for index, iterator in enumerate(iterators):
        first = next(iterator, _SENTINEL)
        if first is not _SENTINEL:
            # The running counter breaks ties so records never get compared.
            heapq.heappush(heap, (key(first), index, first))
    pending: List[Any] = []
    B = store.block_size
    while heap:
        __, index, record = heapq.heappop(heap)
        pending.append(record)
        if len(pending) >= B:
            output.extend(pending)
            pending = []
        nxt = next(iterators[index], _SENTINEL)
        if nxt is not _SENTINEL:
            heapq.heappush(heap, (key(nxt), index, nxt))
    if pending:
        output.extend(pending)
    return output


class _Sentinel:
    __slots__ = ()


_SENTINEL = _Sentinel()
