"""The simulated disk: block allocation, transfers and I/O accounting.

:class:`BlockStore` is the single point through which every data structure
in this repository touches "disk".  It exposes exactly the operations the
external memory model charges for — reading a block and writing a block —
and counts them.  A small LRU buffer pool (``cache_blocks`` blocks, i.e. the
model's ``M/B``) can absorb repeated reads of hot blocks; by default it is
sized to a handful of blocks so that reported counts reflect the structure
of the algorithm rather than incidental caching.

Where the blocks physically live is delegated to a pluggable
:class:`~repro.io.backend.StorageBackend` (an in-memory dict by default, a
real file with :class:`~repro.io.backend.FileBackend`).  Every backend sits
behind the same charging points, so swapping backends changes the medium
without changing any measured I/O count.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, Iterator, List, Optional, Sequence,
                    Tuple)

from repro.io.backend import StorageBackend, make_backend
from repro.io.block import (Block, BlockId, BlockPayload, as_point_matrix,
                            matrix_to_records)
from repro.io.cache import LRUCache


class _CacheEntry:
    """One buffer-pool slot: a block's records, its matrix, or both.

    The pool memoizes whichever representation a read produced and
    converts to the other lazily, at most once per cached version
    (``put``/``write`` install a fresh entry, so mutations can never be
    served from a stale conversion).  ``tried_matrix`` records that a
    columnar conversion was attempted and failed, so non-point blocks
    pay the type scan only once while resident.
    """

    __slots__ = ("records", "matrix", "tried_matrix")

    def __init__(self, records: Optional[List[Any]] = None,
                 matrix: Optional[Any] = None):
        self.records = records
        self.matrix = matrix
        self.tried_matrix = matrix is not None

    def record_list(self) -> List[Any]:
        if self.records is None:
            self.records = matrix_to_records(self.matrix)
        return self.records

    def payload(self) -> BlockPayload:
        if self.matrix is None and not self.tried_matrix:
            self.matrix = as_point_matrix(self.records)
            self.tried_matrix = True
        if self.matrix is not None:
            return BlockPayload(matrix=self.matrix, records=self.records)
        return BlockPayload(records=self.records)


@dataclass
class IOStats:
    """Counters of block transfers performed through a :class:`BlockStore`.

    ``reads`` and ``writes`` are the two directions of block transfer; the
    paper's bounds are stated on their sum (``total``).  ``allocations`` and
    ``frees`` track space usage events and are not charged as I/Os.
    """

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    frees: int = 0
    cache_hits: int = 0

    @property
    def total(self) -> int:
        """Total number of I/Os (block reads plus block writes)."""
        return self.reads + self.writes

    def snapshot(self) -> "IOStats":
        """Return a copy of the current counters."""
        return IOStats(self.reads, self.writes, self.allocations,
                       self.frees, self.cache_hits)

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Return counters accumulated since ``earlier`` (a snapshot)."""
        return IOStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            allocations=self.allocations - earlier.allocations,
            frees=self.frees - earlier.frees,
            cache_hits=self.cache_hits - earlier.cache_hits,
        )

    def merge(self, other: "IOStats") -> None:
        """Accumulate another counter set into this one (shard fan-out)."""
        self.reads += other.reads
        self.writes += other.writes
        self.allocations += other.allocations
        self.frees += other.frees
        self.cache_hits += other.cache_hits

    def reset(self) -> None:
        """Zero every counter."""
        self.reads = 0
        self.writes = 0
        self.allocations = 0
        self.frees = 0
        self.cache_hits = 0

    def __repr__(self) -> str:
        return ("IOStats(reads=%d, writes=%d, total=%d, cache_hits=%d)"
                % (self.reads, self.writes, self.total, self.cache_hits))


@dataclass
class _StoreConfig:
    block_size: int
    cache_blocks: int = 4
    count_writes: bool = True


class BlockStore:
    """A simulated disk made of fixed-capacity blocks.

    Parameters
    ----------
    block_size:
        The paper's ``B`` — number of records per block.
    cache_blocks:
        Size of the LRU buffer pool in blocks (the model's ``M/B``).  A value
        of 0 disables caching.
    count_writes:
        If False, block writes are not counted as I/Os.  Query-only
        experiments sometimes use this to isolate read traffic; it defaults
        to True, matching the model.
    backend:
        Where blocks physically live: None / ``"memory"`` (a dict, the
        default), ``"file"`` (a real file), a
        :class:`~repro.io.backend.StorageBackend` instance, or a factory.
        The I/O accounting is identical for every backend.
    """

    def __init__(self, block_size: int, cache_blocks: int = 4,
                 count_writes: bool = True,
                 backend: object = None):
        if block_size <= 0:
            raise ValueError("block_size must be positive, got %r" % block_size)
        self._config = _StoreConfig(block_size, cache_blocks, count_writes)
        self._backend: StorageBackend = make_backend(backend)
        self._next_id: BlockId = 0
        for existing in self._backend.block_ids():
            self._next_id = max(self._next_id, existing + 1)
        self._cache: LRUCache[BlockId, _CacheEntry] = LRUCache(cache_blocks)
        self.stats = IOStats()
        #: Serializes whole queries from multi-threaded executors.  One
        #: store models one disk, which serves one request at a time; the
        #: store's own operations are NOT internally locked, so any driver
        #: running concurrent queries against a shared store must hold
        #: this around each query (the engine's execution core does).
        self.lock = threading.Lock()

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        """The number of records per block (``B``)."""
        return self._config.block_size

    @property
    def backend(self) -> StorageBackend:
        """The storage backend holding this store's blocks."""
        return self._backend

    @property
    def num_blocks(self) -> int:
        """Number of currently allocated blocks (the space usage in blocks)."""
        return len(self._backend)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, records: Iterable[Any] = ()) -> BlockId:
        """Allocate a fresh block, optionally pre-filled, and write it.

        The initial write is charged as one write I/O (building a structure
        has to pay for writing it out, as in the paper's preprocessing
        bounds).
        """
        block_id = self._next_id
        self._next_id += 1
        block = Block(block_id, self.block_size, records)
        self._backend.put(block_id, block.records)
        self.stats.allocations += 1
        if self._config.count_writes:
            self.stats.writes += 1
        self._cache.put(block_id, _CacheEntry(records=block.copy_records()))
        return block_id

    def allocate_many(self, records: Sequence[Any]) -> List[BlockId]:
        """Write ``records`` contiguously into ⌈len/B⌉ fresh blocks."""
        block_ids: List[BlockId] = []
        for start in range(0, len(records), self.block_size):
            chunk = records[start:start + self.block_size]
            block_ids.append(self.allocate(chunk))
        return block_ids

    def free(self, block_id: BlockId) -> None:
        """Release a block.  Freeing is bookkeeping only, not an I/O."""
        if not self._backend.contains(block_id):
            raise KeyError("block %r is not allocated" % block_id)
        self._backend.delete(block_id)
        self._cache.invalidate(block_id)
        self.stats.frees += 1

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def read(self, block_id: BlockId) -> List[Any]:
        """Read a block, charging one I/O unless the buffer pool holds it."""
        cached = self._cache.get(block_id)
        if cached is not None:
            self.stats.cache_hits += 1
            return list(cached.record_list())
        entry = self._fetch(block_id)
        return list(entry.record_list())

    def read_payload(self, block_id: BlockId) -> BlockPayload:
        """Read a block as a :class:`BlockPayload` (columnar when possible).

        Charges exactly what :meth:`read` charges — one read I/O on a
        buffer-pool miss, one cache hit otherwise — so batch consumers
        see bit-identical :class:`IOStats` to the record-at-a-time path.
        The payload may share storage with the buffer pool; treat it as
        read-only.
        """
        cached = self._cache.get(block_id)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached.payload()
        return self._fetch(block_id).payload()

    def _fetch(self, block_id: BlockId) -> _CacheEntry:
        """Fetch a block from the backend, charge one read, cache it."""
        if not self._backend.contains(block_id):
            raise KeyError("block %r is not allocated" % block_id)
        self.stats.reads += 1
        records, matrix = self._backend.get_payload(block_id)
        if matrix is not None:
            entry = _CacheEntry(matrix=matrix)
        else:
            entry = _CacheEntry(records=list(records))
        self._cache.put(block_id, entry)
        return entry

    def write(self, block_id: BlockId, records: Iterable[Any]) -> None:
        """Overwrite a block's contents, charging one write I/O."""
        if not self._backend.contains(block_id):
            raise KeyError("block %r is not allocated" % block_id)
        block = Block(block_id, self.block_size, records)
        self._backend.put(block_id, block.records)
        if self._config.count_writes:
            self.stats.writes += 1
        self._cache.put(block_id, _CacheEntry(records=block.copy_records()))

    def read_many(self, block_ids: Iterable[BlockId]) -> List[Any]:
        """Read several blocks and concatenate their records in order."""
        out: List[Any] = []
        for block_id in block_ids:
            out.extend(self.read(block_id))
        return out

    def scan(self, block_ids: Iterable[BlockId]) -> Iterator[Any]:
        """Yield records from the given blocks one block-read at a time."""
        for block_id in block_ids:
            for record in self.read(block_id):
                yield record

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero the I/O counters (space bookkeeping is unaffected)."""
        self.stats.reset()
        self._cache.reset_stats()

    def clear_cache(self) -> None:
        """Empty the buffer pool (e.g. between query batches)."""
        self._cache.clear()

    @property
    def cache_blocks(self) -> int:
        """Current buffer-pool capacity in blocks (the model's ``M/B``)."""
        return self._cache.capacity

    def resize_cache(self, cache_blocks: int) -> int:
        """Change the buffer-pool capacity; return the previous capacity.

        Batch serving enlarges the pool so blocks read for one query stay
        resident for the next, then restores the old size so per-query
        benchmarks keep measuring the model's small-memory regime.
        """
        previous = self._cache.capacity
        self._cache.resize(cache_blocks)
        self._config.cache_blocks = cache_blocks
        return previous

    def cache_info(self) -> Dict[str, float]:
        """Buffer-pool capacity, occupancy and hit rate (for metrics)."""
        return {
            "capacity": self._cache.capacity,
            "resident": len(self._cache),
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "hit_rate": self._cache.hit_rate,
        }

    def byte_counters(self) -> Tuple[int, int]:
        """Cumulative (bytes_read, bytes_written) at the physical medium.

        Backends that move real bytes (file, mmap) count them; the
        in-memory backend moves references, so both stay 0 there.
        Callers wanting a per-query figure snapshot this before and
        after, like :attr:`stats`.
        """
        return (getattr(self._backend, "bytes_read", 0),
                getattr(self._backend, "bytes_written", 0))

    def span_attributes(self, delta: IOStats) -> Dict[str, object]:
        """One query's store-level trace-span attributes.

        ``delta`` is the :class:`IOStats` window the caller measured
        around its query (``stats.delta(before)``); the store adds the
        static context — block size, backend, pool capacity — so a trace
        span can say not just *how many* transfers happened but against
        what configuration.
        """
        return {
            "blocks_read": delta.reads,
            "blocks_written": delta.writes,
            "cache_hits": delta.cache_hits,
            "block_size": self.block_size,
            "backend": self._backend.name,
            "pool_blocks": self._cache.capacity,
        }

    def blocks_for(self, num_records: int) -> int:
        """⌈num_records / B⌉ — blocks needed to store that many records."""
        return -(-num_records // self.block_size)

    def close(self) -> None:
        """Release the backend's resources (file handles, temp files)."""
        self._backend.close()

    def __repr__(self) -> str:
        return "BlockStore(B=%d, backend=%s, blocks=%d, %r)" % (
            self.block_size, self._backend.name, self.num_blocks, self.stats)
