"""A least-recently-used buffer pool for the simulated disk.

The external memory model allows an internal memory of ``M`` records, i.e.
``M/B`` blocks.  :class:`LRUCache` models that buffer pool: block reads that
hit the cache are free, everything else costs one I/O.  The paper's query
bounds do not rely on caching (they hold with a single-block buffer), so the
cache defaults to a small size; benchmarks can enlarge it to study the
effect of internal memory.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A fixed-capacity mapping that evicts the least recently used entry.

    ``capacity == 0`` disables caching entirely (every lookup misses), which
    is convenient for measuring raw I/O counts.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0, got %r" % capacity)
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get(self, key: K) -> Optional[V]:
        """Return the cached value and mark it most recently used, or None."""
        if self.capacity == 0 or key not in self._entries:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: K, value: V) -> None:
        """Insert or refresh an entry, evicting the LRU entry if needed."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def resize(self, capacity: int) -> None:
        """Change the capacity, evicting LRU entries if it shrank.

        The engine's batch executor enlarges the buffer pool while serving
        a query batch (cache reuse across queries) and restores the
        original size afterwards, so single-query measurements keep the
        model's small ``M/B``.
        """
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0, got %r" % capacity)
        self.capacity = capacity
        while len(self._entries) > capacity:
            self._entries.popitem(last=False)

    def invalidate(self, key: K) -> None:
        """Drop an entry (used when a block is rewritten or freed)."""
        self._entries.pop(key, None)

    def evict_where(self, predicate: Callable[[K], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; return count.

        The executor's result cache uses this to flush a dataset's answers
        when one of its dynamic indexes mutates.
        """
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry but keep hit/miss statistics."""
        self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters."""
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 if no lookups)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return "LRUCache(capacity=%d, size=%d, hit_rate=%.2f)" % (
            self.capacity, len(self._entries), self.hit_rate)
