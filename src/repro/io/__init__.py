"""External-memory (I/O model) substrate.

The paper analyses every data structure in the standard external memory
model: the disk is an array of *blocks*, each block holds ``B`` records, and
the unit of cost is one block transfer (an *I/O*).  This subpackage provides
a faithful software simulation of that model:

* :class:`~repro.io.store.BlockStore` — a simulated disk with I/O counters
  and an optional LRU buffer pool of ``M/B`` blocks.
* :class:`~repro.io.backend.StorageBackend` — where blocks physically live:
  :class:`~repro.io.backend.MemoryBackend` (a dict, the default) or
  :class:`~repro.io.backend.FileBackend` (a real file, seek/read), both
  behind identical I/O accounting.
* :class:`~repro.io.disk_array.DiskArray` — a blocked sequence of records.
* :class:`~repro.io.btree.BTree` — an external B+-tree (the 1-D baseline of
  Section 1.2 and an internal component of the 2-D structure of Section 3).
* :func:`~repro.io.external_sort.external_merge_sort` — multiway merge sort.

All higher-level structures in :mod:`repro.core` and :mod:`repro.baselines`
perform their disk accesses exclusively through this layer, so their
reported query costs are measured in I/Os exactly as in the paper.
"""

from repro.io.backend import (
    FileBackend,
    MemoryBackend,
    StorageBackend,
    make_backend,
)
from repro.io.block import (
    Block,
    BlockId,
    BlockPayload,
    POINT_DTYPE,
    as_point_matrix,
    matrix_to_records,
)
from repro.io.cache import LRUCache
from repro.io.store import BlockStore, IOStats
from repro.io.disk_array import DiskArray
from repro.io.btree import BTree
from repro.io.external_sort import external_merge_sort

__all__ = [
    "Block",
    "BlockId",
    "BlockPayload",
    "POINT_DTYPE",
    "as_point_matrix",
    "matrix_to_records",
    "LRUCache",
    "BlockStore",
    "FileBackend",
    "IOStats",
    "MemoryBackend",
    "StorageBackend",
    "make_backend",
    "DiskArray",
    "BTree",
    "external_merge_sort",
]
