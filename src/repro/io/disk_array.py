"""Blocked sequences of records on the simulated disk.

A :class:`DiskArray` is the external-memory analogue of a Python list: a
sequence of records packed ``B`` to a block.  Scanning it costs ⌈N/B⌉ I/Os,
appending fills the last block before allocating a new one, and random
access costs one I/O per touched block.  It is the building material for
conflict lists (Section 4), cluster storage (Section 3) and leaf buckets of
the partition trees (Sections 5–6).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.io.block import BlockId, BlockPayload
from repro.io.store import BlockStore


class DiskArray:
    """A growable sequence of records stored contiguously in disk blocks."""

    def __init__(self, store: BlockStore, records: Optional[Sequence[Any]] = None):
        self._store = store
        self._block_ids: List[BlockId] = []
        self._length = 0
        self._last_block_fill = 0
        if records:
            self.extend(records)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Any]:
        return self.scan()

    @property
    def store(self) -> BlockStore:
        """The block store this array lives on."""
        return self._store

    @property
    def num_blocks(self) -> int:
        """Number of blocks occupied (the array's space usage)."""
        return len(self._block_ids)

    @property
    def block_ids(self) -> List[BlockId]:
        """The block addresses, in order (useful for debugging/tests)."""
        return list(self._block_ids)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def append(self, record: Any) -> None:
        """Append one record, allocating a new block when the last is full."""
        B = self._store.block_size
        if not self._block_ids or self._last_block_fill == B:
            self._block_ids.append(self._store.allocate([record]))
            self._last_block_fill = 1
        else:
            last_id = self._block_ids[-1]
            records = self._store.read(last_id)
            records.append(record)
            self._store.write(last_id, records)
            self._last_block_fill += 1
        self._length += 1

    def extend(self, records: Iterable[Any]) -> None:
        """Append many records with blocked writes (1 write I/O per block)."""
        B = self._store.block_size
        pending = list(records)
        if not pending:
            return
        index = 0
        # Fill the trailing partially-full block first.
        if self._block_ids and self._last_block_fill < B:
            last_id = self._block_ids[-1]
            existing = self._store.read(last_id)
            take = min(B - len(existing), len(pending))
            existing.extend(pending[:take])
            self._store.write(last_id, existing)
            self._last_block_fill = len(existing)
            self._length += take
            index = take
        # Then write whole blocks.
        while index < len(pending):
            chunk = pending[index:index + B]
            self._block_ids.append(self._store.allocate(chunk))
            self._last_block_fill = len(chunk)
            self._length += len(chunk)
            index += B

    def clear(self) -> None:
        """Free every block and reset the array to empty."""
        for block_id in self._block_ids:
            self._store.free(block_id)
        self._block_ids = []
        self._length = 0
        self._last_block_fill = 0

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Any]:
        """Yield all records front to back, one block read at a time."""
        return self._store.scan(self._block_ids)

    def scan_batches(self) -> Iterator[BlockPayload]:
        """Yield one :class:`BlockPayload` per block, front to back.

        The batch analogue of :meth:`scan`: identical I/O charging (one
        read or cache hit per block), but point blocks arrive as
        contiguous ``(n, d)`` matrices ready for the vectorized kernels.
        """
        for block_id in self._block_ids:
            yield self._store.read_payload(block_id)

    def read_all(self) -> List[Any]:
        """Read the whole array into memory (⌈N/B⌉ read I/Os)."""
        return self._store.read_many(self._block_ids)

    def read_all_array(self) -> Optional[np.ndarray]:
        """Read the whole array as one stacked ``(N, d)`` float64 matrix.

        Charges the same ⌈N/B⌉ I/Os as :meth:`read_all`.  Returns None
        when any block is non-columnar (mixed records, width mismatch)
        or the array is empty — callers fall back to :meth:`read_all`.
        """
        matrices: List[np.ndarray] = []
        columnar = True
        for payload in self.scan_batches():
            if payload.is_columnar:
                matrices.append(payload.matrix)
            else:
                columnar = False  # keep scanning: I/O parity with read_all
        if not columnar or not matrices:
            return None
        if len(matrices) == 1:
            return matrices[0]
        widths = {matrix.shape[1] for matrix in matrices}
        if len(widths) != 1:
            return None
        return np.concatenate(matrices, axis=0)

    def read_block(self, index: int) -> List[Any]:
        """Read the records of the ``index``-th block (one I/O)."""
        return self._store.read(self._block_ids[index])

    def __getitem__(self, position: int) -> Any:
        """Random access to one record (one block read)."""
        if position < 0:
            position += self._length
        if not 0 <= position < self._length:
            raise IndexError("DiskArray index %d out of range" % position)
        B = self._store.block_size
        block_index, offset = divmod(position, B)
        return self._store.read(self._block_ids[block_index])[offset]

    def read_range(self, start: int, stop: int) -> List[Any]:
        """Read records in ``[start, stop)`` touching only the needed blocks.

        Exactly ``last_block - first_block + 1`` block reads; the first
        and last blocks are sliced to the requested offsets instead of
        concatenating every covered record and slicing afterwards.
        """
        if start < 0 or stop > self._length or start > stop:
            raise IndexError("invalid range [%d, %d) for length %d"
                             % (start, stop, self._length))
        if start == stop:
            return []
        B = self._store.block_size
        first_block = start // B
        last_block = (stop - 1) // B
        records: List[Any] = []
        for block_index in range(first_block, last_block + 1):
            block = self._store.read(self._block_ids[block_index])
            lo = start - block_index * B if block_index == first_block else 0
            hi = stop - block_index * B if block_index == last_block else len(block)
            records.extend(block[lo:hi] if (lo, hi) != (0, len(block)) else block)
        return records

    def __repr__(self) -> str:
        return "DiskArray(len=%d, blocks=%d)" % (self._length, self.num_blocks)
