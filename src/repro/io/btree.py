"""An external-memory B+-tree over the simulated disk.

Each tree node occupies exactly one disk block, so a root-to-leaf search
costs O(log_B n) I/Os and a range query costs O(log_B n + t) I/Os — the 1-D
optimum the paper uses as its yardstick (Section 1.2).  The same tree is
reused as an internal component of the higher-dimensional structures:

* the boundary-point trees ``T_i`` and the slope-ordered tree ``T*`` of the
  2-D structure (Section 3);
* the slab index of the external point-location structure used by the 3-D
  structure (Section 4).

Keys may be any totally ordered Python values; values are arbitrary.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.io.block import BlockId
from repro.io.store import BlockStore

_LEAF = "L"
_INTERNAL = "I"


class BTree:
    """An external B+-tree with one node per disk block.

    Parameters
    ----------
    store:
        The simulated disk to allocate nodes on.
    fanout:
        Maximum number of entries per node.  Defaults to ``B - 1`` (one
        record slot per block is used for the node header).
    """

    def __init__(self, store: BlockStore, fanout: Optional[int] = None):
        self._store = store
        max_fanout = store.block_size - 1
        if fanout is None:
            fanout = max_fanout
        if not 2 <= fanout <= max_fanout:
            raise ValueError(
                "fanout must be between 2 and block_size-1 (%d), got %r"
                % (max_fanout, fanout))
        self._fanout = fanout
        self._root: Optional[BlockId] = None
        self._height = 0
        self._length = 0
        self._node_count = 0

    # ------------------------------------------------------------------
    # node encoding helpers
    # ------------------------------------------------------------------
    def _write_node(self, kind: str, entries: Sequence[Tuple[Any, Any]],
                    next_leaf: Optional[BlockId] = None,
                    block_id: Optional[BlockId] = None) -> BlockId:
        records = [(kind, next_leaf)] + list(entries)
        if block_id is None:
            block_id = self._store.allocate(records)
            self._node_count += 1
        else:
            self._store.write(block_id, records)
        return block_id

    def _read_node(self, block_id: BlockId):
        records = self._store.read(block_id)
        kind, next_leaf = records[0]
        entries = records[1:]
        return kind, next_leaf, entries

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def height(self) -> int:
        """Number of levels (0 for an empty tree, 1 for a single leaf)."""
        return self._height

    @property
    def fanout(self) -> int:
        """Maximum entries per node."""
        return self._fanout

    @property
    def num_nodes(self) -> int:
        """Number of allocated tree nodes (= blocks of space used)."""
        return self._node_count

    @property
    def space_blocks(self) -> int:
        """Disk blocks occupied by the tree."""
        return self._node_count

    # ------------------------------------------------------------------
    # bulk loading
    # ------------------------------------------------------------------
    def bulk_load(self, items: Sequence[Tuple[Any, Any]]) -> None:
        """Build the tree bottom-up from ``items`` sorted by key.

        Raises :class:`ValueError` if the tree already holds data or the
        input is not sorted.
        """
        if self._root is not None:
            raise ValueError("bulk_load requires an empty tree")
        items = list(items)
        for i in range(1, len(items)):
            if items[i - 1][0] > items[i][0]:
                raise ValueError("bulk_load input must be sorted by key")
        if not items:
            return
        fanout = self._fanout
        # Build the leaf level.
        leaf_specs: List[Tuple[Any, List[Tuple[Any, Any]]]] = []
        for start in range(0, len(items), fanout):
            chunk = items[start:start + fanout]
            leaf_specs.append((chunk[0][0], chunk))
        leaf_ids: List[BlockId] = [None] * len(leaf_specs)  # type: ignore
        # Allocate leaves back to front so next-leaf pointers are known.
        next_id: Optional[BlockId] = None
        for index in range(len(leaf_specs) - 1, -1, -1):
            __, chunk = leaf_specs[index]
            next_id = self._write_node(_LEAF, chunk, next_leaf=next_id)
            leaf_ids[index] = next_id
        level: List[Tuple[Any, BlockId]] = [
            (leaf_specs[i][0], leaf_ids[i]) for i in range(len(leaf_specs))]
        self._height = 1
        # Build internal levels until a single root remains.
        while len(level) > 1:
            parent_level: List[Tuple[Any, BlockId]] = []
            for start in range(0, len(level), fanout):
                chunk = level[start:start + fanout]
                node_id = self._write_node(_INTERNAL, chunk)
                parent_level.append((chunk[0][0], node_id))
            level = parent_level
            self._height += 1
        self._root = level[0][1]
        self._length = len(items)

    # ------------------------------------------------------------------
    # searching
    # ------------------------------------------------------------------
    def _descend_to_leaf(self, key: Any) -> Optional[BlockId]:
        """Return the leaf block that would contain ``key`` (or None)."""
        if self._root is None:
            return None
        node_id = self._root
        while True:
            kind, __, entries = self._read_node(node_id)
            if kind == _LEAF:
                return node_id
            keys = [entry[0] for entry in entries]
            index = bisect.bisect_right(keys, key) - 1
            if index < 0:
                index = 0
            node_id = entries[index][1]

    def _descend_to_leaf_left(self, key: Any) -> Optional[BlockId]:
        """Return the leftmost leaf that can contain ``key``.

        With duplicate keys spanning several leaves, the rightmost-child
        descent of :meth:`_descend_to_leaf` may skip earlier duplicates;
        range queries and successor searches therefore descend to the
        leftmost candidate leaf instead and rely on the leaf chain to walk
        forward.
        """
        if self._root is None:
            return None
        node_id = self._root
        while True:
            kind, __, entries = self._read_node(node_id)
            if kind == _LEAF:
                return node_id
            keys = [entry[0] for entry in entries]
            index = bisect.bisect_left(keys, key) - 1
            if index < 0:
                index = 0
            node_id = entries[index][1]

    def search(self, key: Any) -> Optional[Any]:
        """Return the value stored under ``key`` or None."""
        leaf_id = self._descend_to_leaf(key)
        if leaf_id is None:
            return None
        __, __, entries = self._read_node(leaf_id)
        for entry_key, value in entries:
            if entry_key == key:
                return value
        return None

    def contains(self, key: Any) -> bool:
        """True if ``key`` is stored in the tree."""
        return self.search(key) is not None

    def predecessor(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the (key, value) with the largest key <= ``key``.

        This is the primitive the 2-D structure uses to locate the cluster
        relevant for a query point, and the point-location structure uses to
        find the slab containing a query x-coordinate.
        """
        leaf_id = self._descend_to_leaf(key)
        if leaf_id is None:
            return None
        __, __, entries = self._read_node(leaf_id)
        best: Optional[Tuple[Any, Any]] = None
        for entry_key, value in entries:
            if entry_key <= key:
                best = (entry_key, value)
            else:
                break
        return best

    def successor(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the (key, value) with the smallest key >= ``key``."""
        leaf_id = self._descend_to_leaf_left(key)
        if leaf_id is None:
            return None
        kind, next_leaf, entries = self._read_node(leaf_id)
        for entry_key, value in entries:
            if entry_key >= key:
                return (entry_key, value)
        # The first key of the next leaf is the successor (if any).
        while next_leaf is not None:
            kind, next_leaf_2, entries = self._read_node(next_leaf)
            if entries:
                return entries[0]
            next_leaf = next_leaf_2
        return None

    def range_query(self, low: Any, high: Any) -> List[Tuple[Any, Any]]:
        """Return all (key, value) pairs with ``low <= key <= high``.

        Costs O(log_B n + t) I/Os: one root-to-leaf descent plus a walk
        along the leaf level.
        """
        if self._root is None or low > high:
            return []
        leaf_id = self._descend_to_leaf_left(low)
        results: List[Tuple[Any, Any]] = []
        while leaf_id is not None:
            __, next_leaf, entries = self._read_node(leaf_id)
            for entry_key, value in entries:
                if entry_key > high:
                    return results
                if entry_key >= low:
                    results.append((entry_key, value))
            leaf_id = next_leaf
        return results

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield every (key, value) pair in key order (a full leaf scan)."""
        if self._root is None:
            return
        node_id = self._root
        while True:
            kind, __, entries = self._read_node(node_id)
            if kind == _LEAF:
                break
            node_id = entries[0][1]
        leaf_id: Optional[BlockId] = node_id
        while leaf_id is not None:
            __, next_leaf, entries = self._read_node(leaf_id)
            for entry in entries:
                yield entry
            leaf_id = next_leaf

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert a (key, value) pair, splitting nodes on overflow."""
        if self._root is None:
            self._root = self._write_node(_LEAF, [(key, value)])
            self._height = 1
            self._length = 1
            return
        split = self._insert_recursive(self._root, key, value)
        self._length += 1
        if split is not None:
            # The old root split: grow the tree by one level.
            sep_key, new_node_id, old_min_key = split
            new_root = self._write_node(
                _INTERNAL, [(old_min_key, self._root), (sep_key, new_node_id)])
            self._root = new_root
            self._height += 1

    def _insert_recursive(self, node_id: BlockId, key: Any, value: Any):
        """Insert under ``node_id``; return (sep_key, new_sibling, my_min) on split."""
        kind, next_leaf, entries = self._read_node(node_id)
        if kind == _LEAF:
            keys = [entry[0] for entry in entries]
            index = bisect.bisect_right(keys, key)
            entries.insert(index, (key, value))
            if len(entries) <= self._fanout:
                self._write_node(_LEAF, entries, next_leaf=next_leaf,
                                 block_id=node_id)
                return None
            mid = len(entries) // 2
            left, right = entries[:mid], entries[mid:]
            new_leaf = self._write_node(_LEAF, right, next_leaf=next_leaf)
            self._write_node(_LEAF, left, next_leaf=new_leaf, block_id=node_id)
            return (right[0][0], new_leaf, left[0][0])
        # Internal node.
        keys = [entry[0] for entry in entries]
        child_index = bisect.bisect_right(keys, key) - 1
        if child_index < 0:
            child_index = 0
            # Keep separator keys consistent with subtree minima.
            entries[0] = (key, entries[0][1])
        child_id = entries[child_index][1]
        split = self._insert_recursive(child_id, key, value)
        if split is None:
            self._write_node(_INTERNAL, entries, block_id=node_id)
            return None
        sep_key, new_child, old_min = split
        entries[child_index] = (old_min, child_id)
        entries.insert(child_index + 1, (sep_key, new_child))
        if len(entries) <= self._fanout:
            self._write_node(_INTERNAL, entries, block_id=node_id)
            return None
        mid = len(entries) // 2
        left, right = entries[:mid], entries[mid:]
        new_node = self._write_node(_INTERNAL, right)
        self._write_node(_INTERNAL, left, block_id=node_id)
        return (right[0][0], new_node, left[0][0])

    def __repr__(self) -> str:
        return "BTree(len=%d, height=%d, nodes=%d, fanout=%d)" % (
            self._length, self._height, self._node_count, self._fanout)
