"""repro — external-memory halfspace range searching.

A faithful reproduction of *Efficient Searching with Linear Constraints*
(Agarwal, Arge, Erickson, Franciosa, Vitter; PODS 1998 / JCSS 2000): data
structures that store a set of points on (simulated) disk and report the
points satisfying a linear constraint ``x_d <= a_0 + sum_i a_i x_i`` using
as few block transfers (I/Os) as possible.

Quickstart::

    import numpy as np
    from repro import HalfplaneIndex2D, LinearConstraint

    points = np.random.default_rng(0).uniform(-1, 1, size=(10_000, 2))
    index = HalfplaneIndex2D(points, block_size=64)
    query = LinearConstraint(coeffs=(0.5,), offset=0.1)   # y <= 0.5 x + 0.1
    result = index.query_with_stats(query)
    print(len(result.points), "points in", result.total_ios, "I/Os")

The main entry points are the index classes re-exported below; the
underlying substrates (the simulated disk, geometry kernels, workload
generators) live in :mod:`repro.io`, :mod:`repro.geometry` and
:mod:`repro.workloads`.
"""

from repro.core import (
    ConstraintConjunction,
    DynamicPartitionTreeIndex,
    ExternalIndex,
    HalfplaneIndex2D,
    HalfspaceIndex3D,
    HybridIndex3D,
    KNNIndex,
    LowestPlanesIndex,
    PartitionTreeIndex,
    QueryResult,
    ShallowPartitionTreeIndex,
    query_conjunction,
    query_conjunction_with_stats,
)
from repro.engine import QueryEngine
from repro.geometry.primitives import Hyperplane, Line2, LinearConstraint, Plane3
from repro.io import BlockStore, BTree, DiskArray, IOStats

__version__ = "1.0.0"

__all__ = [
    "ExternalIndex",
    "QueryResult",
    "HalfplaneIndex2D",
    "HalfspaceIndex3D",
    "HybridIndex3D",
    "KNNIndex",
    "LowestPlanesIndex",
    "PartitionTreeIndex",
    "ShallowPartitionTreeIndex",
    "DynamicPartitionTreeIndex",
    "ConstraintConjunction",
    "query_conjunction",
    "query_conjunction_with_stats",
    "QueryEngine",
    "LinearConstraint",
    "Hyperplane",
    "Line2",
    "Plane3",
    "BlockStore",
    "BTree",
    "DiskArray",
    "IOStats",
    "__version__",
]
