"""The random-sampling structure of Section 4.1 (Theorem 4.2).

``LowestPlanesIndex`` stores N planes in R^3 so that, for any vertical line
``l`` and any ``k``, the ``k`` lowest planes along ``l`` can be reported in
O(log_B n + k/B) expected I/Os.  It is the engine behind both the 3-D
halfspace index (Section 4.2) and the k-nearest-neighbour index
(Theorem 4.3).

Construction.  A random permutation of the planes defines nested samples
``R_i`` of size ``2^i``.  For each sample the structure stores a
triangulated lower envelope ``Δ(R_i)``, an external point-location structure
over its xy-projection, and the conflict list ``K(Δ)`` of every triangle
(the planes outside the sample passing below some point of the triangle),
each list occupying a contiguous run of blocks.

Query (``TryLowestPlanes``).  To find the ``k`` lowest planes along ``l``
with failure probability ``O(δ)``, locate the envelope triangle of the
sample of size ``≈ N δ / k`` hit by ``l``; unless the conflict list is
unexpectedly long (``> k/δ²``) or contains fewer than ``k`` planes below the
envelope point, the ``k`` lowest planes along ``l`` are exactly the ``k``
lowest conflict-list entries.  On failure ``δ`` is halved and the procedure
retried; after a bounded number of failures the structure falls back to a
full scan (an event of negligible probability that keeps the worst case
finite).  The paper additionally keeps three independent copies to sharpen
the expectation; the number of copies is a constructor parameter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.interface import ExternalIndex
from repro.geometry.envelope3d import (
    TriangulatedEnvelope,
    compute_lower_envelope,
    conflict_lists,
    default_domain,
)
from repro.geometry.point_location import ExternalPointLocator
from repro.geometry.primitives import EPS, Plane3, LinearConstraint
from repro.io.disk_array import DiskArray
from repro.io.store import BlockStore


@dataclass
class _Layer:
    """Everything stored for one random sample R_i.

    The point locator maps a query position to a *triangle* of the
    triangulated envelope; each triangle's conflict list occupies one
    contiguous span of ``conflict_store``, exactly as in the paper.
    """

    sample_size: int
    triangle_table: DiskArray          # per triangle: (cell_id, plane_id, a, b, c)
    locator: ExternalPointLocator
    conflict_store: DiskArray          # all conflict lists, packed back to back
    conflict_spans: List[Tuple[int, int]]  # per triangle: (start, length)


@dataclass
class _Copy:
    """One independent replica of the layered sample structure."""

    layers: List[_Layer]


class LowestPlanesIndex:
    """k-lowest-planes queries along vertical lines (Theorem 4.2).

    Parameters
    ----------
    planes:
        The planes to store (``z = a x + b y + c``).
    store:
        Optional shared block store; a private one is created otherwise.
    block_size:
        Block size B for a private store.
    copies:
        Number of independent replicas (the paper uses three to obtain the
        optimal expectation; one is the practical default).
    beta:
        The threshold ``β = B log_B n`` controlling which sample sizes are
        materialised; defaults to the paper's value.
    domain:
        xy-rectangle the envelopes are triangulated over.  Queries outside
        it fall back to a scan of the full plane set.
    seed:
        Seed for the random permutations.
    """

    #: After this many δ-halvings the query falls back to a full scan.
    #: Kept small: each extra attempt reads a (larger) conflict list, so a
    #: handful of failures already costs as much as the fallback scan.
    MAX_FAILURES = 4

    def __init__(self, planes: Sequence[Plane3],
                 store: Optional[BlockStore] = None,
                 block_size: int = 64,
                 copies: int = 1,
                 beta: Optional[int] = None,
                 domain: Optional[Tuple[float, float, float, float]] = None,
                 envelope_backend: str = "auto",
                 seed: Optional[int] = None):
        if copies < 1:
            raise ValueError("copies must be >= 1")
        if store is None:
            store = BlockStore(block_size=block_size)
        self._store = store
        self._planes = list(planes)
        self._num_planes = len(self._planes)
        self._rng = np.random.default_rng(seed)
        self._backend = envelope_backend
        blocks = max(2, -(-max(1, self._num_planes) // store.block_size))
        log_term = max(1.0, math.log(blocks) / math.log(max(2, store.block_size)))
        self._beta = beta if beta is not None else max(
            store.block_size, int(round(store.block_size * log_term)))
        if domain is None and self._planes:
            domain = default_domain(self._planes)
        self._domain = domain
        self._blocks_before = store.num_blocks
        self._copies: List[_Copy] = []
        self._all_planes_array = DiskArray(
            self._store,
            [(index, plane.a, plane.b, plane.c)
             for index, plane in enumerate(self._planes)])
        if self._planes:
            for __ in range(copies):
                self._copies.append(self._build_copy())
        self._space_blocks = store.num_blocks - self._blocks_before
        self._last_fallbacks = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _max_layer_index(self) -> int:
        if self._num_planes <= 1:
            return 0
        upper = max(1.0, self._num_planes / max(1, self._beta))
        return max(1, int(math.ceil(math.log2(upper))) + 1)

    def _build_copy(self) -> _Copy:
        permutation = self._rng.permutation(self._num_planes)
        layers: List[_Layer] = []
        for layer_index in range(0, self._max_layer_index() + 1):
            sample_size = min(self._num_planes, 2 ** layer_index)
            sample_indices = permutation[:sample_size].tolist()
            layers.append(self._build_layer(sample_indices))
            if sample_size == self._num_planes:
                break
        return _Copy(layers=layers)

    def _build_layer(self, sample_indices: List[int]) -> _Layer:
        sample_planes = [self._planes[index] for index in sample_indices]
        envelope = compute_lower_envelope(sample_planes, self._domain,
                                          backend=self._backend)
        # Group the envelope triangles into cells: one cell per sample plane
        # appearing on the envelope.
        cell_of_plane: dict = {}
        triangle_records = []
        locator_input = []
        for triangle_index, triangle in enumerate(envelope.triangles):
            global_plane = sample_indices[triangle.plane_index]
            cell_id = cell_of_plane.setdefault(triangle.plane_index,
                                               len(cell_of_plane))
            plane = self._planes[global_plane]
            triangle_records.append((cell_id, global_plane,
                                     plane.a, plane.b, plane.c))
            locator_input.append((triangle_index, triangle.xy_vertices()))
        triangle_table = DiskArray(self._store, triangle_records)
        locator = ExternalPointLocator(self._store, locator_input)
        per_triangle = conflict_lists(self._planes, sample_indices, envelope)
        # Pack every triangle's conflict list back to back in one disk array
        # (the paper's "one contiguous set of blocks" per list) and remember
        # each triangle's (start, length) span.
        packed_records: List[Tuple[int, float, float, float]] = []
        spans: List[Tuple[int, int]] = []
        for triangle_list in per_triangle:
            start = len(packed_records)
            for index in triangle_list:
                plane = self._planes[index]
                packed_records.append((index, plane.a, plane.b, plane.c))
            spans.append((start, len(triangle_list)))
        conflict_store = DiskArray(self._store, packed_records)
        return _Layer(sample_size=len(sample_indices),
                      triangle_table=triangle_table,
                      locator=locator,
                      conflict_store=conflict_store,
                      conflict_spans=spans)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def store(self) -> BlockStore:
        """The simulated disk."""
        return self._store

    @property
    def size(self) -> int:
        """Number of stored planes."""
        return self._num_planes

    @property
    def beta(self) -> int:
        """The threshold β = B log_B n."""
        return self._beta

    @property
    def space_blocks(self) -> int:
        """Disk blocks allocated for the structure."""
        return self._space_blocks

    @property
    def num_layers(self) -> int:
        """Layers per copy (O(log2 n))."""
        return len(self._copies[0].layers) if self._copies else 0

    @property
    def last_fallbacks(self) -> int:
        """Number of full-scan fallbacks during the most recent query."""
        return self._last_fallbacks

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def k_lowest(self, x: float, y: float, k: int) -> List[Tuple[int, float]]:
        """The ``k`` lowest planes along the vertical line through ``(x, y)``.

        Returns ``(plane_index, height_at_xy)`` pairs sorted by height.
        """
        if k <= 0:
            return []
        if not self._planes:
            return []
        k = min(k, self._num_planes)
        self._last_fallbacks = 0
        # Close to N the sampling machinery cannot beat a plain scan: the
        # useful samples would have O(1) planes and their conflict lists are
        # the whole input, so scanning directly is both simpler and cheaper
        # (and still O(t) I/Os, since t = Θ(n) in that regime).
        if 2 * k >= self._num_planes:
            return self._scan_lowest(x, y, k)
        delta = 0.5
        failures = 0
        # Once an attempt at some sample size fails because too few planes
        # lie below the envelope, retrying the same sample with a smaller
        # delta is hopeless (the count is deterministic); remember those.
        exhausted_layers = set()
        while failures < self.MAX_FAILURES:
            for copy_index, copy in enumerate(self._copies):
                result = self._try_lowest(copy, x, y, k, delta,
                                          exhausted=(copy_index, exhausted_layers))
                if result is not None:
                    return result
            failures += 1
            delta /= 2.0
        self._last_fallbacks += 1
        return self._scan_lowest(x, y, k)

    def _try_lowest(self, copy: _Copy, x: float, y: float, k: int,
                    delta: float, exhausted=None) -> Optional[List[Tuple[int, float]]]:
        """One attempt of the paper's TryLowestPlanes procedure."""
        if k >= self._num_planes:
            return None
        target = max(1.0, self._num_planes * delta / k)
        rho = int(math.ceil(math.log2(target)))
        rho = max(0, min(rho, len(copy.layers) - 1))
        exhausted_key = None
        if exhausted is not None:
            copy_index, exhausted_set = exhausted
            exhausted_key = (copy_index, rho)
            if exhausted_key in exhausted_set:
                return None
        layer = copy.layers[rho]
        if layer.sample_size >= self._num_planes:
            # The sample is the whole set: conflict lists are empty and the
            # attempt cannot certify k planes below the envelope.
            return None
        triangle_index = layer.locator.locate(x, y)
        if triangle_index is None:
            return None
        cell_id, plane_id, a, b, c = layer.triangle_table[triangle_index]
        start, length = layer.conflict_spans[triangle_index]
        threshold = k / (delta * delta)
        if length > threshold:
            return None
        envelope_height = a * x + b * y + c
        below: List[Tuple[float, int]] = []
        for record in layer.conflict_store.read_range(start, start + length):
            index, pa, pb, pc = record
            height = pa * x + pb * y + pc
            if height < envelope_height - EPS:
                below.append((height, index))
        if len(below) < k:
            if exhausted_key is not None:
                exhausted[1].add(exhausted_key)
            return None
        below.sort()
        return [(index, height) for height, index in below[:k]]

    def _scan_lowest(self, x: float, y: float, k: int) -> List[Tuple[int, float]]:
        """Fallback: scan every plane (⌈N/B⌉ I/Os)."""
        heights: List[Tuple[float, int]] = []
        for record in self._all_planes_array.scan():
            index, a, b, c = record
            heights.append((a * x + b * y + c, index))
        heights.sort()
        return [(index, height) for height, index in heights[:k]]

    def planes_below_point(self, x: float, y: float, z: float) -> List[int]:
        """Indices of every plane passing on or below ``(x, y, z)``.

        Implements the geometric doubling of Section 4.2: query the k lowest
        planes for ``k = β, 2β, 4β, ...`` until one of them lies above the
        point, then report the ones below.
        """
        if not self._planes:
            return []
        k = self._beta
        while True:
            if 2 * k >= self._num_planes:
                lowest = self._scan_lowest(x, y, self._num_planes)
                return [index for index, height in lowest if height <= z + EPS]
            lowest = self.k_lowest(x, y, k)
            if len(lowest) < k or any(height > z + EPS for __, height in lowest):
                return [index for index, height in lowest if height <= z + EPS]
            k *= 2

    def lowest_points(self, x: float, y: float, k: int) -> List[Tuple[int, float]]:
        """Alias of :meth:`k_lowest` (kept for API symmetry with the paper)."""
        return self.k_lowest(x, y, k)
