"""Shallow partition trees (Section 6, Theorem 6.3).

``ShallowPartitionTreeIndex`` trades a log factor of space for query time:
it uses O(n log_B n) blocks and answers a halfspace query in O(n^ε + t)
I/Os (in R^3, and O(n^{1-1/⌊d/2⌋+ε} + t) in higher dimensions).

Every internal node stores, besides its balanced partition, a *secondary*
ordinary partition tree over the same point subset.  A query that crosses
more than ``β log2 r_v`` of the node's cells cannot be shallow with respect
to the subset (Matoušek's Theorem 6.2); in that case the output below the
hyperplane within the subtree is Ω(N_v / r), so handing the query to the
secondary structure costs O(n_v^{1-1/d} + t_v) = O(t_v) I/Os and the
recursion only ever continues through few crossed cells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core import kernels
from repro.core.interface import ExternalIndex, Point
from repro.core.partition_tree import PartitionTreeIndex, Partitioner
from repro.geometry.boxes import Box, CellRelation
from repro.geometry.partitions import median_cut_partition
from repro.geometry.primitives import Hyperplane, LinearConstraint
from repro.io.disk_array import DiskArray
from repro.io.store import BlockStore


@dataclass
class _ShallowNode:
    """A node of the shallow tree (leaf, or internal with secondary tree)."""

    is_leaf: bool
    size: int
    points_array: Optional[DiskArray] = None
    child_table: Optional[DiskArray] = None
    children: List[int] = field(default_factory=list)
    secondary: Optional[PartitionTreeIndex] = None
    crossing_threshold: int = 0


class ShallowPartitionTreeIndex(ExternalIndex):
    """O(n log_B n)-space, O(n^ε + t)-I/O halfspace reporting.

    Parameters
    ----------
    shallow_factor:
        The constant β in the shallowness test ``crossed > β log2 r_v``.
    Other parameters are as for :class:`PartitionTreeIndex`.
    """

    def __init__(self, points: Sequence[Sequence[float]],
                 store: Optional[BlockStore] = None,
                 block_size: int = 64,
                 max_fanout: Optional[int] = None,
                 leaf_capacity: Optional[int] = None,
                 shallow_factor: float = 2.0,
                 partitioner: Optional[Partitioner] = None):
        super().__init__(store, block_size)
        points = np.asarray(points, dtype=float)
        if points.size == 0 and points.ndim != 2:
            points = points.reshape(0, 2)
        if points.ndim != 2:
            raise ValueError("points must be a 2-D array of shape (N, d)")
        self._points = points
        self._num_points = len(points)
        self._dimension = points.shape[1]
        self._max_fanout = max_fanout if max_fanout is not None else self.block_size
        self._leaf_capacity = leaf_capacity if leaf_capacity is not None else self.block_size
        self._shallow_factor = shallow_factor
        self._partitioner = partitioner if partitioner is not None else median_cut_partition
        self._nodes: List[_ShallowNode] = []
        self._last_secondary_queries = 0
        self._begin_space_accounting()
        if self._num_points:
            self._root = self._build(np.arange(self._num_points))
        else:
            self._root = None
        self._end_space_accounting()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, indices: np.ndarray) -> int:
        size = len(indices)
        if size <= self._leaf_capacity:
            records = [tuple(self._points[index]) for index in indices]
            node = _ShallowNode(is_leaf=True, size=size,
                                points_array=DiskArray(self._store, records))
            self._nodes.append(node)
            return len(self._nodes) - 1
        blocks = -(-size // self.block_size)
        fanout = max(2, min(self._max_fanout, 2 * blocks))
        cells = self._partitioner(self._points, fanout, indices)
        children: List[int] = []
        table_records = []
        for cell in cells:
            child_id = self._build(np.asarray(cell.indices))
            children.append(child_id)
            table_records.append((child_id, tuple(cell.cell.lower),
                                  tuple(cell.cell.upper)))
        secondary = PartitionTreeIndex(
            self._points[indices],
            store=self._store,
            max_fanout=self._max_fanout,
            leaf_capacity=self._leaf_capacity,
            partitioner=self._partitioner,
        )
        threshold = max(1, int(math.ceil(self._shallow_factor
                                         * math.log2(max(2, len(cells))))))
        node = _ShallowNode(is_leaf=False, size=size,
                            child_table=DiskArray(self._store, table_records),
                            children=children,
                            secondary=secondary,
                            crossing_threshold=threshold)
        self._nodes.append(node)
        return len(self._nodes) - 1

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def size(self) -> int:
        return self._num_points

    @property
    def last_secondary_queries(self) -> int:
        """How often the last query fell back to a secondary tree."""
        return self._last_secondary_queries

    def estimated_query_ios(self, constraint: LinearConstraint,
                            expected_output: Optional[int] = None) -> float:
        """Theorem 6.3 bound: O(n^ε + t) I/Os (ε taken as 1/4)."""
        del constraint
        blocks = max(1, self._store.blocks_for(max(1, self.size)))
        return 1.0 + float(blocks) ** 0.25 + self._output_blocks(expected_output)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, constraint: LinearConstraint) -> List[Point]:
        """Report every stored point satisfying the linear constraint."""
        if constraint.dimension != self._dimension:
            raise ValueError("constraint dimension %d does not match data "
                             "dimension %d" % (constraint.dimension, self._dimension))
        if self._root is None:
            return []
        results: List[Point] = []
        self._last_secondary_queries = 0
        self._query_node(self._root, constraint.hyperplane, constraint, results)
        return results

    def _query_node(self, node_id: int, hyperplane: Hyperplane,
                    constraint: LinearConstraint, results: List[Point]) -> None:
        node = self._nodes[node_id]
        if node.is_leaf:
            kernels.filter_constraint(node.points_array, constraint,
                                      out=results)
            return
        # First pass over the child table: classify the cells.
        classified = []
        crossed = 0
        for record in node.child_table.scan():
            child_id, lower, upper = record
            relation = Box(lower, upper).classify_halfspace(hyperplane)
            if relation is CellRelation.CROSSES:
                crossed += 1
            classified.append((child_id, relation))
        if crossed > node.crossing_threshold:
            # The query is not shallow for this subset: answer it with the
            # node's secondary (ordinary) partition tree.
            self._last_secondary_queries += 1
            results.extend(node.secondary.query(constraint))
            return
        for child_id, relation in classified:
            if relation is CellRelation.ABOVE:
                continue
            if relation is CellRelation.BELOW:
                self._report_subtree(child_id, results)
            else:
                self._query_node(child_id, hyperplane, constraint, results)

    def _report_subtree(self, node_id: int, results: List[Point]) -> None:
        node = self._nodes[node_id]
        if node.is_leaf:
            for record in node.points_array.scan():
                results.append(record)
            return
        for record in node.child_table.scan():
            self._report_subtree(record[0], results)
