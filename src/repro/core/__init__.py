"""The paper's data structures (its primary contributions).

* :class:`~repro.core.halfplane2d.HalfplaneIndex2D` — Section 3's optimal
  2-D structure: O(n) blocks, O(log_B n + t) worst-case query I/Os.
* :class:`~repro.core.halfspace3d.HalfspaceIndex3D` — Section 4's 3-D
  structure: O(n log2 n) blocks, O(log_B n + t) expected query I/Os, built
  on :class:`~repro.core.lowest_planes.LowestPlanesIndex`.
* :class:`~repro.core.knn.KNNIndex` — Theorem 4.3's k-nearest-neighbour
  structure via the paraboloid lifting.
* :class:`~repro.core.partition_tree.PartitionTreeIndex` — Section 5's
  linear-size structure for any dimension, with simplex queries.
* :class:`~repro.core.shallow_tree.ShallowPartitionTreeIndex` — Theorem 6.3's
  O(n log_B n)-space, O(n^eps + t) structure.
* :class:`~repro.core.hybrid3d.HybridIndex3D` — Theorem 6.1's space/query
  trade-off combining the partition tree with 3-D structures at the leaves.
"""

from repro.core.interface import ExternalIndex, QueryResult
from repro.core.halfplane2d import HalfplaneIndex2D
from repro.core.lowest_planes import LowestPlanesIndex
from repro.core.halfspace3d import HalfspaceIndex3D
from repro.core.knn import KNNIndex
from repro.core.partition_tree import PartitionTreeIndex
from repro.core.shallow_tree import ShallowPartitionTreeIndex
from repro.core.hybrid3d import HybridIndex3D
from repro.core.dynamic import DynamicPartitionTreeIndex
from repro.core.conjunction import (
    ConstraintConjunction,
    query_conjunction,
    query_conjunction_with_stats,
)
from repro.core.kernels import (
    scalar_kernels,
    set_vectorized,
    vectorized_enabled,
)

__all__ = [
    "scalar_kernels",
    "set_vectorized",
    "vectorized_enabled",
    "ExternalIndex",
    "QueryResult",
    "HalfplaneIndex2D",
    "LowestPlanesIndex",
    "HalfspaceIndex3D",
    "KNNIndex",
    "PartitionTreeIndex",
    "ShallowPartitionTreeIndex",
    "HybridIndex3D",
    "DynamicPartitionTreeIndex",
    "ConstraintConjunction",
    "query_conjunction",
    "query_conjunction_with_stats",
]
