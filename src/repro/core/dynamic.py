"""A dynamised partition tree (Section 5, Remark iii).

The paper notes that the linear-size partition tree can be made dynamic
with the standard partial-reconstruction technique, supporting updates in
O((log₂ n) log_B n) amortised I/Os.  ``DynamicPartitionTreeIndex``
implements the practical variant of that idea:

* insertions go to a small blocked *buffer*; once the buffer exceeds a
  fixed fraction of the indexed set, the whole structure is rebuilt;
* deletions mark points in a tombstone *multiset* (stored in its own
  blocks); once half of the indexed points are dead, the structure is
  rebuilt;
* queries combine the main tree (minus tombstones) with a scan of the
  buffer, so answers are always exact and the extra query cost is
  O(buffer/B) = O(εn) I/Os.

Duplicate points get **multiset semantics**: the same point may be
stored several times (the tree built with duplicates, plus buffered
re-inserts), and one ``delete()`` removes exactly *one* copy — the
tombstones carry per-value counts, so ``query()``, ``size`` and
``live_points()`` always agree on how many copies are live.

Rebuilds are charged to the store like any other construction, so the
amortised update cost is measurable with the usual counters.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels
from repro.core.interface import ExternalIndex, Point
from repro.core.partition_tree import PartitionTreeIndex, Partitioner
from repro.geometry.primitives import LinearConstraint
from repro.io.disk_array import DiskArray
from repro.io.store import BlockStore


class DynamicPartitionTreeIndex(ExternalIndex):
    """Insertions and deletions on top of the Section 5 partition tree.

    Parameters
    ----------
    buffer_fraction:
        The insertion buffer may hold up to this fraction of the indexed
        points before a rebuild is triggered (default 25 %).
    Other parameters are forwarded to :class:`PartitionTreeIndex`.
    """

    def __init__(self, points: Sequence[Sequence[float]] = (),
                 store: Optional[BlockStore] = None,
                 block_size: int = 64,
                 dimension: Optional[int] = None,
                 buffer_fraction: float = 0.25,
                 max_fanout: Optional[int] = None,
                 leaf_capacity: Optional[int] = None,
                 partitioner: Optional[Partitioner] = None):
        super().__init__(store, block_size)
        if not 0.0 < buffer_fraction <= 1.0:
            raise ValueError("buffer_fraction must be in (0, 1]")
        initial = [tuple(float(c) for c in point) for point in points]
        if dimension is None:
            if not initial:
                raise ValueError("dimension is required when starting empty")
            dimension = len(initial[0])
        self._dimension = dimension
        self._buffer_fraction = buffer_fraction
        self._tree_kwargs = dict(max_fanout=max_fanout,
                                 leaf_capacity=leaf_capacity,
                                 partitioner=partitioner)
        self._rebuilds = 0
        self._mutation_listeners: List[Callable[[], None]] = []
        self._pre_mutation_listeners: List[Callable[[], None]] = []
        self._point_listeners: List[Callable[[str, Tuple[float, ...]],
                                             None]] = []
        self._begin_space_accounting()
        self._buffer = DiskArray(self._store)
        self._buffer_points: List[Tuple[float, ...]] = []
        #: Tombstoned tree copies as value -> count (multiset semantics:
        #: one delete hides exactly one of a duplicated point's copies).
        self._tombstones: Dict[Tuple[float, ...], int] = {}
        self._num_tombstones = 0
        self._tombstone_array = DiskArray(self._store)
        self._build_tree(initial)
        self._end_space_accounting()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _build_tree(self, points: List[Tuple[float, ...]]) -> None:
        array = np.array(points, dtype=float).reshape(-1, self._dimension)
        self._tree_points: List[Tuple[float, ...]] = list(points)
        self._tree_counts = Counter(self._tree_points)
        self._tree = PartitionTreeIndex(array, store=self._store,
                                        block_size=self.block_size,
                                        **self._tree_kwargs)

    def _live_tree_points(self) -> List[Tuple[float, ...]]:
        """The tree's points with exactly ``count`` copies of each
        tombstoned value hidden (multiset semantics for duplicates)."""
        remaining = dict(self._tombstones)
        live: List[Tuple[float, ...]] = []
        for point in self._tree_points:
            hidden = remaining.get(point, 0)
            if hidden:
                remaining[point] = hidden - 1
                continue
            live.append(point)
        return live

    def _rewrite_tombstone_array(self) -> None:
        """Make the on-disk tombstone blocks match the in-memory multiset.

        Called when a resurrecting insert *removes* a tombstone: leaving
        the dropped record on disk would make the array disagree with the
        set it persists (and its space accounting drift upward forever).
        Costs O(tombstones/B) I/Os, the same class as a buffer rewrite.
        """
        self._tombstone_array.clear()
        self._tombstone_array.extend(
            record for record, count in self._tombstones.items()
            for __ in range(count))

    def _rebuild(self) -> None:
        """Fold the buffer and tombstones back into a fresh tree."""
        live = self._live_tree_points()
        live.extend(self._buffer_points)
        self._buffer.clear()
        self._buffer_points = []
        self._tombstones = {}
        self._num_tombstones = 0
        self._tombstone_array.clear()
        self._build_tree(live)
        self._rebuilds += 1

    def _maybe_rebuild(self) -> None:
        live_estimate = max(1, len(self._tree_points) - self._num_tombstones)
        if len(self._buffer_points) > self._buffer_fraction * live_estimate:
            self._rebuild()
        elif self._num_tombstones * 2 > max(1, len(self._tree_points)):
            self._rebuild()

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add_mutation_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback fired after every successful insert/delete.

        The engine's executor subscribes here so cached query results over
        this index's dataset are flushed the moment the data changes
        (result-cache invalidation), instead of serving stale answers.
        """
        self._mutation_listeners.append(listener)

    def add_pre_mutation_listener(self,
                                  listener: Callable[[], None]) -> None:
        """Register a callback fired *before* a mutation is applied.

        A pre-listener that raises vetoes the mutation: nothing has been
        written yet, so the index is left exactly as it was.  The engine
        uses this to reject *direct* writes to one replica of a
        replicated shard (the supported route is the engine's write
        fan-out, which keeps every replica in step) — a post-hoc error
        would leave the replicas silently divergent.
        """
        self._pre_mutation_listeners.append(listener)

    def add_point_listener(
            self, listener: Callable[[str, Tuple[float, ...]], None]) -> None:
        """Register a callback receiving each mutated point.

        Called as ``listener(op, point)`` with ``op`` one of ``"insert"``
        / ``"delete"`` after the mutation is applied, just before the
        plain mutation listeners fire.  The engine's statistics layer
        subscribes here: unlike :meth:`add_mutation_listener`, the point
        itself is what a selectivity model needs to update its sample
        reservoir and histograms incrementally.
        """
        self._point_listeners.append(listener)

    def _notify_mutation(self) -> None:
        for listener in self._mutation_listeners:
            listener()

    def _notify_point(self, op: str, record: Tuple[float, ...]) -> None:
        for listener in self._point_listeners:
            listener(op, record)

    def _check_pre_mutation(self) -> None:
        for listener in self._pre_mutation_listeners:
            listener()

    def insert(self, point: Sequence[float]) -> None:
        """Insert one point (amortised O((log n) log_B n + rebuild/n) I/Os)."""
        record = tuple(float(c) for c in point)
        if len(record) != self._dimension:
            raise ValueError("point dimension %d does not match index dimension %d"
                             % (len(record), self._dimension))
        self._check_pre_mutation()
        if self._tombstones.get(record, 0) > 0:
            # The point has a tombstoned tree copy: dropping one tombstone
            # alone resurrects it.  Buffering it too would duplicate the
            # point in queries, size and live_points().  The on-disk
            # tombstone blocks are rewritten so they keep matching the
            # multiset (a stale record would survive to the next rebuild
            # and leak space meanwhile).
            if self._tombstones[record] == 1:
                del self._tombstones[record]
            else:
                self._tombstones[record] -= 1
            self._num_tombstones -= 1
            self._rewrite_tombstone_array()
        else:
            self._buffer.append(record)
            self._buffer_points.append(record)
        self._maybe_rebuild()
        self._notify_point("insert", record)
        self._notify_mutation()

    def delete(self, point: Sequence[float]) -> bool:
        """Delete one copy of a point; returns False if it was not present.

        Multiset semantics: a point stored k times needs k deletes to
        disappear — buffered copies are removed first (cheap rewrite),
        then tree copies are tombstoned one count at a time.
        """
        record = tuple(float(c) for c in point)
        in_buffer = record in self._buffer_points
        in_tree = (self._tree_counts.get(record, 0)
                   > self._tombstones.get(record, 0))
        if in_buffer or in_tree:
            # Veto only writes that would actually happen: deleting an
            # absent point stays a no-op returning False.
            self._check_pre_mutation()
        if in_buffer:
            self._buffer_points.remove(record)
            # Rewrite the buffer without the record (small, O(buffer/B) I/Os).
            self._buffer.clear()
            self._buffer.extend(self._buffer_points)
            # Both delete paths check the rebuild thresholds: the buffer
            # path skipping it would let a delete-heavy workload sit past
            # the tombstone fraction until an unrelated mutation noticed.
            self._maybe_rebuild()
            self._notify_point("delete", record)
            self._notify_mutation()
            return True
        if not in_tree:
            return False
        self._tombstones[record] = self._tombstones.get(record, 0) + 1
        self._num_tombstones += 1
        self._tombstone_array.append(record)
        self._maybe_rebuild()
        self._notify_point("delete", record)
        self._notify_mutation()
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def size(self) -> int:
        """Number of live points (copies of duplicates counted)."""
        return len(self._tree_points) - self._num_tombstones \
            + len(self._buffer_points)

    @property
    def tombstoned(self) -> int:
        """Tree copies currently hidden by tombstones (multiset total)."""
        return self._num_tombstones

    @property
    def rebuilds(self) -> int:
        """How many full rebuilds have happened so far."""
        return self._rebuilds

    @property
    def buffered(self) -> int:
        """Number of points currently waiting in the insertion buffer."""
        return len(self._buffer_points)

    def live_points(self) -> List[Tuple[float, ...]]:
        """Every live point (tree minus tombstones, plus the buffer).

        The shard rebalancer collects these to re-split a mutated shard
        at fresh quantiles: the child dataset's build-time array no
        longer reflects the data once inserts and deletes have landed.
        """
        live = self._live_tree_points()
        live.extend(self._buffer_points)
        return live

    def query(self, constraint: LinearConstraint) -> List[Point]:
        """Report every live point satisfying the constraint.

        A tombstoned value hides exactly ``count`` of its tree copies, so
        duplicated points report the same multiplicity as ``size`` and
        ``live_points()`` account for.
        """
        if constraint.dimension != self._dimension:
            raise ValueError("constraint dimension %d does not match index "
                             "dimension %d" % (constraint.dimension, self._dimension))
        hidden: Dict[Tuple[float, ...], int] = {}
        results: List[Point] = []
        for point in self._tree.query(constraint):
            record = tuple(point)
            count = self._tombstones.get(record, 0)
            if count and hidden.get(record, 0) < count:
                hidden[record] = hidden.get(record, 0) + 1
                continue
            results.append(point)
        kernels.filter_constraint(self._buffer, constraint, out=results)
        return results
