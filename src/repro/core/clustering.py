"""Greedy level clustering (Section 3.1, Lemma 3.2).

A *b-clustering* of the k-level of a set of lines is a left-to-right
sequence of clusters, each covering an x-interval of the level and
containing every line that passes strictly below the level somewhere in
that interval, with at most ``b`` lines per cluster.  Lemma 3.2 shows that
the greedy construction — start each cluster with the lines below its left
boundary point and close the cluster whenever a new line will not fit in
the ``3k`` budget — produces at most ``N/k`` clusters.

The implementation walks the level vertices produced by
:func:`repro.geometry.arrangement2d.compute_level`.  Lines enter the region
below the level only at convex vertices (the level's ``entering_lines``),
which is where the greedy algorithm adds them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.geometry.arrangement2d import Level, lines_below_point_fast


@dataclass
class Cluster:
    """One cluster of a level clustering.

    ``lines`` are indices into the level's line list (insertion order);
    ``x_from``/``x_to`` delimit the x-interval of the level the cluster is
    responsible for (``x_from`` of the first cluster is ``-inf`` and
    ``x_to`` of the last is ``+inf``).
    """

    lines: List[int] = field(default_factory=list)
    x_from: float = -math.inf
    x_to: float = math.inf

    @property
    def size(self) -> int:
        """Number of lines in the cluster."""
        return len(self.lines)

    def covers(self, x: float) -> bool:
        """True if the cluster is the one *relevant* for abscissa ``x``."""
        return self.x_from <= x < self.x_to


def greedy_clustering(level: Level, width: int) -> List[Cluster]:
    """Build the greedy ``width``-clustering of ``level`` (Lemma 3.2).

    ``width`` is the cluster capacity, i.e. the paper's ``3k`` (made a
    parameter so the ablation benchmark can vary the factor).
    """
    if width < 1:
        raise ValueError("cluster width must be >= 1, got %r" % width)
    lines = level.lines
    slopes = np.array([line.slope for line in lines], dtype=float)
    intercepts = np.array([line.intercept for line in lines], dtype=float)

    clusters: List[Cluster] = []

    def seed_cluster(x_from: float, seed_x: float, seed_y: float) -> Cluster:
        """Start a cluster at ``x_from`` containing the lines below the seed point."""
        members = lines_below_point_fast(slopes, intercepts, seed_x, seed_y)
        cluster = Cluster(x_from=x_from)
        cluster.lines = sorted(members)
        cluster._member_set = set(cluster.lines)  # type: ignore[attr-defined]
        return cluster

    # The first boundary point w_0 sits at x = -infinity; any abscissa left
    # of every vertex sees the same set of lines below the level.
    start_x = level.sample_point_before_first_vertex()
    start_y = lines[level.initial_line].y_at(start_x)
    current = seed_cluster(-math.inf, start_x, start_y)

    for vertex in level.vertices:
        member_set = current._member_set  # type: ignore[attr-defined]
        for entering in vertex.entering_lines:
            if entering in member_set:
                continue
            if current.size < width:
                current.lines.append(entering)
                member_set.add(entering)
                continue
            # The cluster is full: close it at this vertex and start the
            # next one, seeded with the lines below the boundary point, then
            # retry the entering line (it always fits in a fresh cluster).
            current.x_to = vertex.x
            clusters.append(current)
            current = seed_cluster(vertex.x, vertex.x, vertex.y)
            member_set = current._member_set  # type: ignore[attr-defined]
            if entering not in member_set:
                current.lines.append(entering)
                member_set.add(entering)
    current.x_to = math.inf
    clusters.append(current)
    return clusters


def clustering_union(clusters: Sequence[Cluster]) -> List[int]:
    """Sorted union of the line indices appearing in any cluster (the set L_i)."""
    union = set()
    for cluster in clusters:
        union.update(cluster.lines)
    return sorted(union)


def relevant_cluster_index(clusters: Sequence[Cluster], x: float) -> int:
    """Index of the cluster relevant for abscissa ``x`` (linear scan reference)."""
    for index, cluster in enumerate(clusters):
        if cluster.covers(x):
            return index
    return len(clusters) - 1


def max_cluster_size(clusters: Sequence[Cluster]) -> int:
    """Largest cluster size (must be <= the width used to build)."""
    return max((cluster.size for cluster in clusters), default=0)
