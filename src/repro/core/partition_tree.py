"""The linear-size partition tree of Section 5 (Theorem 5.2).

``PartitionTreeIndex`` stores N points of R^d in O(n) disk blocks and
answers a halfspace query in O(n^{1-1/d+ε} + t) I/Os; the same traversal
also answers simplex queries (Remark i).  Every node holds a balanced
simplicial partition of its point subset into ``r_v = min(cB, 2 n_v)``
cells; a query visits a child only when the query hyperplane *crosses* its
cell, reports whole subtrees whose cells lie below the hyperplane, and
skips cells entirely above it.

The partition cells are produced by a pluggable partitioner (median-cut
boxes by default, ham-sandwich cells for the 2-D ablation) — the only
property the analysis needs is the o(r) crossing number of Theorem 5.1,
which both partitioners provide for hyperplane queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels
from repro.core.interface import ExternalIndex, Point
from repro.geometry.boxes import Box, CellRelation
from repro.geometry.partitions import PartitionCell, median_cut_partition
from repro.geometry.primitives import Hyperplane, LinearConstraint
from repro.geometry.simplex import Simplex
from repro.io.disk_array import DiskArray
from repro.io.store import BlockStore

Partitioner = Callable[[np.ndarray, int, Optional[np.ndarray]], List[PartitionCell]]


@dataclass
class _Node:
    """One partition-tree node.

    Leaves store their points in ``points_array``; internal nodes store a
    disk-resident child table (one record per child: child id + its cell's
    box corners) plus the in-memory ids of their children.
    """

    is_leaf: bool
    size: int
    points_array: Optional[DiskArray] = None
    child_table: Optional[DiskArray] = None
    children: List[int] = field(default_factory=list)


class PartitionTreeIndex(ExternalIndex):
    """Linear-space halfspace/simplex reporting for any fixed dimension.

    Parameters
    ----------
    points:
        Array-like of shape (N, d).
    store / block_size:
        The simulated disk (a private one is created when ``store`` is None).
    max_fanout:
        The constant ``cB`` bounding the partition size at every node;
        defaults to the block size.
    leaf_capacity:
        Leaves hold at most this many points (defaults to B).
    partitioner:
        Callable building the balanced simplicial partition; defaults to
        :func:`repro.geometry.partitions.median_cut_partition`.
    """

    def __init__(self, points: Sequence[Sequence[float]],
                 store: Optional[BlockStore] = None,
                 block_size: int = 64,
                 max_fanout: Optional[int] = None,
                 leaf_capacity: Optional[int] = None,
                 partitioner: Optional[Partitioner] = None):
        super().__init__(store, block_size)
        points = np.asarray(points, dtype=float)
        if points.size == 0 and points.ndim != 2:
            points = points.reshape(0, 2)
        if points.ndim != 2:
            raise ValueError("points must be a 2-D array of shape (N, d)")
        self._points = points
        self._num_points = len(points)
        self._dimension = points.shape[1]
        self._max_fanout = max_fanout if max_fanout is not None else self.block_size
        self._leaf_capacity = leaf_capacity if leaf_capacity is not None else self.block_size
        self._partitioner = partitioner if partitioner is not None else median_cut_partition
        self._nodes: List[_Node] = []
        self._last_nodes_visited = 0
        self._begin_space_accounting()
        if self._num_points:
            self._root = self._build(np.arange(self._num_points))
        else:
            self._root = None
        self._end_space_accounting()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, indices: np.ndarray) -> int:
        size = len(indices)
        if size <= self._leaf_capacity:
            records = [tuple(self._points[index]) for index in indices]
            node = _Node(is_leaf=True, size=size,
                         points_array=DiskArray(self._store, records))
            self._nodes.append(node)
            return len(self._nodes) - 1
        blocks = -(-size // self.block_size)
        fanout = max(2, min(self._max_fanout, 2 * blocks))
        cells = self._partitioner(self._points, fanout, indices)
        children: List[int] = []
        table_records = []
        for cell in cells:
            child_id = self._build(np.asarray(cell.indices))
            children.append(child_id)
            table_records.append((child_id, tuple(cell.cell.lower),
                                  tuple(cell.cell.upper)))
        node = _Node(is_leaf=False, size=size,
                     child_table=DiskArray(self._store, table_records),
                     children=children)
        self._nodes.append(node)
        return len(self._nodes) - 1

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def size(self) -> int:
        return self._num_points

    @property
    def num_nodes(self) -> int:
        """Total number of tree nodes."""
        return len(self._nodes)

    @property
    def last_nodes_visited(self) -> int:
        """Nodes whose cell was crossed during the most recent query."""
        return self._last_nodes_visited

    def estimated_query_ios(self, constraint: LinearConstraint,
                            expected_output: Optional[int] = None) -> float:
        """Theorem 5.2 bound: O(n^{1-1/d} + t) I/Os (ε dropped)."""
        del constraint
        blocks = max(1, self._store.blocks_for(max(1, self.size)))
        search = float(blocks) ** (1.0 - 1.0 / self.dimension)
        return 1.0 + search + self._output_blocks(expected_output)

    # ------------------------------------------------------------------
    # halfspace queries
    # ------------------------------------------------------------------
    def query(self, constraint: LinearConstraint) -> List[Point]:
        """Report every stored point satisfying the linear constraint."""
        if constraint.dimension != self._dimension:
            raise ValueError("constraint dimension %d does not match data "
                             "dimension %d" % (constraint.dimension, self._dimension))
        if self._root is None:
            return []
        hyperplane = constraint.hyperplane
        results: List[Point] = []
        self._last_nodes_visited = 0
        self._query_node(self._root, hyperplane, constraint, results)
        return results

    def _query_node(self, node_id: int, hyperplane: Hyperplane,
                    constraint: LinearConstraint, results: List[Point]) -> None:
        node = self._nodes[node_id]
        self._last_nodes_visited += 1
        if node.is_leaf:
            kernels.filter_constraint(node.points_array, constraint,
                                      out=results)
            return
        for record in node.child_table.scan():
            child_id, lower, upper = record
            box = Box(lower, upper)
            relation = box.classify_halfspace(hyperplane)
            if relation is CellRelation.ABOVE:
                continue
            if relation is CellRelation.BELOW:
                self.report_subtree(child_id, results)
            else:
                self._query_node(child_id, hyperplane, constraint, results)

    def report_subtree(self, node_id: int, results: List[Point]) -> None:
        """Append every point stored under ``node_id`` (no filtering)."""
        node = self._nodes[node_id]
        if node.is_leaf:
            kernels.collect_records(node.points_array, out=results)
            return
        for record in node.child_table.scan():
            self.report_subtree(record[0], results)

    # ------------------------------------------------------------------
    # simplex queries (Section 5, Remark i)
    # ------------------------------------------------------------------
    def query_simplex(self, simplex: Simplex) -> List[Point]:
        """Report every stored point inside ``simplex``."""
        if self._root is None:
            return []
        results: List[Point] = []
        self._query_simplex_node(self._root, simplex, results)
        return results

    def _query_simplex_node(self, node_id: int, simplex: Simplex,
                            results: List[Point]) -> None:
        node = self._nodes[node_id]
        if node.is_leaf:
            kernels.filter_simplex(node.points_array, simplex, out=results)
            return
        for record in node.child_table.scan():
            child_id, lower, upper = record
            box = Box(lower, upper)
            if simplex.certainly_disjoint_from_box(box):
                continue
            if simplex.contains_box(box):
                self.report_subtree(child_id, results)
            else:
                self._query_simplex_node(child_id, simplex, results)
