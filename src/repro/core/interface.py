"""Common interface shared by every external-memory index in the library.

All indexes are built over a :class:`~repro.io.store.BlockStore` and expose:

* ``query(constraint)`` — report the stored points satisfying a
  :class:`~repro.geometry.primitives.LinearConstraint`;
* ``query_with_stats(constraint)`` — the same, plus the I/O counters spent
  on that query (what the benchmarks record);
* ``space_blocks`` — the number of disk blocks the structure occupies.

The helpers here keep the accounting uniform so benchmark code can treat the
paper's structures and the baselines interchangeably.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geometry.primitives import LinearConstraint
from repro.io.store import BlockStore, IOStats

Point = Tuple[float, ...]


@dataclass
class QueryResult:
    """The outcome of one query: reported points plus its I/O cost."""

    points: List[Point]
    ios: IOStats

    @property
    def count(self) -> int:
        """Number of reported points (the paper's T)."""
        return len(self.points)

    @property
    def total_ios(self) -> int:
        """Total I/Os charged to the query."""
        return self.ios.total


class ExternalIndex(abc.ABC):
    """Base class for the external-memory halfspace indexes.

    Subclasses must populate ``self._store`` before calling
    :meth:`_begin_space_accounting` / :meth:`_end_space_accounting` around
    their build phase, and implement :meth:`query`.
    """

    def __init__(self, store: Optional[BlockStore], block_size: int,
                 cache_blocks: int = 4):
        if store is None:
            store = BlockStore(block_size=block_size, cache_blocks=cache_blocks)
        self._store = store
        self._space_blocks = 0
        self._build_ios: Optional[IOStats] = None

    # ------------------------------------------------------------------
    # bookkeeping helpers for subclasses
    # ------------------------------------------------------------------
    def _begin_space_accounting(self) -> None:
        self._blocks_before_build = self._store.num_blocks
        self._stats_before_build = self._store.stats.snapshot()

    def _end_space_accounting(self) -> None:
        self._space_blocks = self._store.num_blocks - self._blocks_before_build
        self._build_ios = self._store.stats.delta(self._stats_before_build)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def store(self) -> BlockStore:
        """The simulated disk the index lives on."""
        return self._store

    @property
    def block_size(self) -> int:
        """The block size B of the underlying disk."""
        return self._store.block_size

    @property
    def space_blocks(self) -> int:
        """Number of disk blocks allocated while building the index."""
        return self._space_blocks

    @property
    def build_ios(self) -> Optional[IOStats]:
        """I/O counters accumulated during the build (write-dominated)."""
        return self._build_ios

    @property
    @abc.abstractmethod
    def dimension(self) -> int:
        """Dimension of the stored points."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of stored points (the paper's N)."""

    @abc.abstractmethod
    def query(self, constraint: LinearConstraint) -> List[Point]:
        """Report every stored point satisfying ``constraint``."""

    # ------------------------------------------------------------------
    # cost estimation (planner hook)
    # ------------------------------------------------------------------
    def _output_blocks(self, expected_output: Optional[int]) -> float:
        """The paper's ``t = T/B`` for an expected output of T records."""
        if expected_output is None:
            expected_output = min(self.size, self.block_size)
        return max(0.0, expected_output) / self.block_size

    def _log_b_n(self) -> float:
        """``log_B n`` — the additive search term of the optimal structures."""
        blocks = max(2, self._store.blocks_for(max(1, self.size)))
        return max(1.0, math.log(blocks) / math.log(max(2, self.block_size)))

    def estimated_query_ios(self, constraint: LinearConstraint,
                            expected_output: Optional[int] = None) -> float:
        """Cheap model-based estimate of what :meth:`query` would cost.

        This is the hook the engine's cost-based planner calls to compare
        candidate indexes *without* running the query.  It must be O(1):
        no block reads, only arithmetic on ``N``, ``B`` and the expected
        output size ``T`` (``expected_output``; when None, one block's
        worth of output is assumed).

        The default is the conservative worst case of a structure with no
        search guarantee: read every block the structure occupies (a full
        scan of the index).  Subclasses override this with their paper
        bound, e.g. ``O(log_B n + t)`` for the optimal structures or
        ``O(n^{1-1/d} + t)`` for the linear-size partition tree.  Constant
        factors are deliberately crude — the planner calibrates them
        against observed ``query_with_stats`` history.
        """
        del constraint, expected_output  # a scan's cost depends on neither
        blocks = self._space_blocks or self._store.blocks_for(max(1, self.size))
        return float(max(1, blocks))

    def query_with_stats(self, constraint: LinearConstraint,
                         clear_cache: bool = True) -> QueryResult:
        """Run :meth:`query` and report the I/Os it cost.

        ``clear_cache`` empties the buffer pool first so that measured
        counts do not depend on the previous query (the default for
        benchmarks; set False to measure warm-cache behaviour).
        """
        if clear_cache:
            self._store.clear_cache()
        before = self._store.stats.snapshot()
        points = self.query(constraint)
        after = self._store.stats.snapshot()
        return QueryResult(points=points, ios=after.delta(before))

    def validate_against_scan(self, constraint: LinearConstraint,
                              points: Sequence[Point]) -> bool:
        """Check a query result against an in-memory scan (test helper)."""
        expected = {tuple(point) for point in points if constraint.below(point)}
        actual = {tuple(point) for point in self.query(constraint)}
        return expected == actual
