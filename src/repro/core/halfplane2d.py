"""The optimal two-dimensional structure (Section 3).

``HalfplaneIndex2D`` stores N planar points in O(n) disk blocks and answers
a linear-constraint (halfplane) query in O(log_B n + t) I/Os in the worst
case.  It works in the dual: each point becomes a line, and the query asks
for the lines lying below the dual point of the query constraint.

Construction (Section 3.2).  The lines are peeled into layers
``L_1, L_2, ...``: layer ``i`` picks a random level ``λ_i`` between
``β = B log_B n`` and ``2β`` of the remaining lines ``H_i``, walks that
level, and compresses it into the greedy ``3λ_i``-clustering of Lemma 3.2.
The layer stores each cluster contiguously on disk (sorted by slope) plus a
B-tree over the clusters' boundary abscissae; the lines appearing in the
layer are removed and the process repeats.

Query (Section 3.3).  Layers are probed in order.  In each layer the B-tree
finds the *relevant* cluster of the query's x-coordinate; if fewer than
``λ_i`` of its lines pass below the query point, Lemma 3.1 guarantees that
every remaining line below the query is in that cluster, so the query
reports them and stops.  Otherwise the query walks clusters left and right
(stopping by the Lemma 3.4 rule), reports everything below the point, and
moves on to the next layer.  The early exit bounds the number of probed
layers by O(1 + t / log_B n), giving the O(log_B n + t) total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.clustering import Cluster, clustering_union, greedy_clustering
from repro.core.interface import ExternalIndex, Point
from repro.geometry.arrangement2d import compute_level
from repro.geometry.duality import dual_line_of_point, dual_point_of_hyperplane
from repro.geometry.primitives import EPS, Line2, LinearConstraint
from repro.io.btree import BTree
from repro.io.disk_array import DiskArray
from repro.io.store import BlockStore


@dataclass
class _Layer:
    """One clustering Γ_i: its threshold λ_i, cluster storage and boundary tree."""

    lam: int
    clusters: List[DiskArray]
    boundary_tree: BTree
    num_lines: int


def default_beta(num_points: int, block_size: int) -> int:
    """The paper's layer threshold ``β = B * log_B n`` (at least B)."""
    blocks = max(2, -(-num_points // block_size))
    log_term = max(1.0, math.log(blocks) / math.log(max(2, block_size)))
    return max(block_size, int(round(block_size * log_term)))


class HalfplaneIndex2D(ExternalIndex):
    """Linear-space, optimal-query halfplane reporting index (Theorem 3.5).

    Parameters
    ----------
    points:
        Array-like of shape (N, 2): the points to index.
    store:
        Optional shared :class:`BlockStore`; a private one with the given
        ``block_size`` is created when omitted.
    block_size:
        The block size B when a private store is created.
    beta:
        Override for the layer threshold β (defaults to ``B log_B n``).
    cluster_width_factor:
        The cluster capacity as a multiple of λ_i (the paper proves 3; the
        ablation benchmark varies it).
    seed:
        Seed for the random level choices.
    """

    def __init__(self, points: Sequence[Sequence[float]],
                 store: Optional[BlockStore] = None,
                 block_size: int = 64,
                 beta: Optional[int] = None,
                 cluster_width_factor: int = 3,
                 seed: Optional[int] = None):
        super().__init__(store, block_size)
        points = np.asarray(points, dtype=float)
        if points.size and (points.ndim != 2 or points.shape[1] != 2):
            raise ValueError("HalfplaneIndex2D expects points of shape (N, 2)")
        self._points = points.reshape(-1, 2)
        self._num_points = len(self._points)
        if cluster_width_factor < 1:
            raise ValueError("cluster_width_factor must be >= 1")
        self._cluster_width_factor = cluster_width_factor
        self._beta = beta if beta is not None else default_beta(
            self._num_points, self.block_size)
        self._rng = np.random.default_rng(seed)
        self._layers: List[_Layer] = []
        self._last_layers_probed = 0
        self._begin_space_accounting()
        self._build()
        self._end_space_accounting()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        lines = [dual_line_of_point(point) for point in self._points]
        remaining = list(range(self._num_points))
        while remaining:
            subset_lines = [lines[index] for index in remaining]
            lam = int(self._rng.integers(self._beta, 2 * self._beta + 1))
            if len(remaining) <= 2 * lam or lam >= len(remaining):
                self._append_trivial_layer(remaining, subset_lines, lam)
                remaining = []
                break
            level = compute_level(subset_lines, lam)
            width = self._cluster_width_factor * lam
            clusters = greedy_clustering(level, width)
            layer_local_lines = clustering_union(clusters)
            if not layer_local_lines:
                # Defensive: should not happen (every point of the level has
                # λ lines below it); fall back to a trivial final layer.
                self._append_trivial_layer(remaining, subset_lines, lam)
                remaining = []
                break
            self._append_layer(remaining, subset_lines, lam, clusters)
            removed = {remaining[local] for local in layer_local_lines}
            remaining = [index for index in remaining if index not in removed]

    def _append_trivial_layer(self, remaining: List[int],
                              subset_lines: List[Line2], lam: int) -> None:
        """Store the last few lines as a single cluster covering all of R."""
        cluster = Cluster(lines=list(range(len(subset_lines))),
                          x_from=-math.inf, x_to=math.inf)
        self._append_layer(remaining, subset_lines, lam, [cluster])

    def _append_layer(self, remaining: List[int], subset_lines: List[Line2],
                      lam: int, clusters: List[Cluster]) -> None:
        """Write a layer's clusters and boundary B-tree to disk."""
        cluster_arrays: List[DiskArray] = []
        boundary_entries: List[Tuple[float, int]] = []
        total_lines = 0
        for cluster_index, cluster in enumerate(clusters):
            records = []
            for local in cluster.lines:
                global_index = remaining[local]
                line = subset_lines[local]
                point = self._points[global_index]
                records.append((global_index, line.slope, line.intercept,
                                float(point[0]), float(point[1])))
            records.sort(key=lambda record: record[1])
            cluster_arrays.append(DiskArray(self._store, records))
            boundary_entries.append((cluster.x_from, cluster_index))
            total_lines += len(records)
        boundary_tree = BTree(self._store)
        boundary_tree.bulk_load(boundary_entries)
        self._layers.append(_Layer(lam=lam, clusters=cluster_arrays,
                                   boundary_tree=boundary_tree,
                                   num_lines=total_lines))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return 2

    @property
    def size(self) -> int:
        return self._num_points

    @property
    def num_layers(self) -> int:
        """Number of clusterings Γ_i (at most N / β)."""
        return len(self._layers)

    @property
    def beta(self) -> int:
        """The layer threshold β used by this index."""
        return self._beta

    @property
    def last_layers_probed(self) -> int:
        """How many layers the most recent query visited (diagnostics)."""
        return self._last_layers_probed

    def estimated_query_ios(self, constraint: LinearConstraint,
                            expected_output: Optional[int] = None) -> float:
        """Theorem 3.5 bound: O(log_B n + t) worst-case I/Os."""
        del constraint
        return 1.0 + self._log_b_n() + self._output_blocks(expected_output)

    def query(self, constraint: LinearConstraint) -> List[Point]:
        """Report every stored point satisfying the linear constraint."""
        if constraint.dimension != 2:
            raise ValueError("expected a 2-D constraint, got dimension %d"
                             % constraint.dimension)
        if self._num_points == 0:
            return []
        query_x, query_y = dual_point_of_hyperplane(constraint.hyperplane)
        reported: dict = {}
        self._last_layers_probed = 0
        for layer in self._layers:
            self._last_layers_probed += 1
            finished = self._query_layer(layer, query_x, query_y, reported)
            if finished:
                break
        return [(px, py) for (px, py) in reported.values()]

    def _query_layer(self, layer: _Layer, query_x: float, query_y: float,
                     reported: dict) -> bool:
        """Probe one clustering; return True if the whole query is answered."""
        entry = layer.boundary_tree.predecessor(query_x)
        relevant = entry[1] if entry is not None else 0
        below_relevant, above_relevant = self._scan_cluster(
            layer, relevant, query_x, query_y, reported)
        if below_relevant < layer.lam or len(layer.clusters) == 1:
            # Lemma 3.1: every remaining line below the query point lives in
            # the relevant cluster, which we just reported.
            return below_relevant < layer.lam
        # Otherwise report the rest of this layer by walking outwards
        # (Lemma 3.4 gives the stopping rule), then move to the next layer.
        self._walk_direction(layer, relevant + 1, +1, query_x, query_y, reported)
        self._walk_direction(layer, relevant - 1, -1, query_x, query_y, reported)
        return False

    def _walk_direction(self, layer: _Layer, start: int, step: int,
                        query_x: float, query_y: float, reported: dict) -> None:
        distinct_above: Set[int] = set()
        index = start
        while 0 <= index < len(layer.clusters):
            __, above = self._scan_cluster(layer, index, query_x, query_y,
                                           reported, distinct_above)
            if len(distinct_above) > layer.lam:
                break
            index += step

    def _scan_cluster(self, layer: _Layer, cluster_index: int, query_x: float,
                      query_y: float, reported: dict,
                      above_set: Optional[Set[int]] = None) -> Tuple[int, int]:
        """Read one cluster, report its below-lines, count above-lines."""
        below = 0
        above = 0
        for record in layer.clusters[cluster_index].scan():
            global_index, slope, intercept, px, py = record
            height = slope * query_x + intercept
            if height <= query_y + EPS:
                below += 1
                if global_index not in reported:
                    reported[global_index] = (px, py)
            else:
                above += 1
                if above_set is not None:
                    above_set.add(global_index)
        return below, above
