"""k-nearest-neighbour searching in the plane (Theorem 4.3).

Each stored point ``(a, b)`` is lifted to the plane
``z = a^2 + b^2 - 2 a x - 2 b y``; the height of that plane at a query
``(p, q)`` is the squared distance to the point shifted by the constant
``-(p^2 + q^2)``, so the k nearest neighbours are exactly the k lowest
lifted planes along the vertical line through the query.  The structure is
therefore a thin wrapper around
:class:`~repro.core.lowest_planes.LowestPlanesIndex`, inheriting its
O(n log2 n) expected space and O(log_B n + k/B) expected query I/Os.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lowest_planes import LowestPlanesIndex
from repro.geometry.lifting import lift_point
from repro.io.store import BlockStore, IOStats


class KNNIndex:
    """External-memory k-nearest-neighbour index for planar points."""

    def __init__(self, points: Sequence[Sequence[float]],
                 store: Optional[BlockStore] = None,
                 block_size: int = 64,
                 copies: int = 1,
                 beta: Optional[int] = None,
                 domain: Optional[Tuple[float, float, float, float]] = None,
                 seed: Optional[int] = None):
        points = np.asarray(points, dtype=float)
        if points.size and (points.ndim != 2 or points.shape[1] != 2):
            raise ValueError("KNNIndex expects points of shape (N, 2)")
        self._points = points.reshape(-1, 2)
        self._num_points = len(self._points)
        if store is None:
            store = BlockStore(block_size=block_size)
        self._store = store
        if domain is None and self._num_points:
            # Query positions live in the same range as the data; leave a
            # margin so the envelope domain covers them without being so
            # large that boundary triangles collect bloated conflict lists.
            span = float(np.abs(self._points).max()) if self._num_points else 1.0
            width = max(4.0, 2.0 * span)
            domain = (-width, width, -width, width)
        planes = [lift_point(point) for point in self._points]
        blocks_before = store.num_blocks
        self._planes_index = LowestPlanesIndex(
            planes, store=store, copies=copies, beta=beta, domain=domain,
            seed=seed)
        self._space_blocks = store.num_blocks - blocks_before

    @property
    def store(self) -> BlockStore:
        """The simulated disk."""
        return self._store

    @property
    def block_size(self) -> int:
        """The block size B of the underlying disk."""
        return self._store.block_size

    @property
    def size(self) -> int:
        """Number of indexed points."""
        return self._num_points

    @property
    def space_blocks(self) -> int:
        """Disk blocks occupied by the index."""
        return self._space_blocks

    @property
    def planes_index(self) -> LowestPlanesIndex:
        """The underlying Theorem 4.2 structure."""
        return self._planes_index

    def nearest(self, query: Sequence[float], k: int) -> List[Tuple[float, float]]:
        """The ``k`` stored points nearest to ``query``, closest first."""
        if k <= 0 or self._num_points == 0:
            return []
        k = min(k, self._num_points)
        qx, qy = float(query[0]), float(query[1])
        lowest = self._planes_index.k_lowest(qx, qy, k)
        return [tuple(self._points[index]) for index, __ in lowest]

    def nearest_with_distances(self, query: Sequence[float],
                               k: int) -> List[Tuple[Tuple[float, float], float]]:
        """As :meth:`nearest` but paired with the true Euclidean distances."""
        qx, qy = float(query[0]), float(query[1])
        neighbours = self.nearest(query, k)
        return [(point, math.hypot(point[0] - qx, point[1] - qy))
                for point in neighbours]

    def nearest_with_stats(self, query: Sequence[float], k: int,
                           clear_cache: bool = True):
        """Run :meth:`nearest` and return ``(points, IOStats)``."""
        if clear_cache:
            self._store.clear_cache()
        before = self._store.stats.snapshot()
        points = self.nearest(query, k)
        after = self._store.stats.snapshot()
        return points, after.delta(before)
