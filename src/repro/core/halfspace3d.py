"""The three-dimensional halfspace index of Section 4 (Theorem 4.4).

``HalfspaceIndex3D`` stores N points of R^3 in O(n log2 n) expected blocks
and reports the points satisfying a 3-D linear constraint in
O(log_B n + t) expected I/Os.  It dualises the points to planes and answers
"planes below the dual query point" with the layered random-sampling
structure of :class:`~repro.core.lowest_planes.LowestPlanesIndex`, doubling
the guess ``k`` geometrically as in Section 4.2.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.interface import ExternalIndex, Point
from repro.core.lowest_planes import LowestPlanesIndex
from repro.geometry.duality import dual_plane_of_point, dual_point_of_hyperplane
from repro.geometry.primitives import LinearConstraint
from repro.io.store import BlockStore


class HalfspaceIndex3D(ExternalIndex):
    """Average-case optimal halfspace reporting in R^3.

    Parameters mirror :class:`~repro.core.lowest_planes.LowestPlanesIndex`;
    ``copies`` is the number of independent sample structures (the paper
    uses three for the sharpest expectation, one is the practical default).
    """

    def __init__(self, points: Sequence[Sequence[float]],
                 store: Optional[BlockStore] = None,
                 block_size: int = 64,
                 copies: int = 1,
                 beta: Optional[int] = None,
                 domain: Optional[Tuple[float, float, float, float]] = None,
                 envelope_backend: str = "auto",
                 seed: Optional[int] = None):
        super().__init__(store, block_size)
        points = np.asarray(points, dtype=float)
        if points.size and (points.ndim != 2 or points.shape[1] != 3):
            raise ValueError("HalfspaceIndex3D expects points of shape (N, 3)")
        self._points = points.reshape(-1, 3)
        self._num_points = len(self._points)
        self._begin_space_accounting()
        planes = [dual_plane_of_point(point) for point in self._points]
        self._planes_index = LowestPlanesIndex(
            planes,
            store=self._store,
            copies=copies,
            beta=beta,
            domain=domain,
            envelope_backend=envelope_backend,
            seed=seed,
        )
        self._end_space_accounting()

    @property
    def dimension(self) -> int:
        return 3

    @property
    def size(self) -> int:
        return self._num_points

    @property
    def planes_index(self) -> LowestPlanesIndex:
        """The underlying Theorem 4.2 structure (exposed for diagnostics)."""
        return self._planes_index

    def estimated_query_ios(self, constraint: LinearConstraint,
                            expected_output: Optional[int] = None) -> float:
        """Theorem 4.1 bound: O(log_B n + t) expected I/Os."""
        del constraint
        return 1.0 + self._log_b_n() + self._output_blocks(expected_output)

    def query(self, constraint: LinearConstraint) -> List[Point]:
        """Report every stored point satisfying the 3-D linear constraint."""
        if constraint.dimension != 3:
            raise ValueError("expected a 3-D constraint, got dimension %d"
                             % constraint.dimension)
        if self._num_points == 0:
            return []
        qx, qy, qz = dual_point_of_hyperplane(constraint.hyperplane)
        indices = self._planes_index.planes_below_point(qx, qy, qz)
        return [tuple(self._points[index]) for index in indices]
