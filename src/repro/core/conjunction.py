"""Conjunctions of linear constraints (convex-polytope queries).

Section 1.1 of the paper observes that "several complex queries can be
viewed as reporting all points lying within a given convex query region",
i.e. an intersection of halfspace queries.  This module provides the small
piece of public API that turns a list of :class:`LinearConstraint` /
``normal . x <= offset`` conditions into a convex polytope and evaluates it
against an index:

* on a :class:`~repro.core.partition_tree.PartitionTreeIndex` the query is
  answered natively by the simplex-query traversal of Section 5 (Remark i);
* on any other index the most selective single constraint is answered by
  the index and the remaining conditions are filtered from its output,
  which is correct for every index and costs one halfspace query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.interface import ExternalIndex, Point, QueryResult
from repro.core.partition_tree import PartitionTreeIndex
from repro.geometry.primitives import LinearConstraint
from repro.geometry.simplex import Halfspace, Simplex


@dataclass(frozen=True)
class ConstraintConjunction:
    """A conjunction (AND) of linear constraints over the same dimension."""

    constraints: Tuple[LinearConstraint, ...]
    extra_halfspaces: Tuple[Halfspace, ...] = ()

    @classmethod
    def of(cls, *constraints: LinearConstraint) -> "ConstraintConjunction":
        """Build a conjunction from individual constraints."""
        if not constraints:
            raise ValueError("a conjunction needs at least one constraint")
        dimensions = {constraint.dimension for constraint in constraints}
        if len(dimensions) != 1:
            raise ValueError("all constraints must share one dimension, got %r"
                             % sorted(dimensions))
        return cls(constraints=tuple(constraints))

    def and_halfspace(self, normal: Sequence[float],
                      offset: float) -> "ConstraintConjunction":
        """Add a raw halfspace ``normal . x <= offset`` (any orientation)."""
        halfspace = Halfspace(normal=tuple(float(v) for v in normal),
                              offset=float(offset))
        return ConstraintConjunction(constraints=self.constraints,
                                     extra_halfspaces=self.extra_halfspaces + (halfspace,))

    @property
    def dimension(self) -> int:
        """Ambient dimension of the conjunction."""
        return self.constraints[0].dimension

    def satisfied_by(self, point: Sequence[float]) -> bool:
        """True if ``point`` satisfies every conjunct."""
        if not all(constraint.below(point) for constraint in self.constraints):
            return False
        return all(halfspace.contains(point) for halfspace in self.extra_halfspaces)

    def filter(self, points: Iterable[Sequence[float]]) -> List[Sequence[float]]:
        """In-memory reference filter (ground truth for the tests)."""
        return [point for point in points if self.satisfied_by(point)]

    def satisfied_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`satisfied_by`: a boolean mask over the rows.

        Conjuncts short-circuit per batch: each one only evaluates the
        rows every earlier conjunct accepted (cumulative masking), the
        batch analogue of the scalar ``all(...)`` early exit.
        """
        indices = np.arange(points.shape[0])
        active = points
        for constraint in self.constraints:
            keep = constraint.below_many(active)
            if not keep.all():
                indices = indices[keep]
                active = active[keep]
                if indices.size == 0:
                    break
        if indices.size:
            for halfspace in self.extra_halfspaces:
                keep = halfspace.contains_many(active)
                if not keep.all():
                    indices = indices[keep]
                    active = active[keep]
                    if indices.size == 0:
                        break
        mask = np.zeros(points.shape[0], dtype=bool)
        mask[indices] = True
        return mask

    def to_polytope(self) -> Simplex:
        """The conjunction as an intersection of halfspaces.

        A constraint ``x_d <= a_0 + sum a_i x_i`` becomes the halfspace
        ``-a_1 x_1 - ... - a_{d-1} x_{d-1} + x_d <= a_0``.
        """
        halfspaces: List[Halfspace] = []
        for constraint in self.constraints:
            normal = tuple(-c for c in constraint.coeffs) + (1.0,)
            halfspaces.append(Halfspace(normal=normal, offset=constraint.offset))
        halfspaces.extend(self.extra_halfspaces)
        return Simplex(halfspaces=tuple(halfspaces))


def query_conjunction(index: ExternalIndex,
                      conjunction: ConstraintConjunction) -> List[Point]:
    """Report every point of ``index`` satisfying the conjunction.

    Partition trees answer the polytope natively (Section 5, Remark i);
    other indexes answer their first constraint and filter the rest.
    """
    if conjunction.dimension != index.dimension:
        raise ValueError("conjunction dimension %d does not match index "
                         "dimension %d" % (conjunction.dimension, index.dimension))
    if isinstance(index, PartitionTreeIndex) or hasattr(index, "query_simplex"):
        return index.query_simplex(conjunction.to_polytope())
    candidates = index.query(conjunction.constraints[0])
    from repro.core import kernels
    from repro.io.block import as_point_matrix
    if kernels.vectorized_enabled() and len(candidates) > 1:
        matrix = as_point_matrix(list(candidates))
        if matrix is not None:
            mask = conjunction.satisfied_many(matrix)
            # Index into the original list so callers keep the exact
            # objects the underlying index reported.
            return [candidates[int(i)] for i in np.nonzero(mask)[0]]
    return [point for point in candidates if conjunction.satisfied_by(point)]


def query_conjunction_with_stats(index: ExternalIndex,
                                 conjunction: ConstraintConjunction,
                                 clear_cache: bool = True) -> QueryResult:
    """As :func:`query_conjunction`, with the I/O cost of the evaluation."""
    store = index.store
    if clear_cache:
        store.clear_cache()
    before = store.stats.snapshot()
    points = query_conjunction(index, conjunction)
    after = store.stats.snapshot()
    return QueryResult(points=points, ios=after.delta(before))
