"""Batch scan kernels: vectorized block filtering behind the I/O seam.

Every index in this repository reads blocks through the same accounting
seam (:class:`~repro.io.store.BlockStore`), then filters the records it
got with pure-Python point-at-a-time predicates.  This module batches
that second half: a block arrives as one contiguous ``(n, d)`` float64
matrix (:meth:`DiskArray.scan_batches`) and the predicate is evaluated
as a masked numpy expression over the whole matrix.  The I/O counters
are untouched — the kernels consume exactly the block reads the scalar
path would have issued, in the same order.

Parity is guaranteed, not approximate: the batch predicates
(:meth:`LinearConstraint.below_many`, :meth:`Simplex.contains_many`)
replay the scalar accumulation order coefficient by coefficient, so a
point exactly on the boundary hyperplane resolves identically in both
paths.  Blocks that are not columnar (mixed record types, ragged
widths) silently take the scalar fallback per block.

A process-wide toggle (:func:`set_vectorized`, :func:`scalar_kernels`)
forces the scalar path everywhere; the benchmark uses it to measure the
speedup with identical I/O traces on both sides.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.primitives import LinearConstraint
from repro.geometry.simplex import Simplex
from repro.io.block import BlockPayload, as_point_matrix
from repro.io.disk_array import DiskArray

_VECTORIZED = True


def set_vectorized(enabled: bool) -> bool:
    """Enable/disable the vectorized kernels; returns the previous value."""
    global _VECTORIZED
    previous = _VECTORIZED
    _VECTORIZED = bool(enabled)
    return previous


def vectorized_enabled() -> bool:
    """True when the batch kernels are active (the default)."""
    return _VECTORIZED


@contextmanager
def scalar_kernels():
    """Context manager forcing the original record-at-a-time loops."""
    previous = set_vectorized(False)
    try:
        yield
    finally:
        set_vectorized(previous)


def matrix_rows(matrix: np.ndarray) -> List[Tuple[float, ...]]:
    """Materialize matrix rows as plain-float tuples.

    ``tolist`` converts to builtin floats in one pass, so results are
    JSON-serializable and compare equal (``==``, ``hash``) to the tuples
    the scalar path returns.
    """
    return [tuple(row) for row in matrix.tolist()]


def _columnar_stack(payloads: List[BlockPayload]) -> Optional[np.ndarray]:
    """One matrix for an all-columnar, same-width payload list, else None.

    Stacking lets a multi-block scan evaluate its predicate once instead
    of once per block (the per-call numpy overhead dominates small
    blocks).  Row order is exactly scan order, and the predicate kernels
    are row-independent, so the stacked evaluation is bit-identical to
    the per-block one.  The payloads were already read — I/O counters
    are untouched.
    """
    if not payloads or not all(p.is_columnar for p in payloads):
        return None
    width = payloads[0].matrix.shape[1]
    if any(p.matrix.shape[1] != width for p in payloads):
        return None
    if len(payloads) == 1:
        return payloads[0].matrix
    return np.concatenate([p.matrix for p in payloads])


def filter_constraint(array: DiskArray, constraint: LinearConstraint,
                      out: Optional[List[Any]] = None) -> List[Any]:
    """All records of ``array`` satisfying ``constraint``.

    The batch analogue of ``[r for r in array.scan() if
    constraint.below(r)]`` with identical I/O charging and identical
    results (order preserved).  Appends into ``out`` when given.
    """
    results = out if out is not None else []
    if not _VECTORIZED:
        for record in array.scan():
            if constraint.below(record):
                results.append(record)
        return results
    payloads = list(array.scan_batches())
    matrix = _columnar_stack(payloads)
    if matrix is not None:
        mask = constraint.below_many(matrix)
        if mask.any():
            results.extend(matrix_rows(matrix[mask]))
        return results
    for payload in payloads:
        _filter_payload_constraint(payload, constraint, results)
    return results


def _filter_payload_constraint(payload: BlockPayload,
                               constraint: LinearConstraint,
                               results: List[Any]) -> None:
    if payload.is_columnar:
        mask = constraint.below_many(payload.matrix)
        if mask.any():
            results.extend(matrix_rows(payload.matrix[mask]))
    else:
        for record in payload.records():
            if constraint.below(record):
                results.append(record)


def filter_simplex(array: DiskArray, simplex: Simplex,
                   out: Optional[List[Any]] = None) -> List[Any]:
    """All records of ``array`` inside ``simplex`` (batch per block)."""
    results = out if out is not None else []
    if not _VECTORIZED:
        for record in array.scan():
            if simplex.contains(record):
                results.append(record)
        return results
    payloads = list(array.scan_batches())
    matrix = _columnar_stack(payloads)
    if matrix is not None:
        mask = simplex.contains_many(matrix)
        if mask.any():
            results.extend(matrix_rows(matrix[mask]))
        return results
    for payload in payloads:
        if payload.is_columnar:
            mask = simplex.contains_many(payload.matrix)
            if mask.any():
                results.extend(matrix_rows(payload.matrix[mask]))
        else:
            for record in payload.records():
                if simplex.contains(record):
                    results.append(record)
    return results


def collect_records(array: DiskArray,
                    out: Optional[List[Any]] = None) -> List[Any]:
    """All records of ``array`` (the unfiltered report path).

    Same I/Os as ``list(array.scan())``; columnar blocks materialize via
    one ``tolist`` instead of a per-record Python loop.
    """
    results = out if out is not None else []
    if not _VECTORIZED:
        results.extend(array.scan())
        return results
    for payload in array.scan_batches():
        if payload.is_columnar:
            results.extend(matrix_rows(payload.matrix))
        else:
            results.extend(payload.records())
    return results


def filter_records(records: Sequence[Any], constraint: LinearConstraint,
                   out: Optional[List[Any]] = None) -> List[Any]:
    """Filter an in-memory record list through the batch kernel.

    Used by call sites that already hold a Python list (candidate sets,
    buffers read through other paths).  Falls back to the scalar loop
    for non-columnar lists or when vectorization is off.
    """
    results = out if out is not None else []
    if _VECTORIZED and len(records) > 1:
        matrix = as_point_matrix(list(records))
        if matrix is not None:
            mask = constraint.below_many(matrix)
            # Select the ORIGINAL objects so callers keep identity.
            results.extend(records[int(i)] for i in np.nonzero(mask)[0])
            return results
    for record in records:
        if constraint.below(record):
            results.append(record)
    return results
