"""The space/query trade-off structure for R^3 (Section 6, Theorem 6.1).

``HybridIndex3D`` runs the partition-tree recursion of Section 5 but stops
as soon as a subset has at most ``B^a`` points; each such leaf subset is
stored in the Section 4 random-sampling structure.  The result uses
O(n log2 B) blocks and answers a halfspace query in
O((n / B^{a-1})^{2/3+ε} + t) expected I/Os: the tree shrinks the problem to
O((n/B^{a-1})^{2/3+ε}) leaves crossed by the query plane, and each of those
answers its residual query in O(log_B n + t_leaf) expected I/Os.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.halfspace3d import HalfspaceIndex3D
from repro.core.interface import ExternalIndex, Point
from repro.core.partition_tree import Partitioner
from repro.geometry.boxes import Box, CellRelation
from repro.geometry.partitions import median_cut_partition
from repro.geometry.primitives import Hyperplane, LinearConstraint
from repro.io.disk_array import DiskArray
from repro.io.store import BlockStore


@dataclass
class _HybridNode:
    """Internal node, or leaf holding a Section 4 structure plus a raw copy."""

    is_leaf: bool
    size: int
    child_table: Optional[DiskArray] = None
    children: List[int] = field(default_factory=list)
    leaf_index: Optional[HalfspaceIndex3D] = None
    points_array: Optional[DiskArray] = None


class HybridIndex3D(ExternalIndex):
    """Theorem 6.1: O(n log2 B) space, O((n/B^{a-1})^{2/3+ε} + t) query I/Os.

    Parameters
    ----------
    leaf_exponent:
        The constant ``a > 1``: recursion stops at subsets of ``<= B^a``
        points, which are then indexed by the Section 4 structure.
    copies / seed:
        Passed through to the leaf structures.
    """

    def __init__(self, points: Sequence[Sequence[float]],
                 store: Optional[BlockStore] = None,
                 block_size: int = 64,
                 leaf_exponent: float = 1.5,
                 max_fanout: Optional[int] = None,
                 copies: int = 1,
                 partitioner: Optional[Partitioner] = None,
                 seed: Optional[int] = None):
        super().__init__(store, block_size)
        if leaf_exponent <= 1.0:
            raise ValueError("leaf_exponent must be > 1 (the paper's a > 1)")
        points = np.asarray(points, dtype=float)
        if points.size == 0 and points.ndim != 2:
            points = points.reshape(0, 3)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("HybridIndex3D expects points of shape (N, 3)")
        self._points = points
        self._num_points = len(points)
        self._leaf_threshold = max(self.block_size,
                                   int(round(self.block_size ** leaf_exponent)))
        self._max_fanout = max_fanout if max_fanout is not None else self.block_size
        self._partitioner = partitioner if partitioner is not None else median_cut_partition
        self._copies = copies
        self._seed = seed
        self._nodes: List[_HybridNode] = []
        self._last_leaves_queried = 0
        self._begin_space_accounting()
        if self._num_points:
            self._root = self._build(np.arange(self._num_points))
        else:
            self._root = None
        self._end_space_accounting()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, indices: np.ndarray) -> int:
        size = len(indices)
        if size <= self._leaf_threshold:
            subset = self._points[indices]
            leaf_index = HalfspaceIndex3D(subset, store=self._store,
                                          copies=self._copies, seed=self._seed)
            records = [tuple(point) for point in subset]
            node = _HybridNode(is_leaf=True, size=size, leaf_index=leaf_index,
                               points_array=DiskArray(self._store, records))
            self._nodes.append(node)
            return len(self._nodes) - 1
        blocks = -(-size // self.block_size)
        fanout = max(2, min(self._max_fanout, 2 * blocks))
        cells = self._partitioner(self._points, fanout, indices)
        children: List[int] = []
        table_records = []
        for cell in cells:
            child_id = self._build(np.asarray(cell.indices))
            children.append(child_id)
            table_records.append((child_id, tuple(cell.cell.lower),
                                  tuple(cell.cell.upper)))
        node = _HybridNode(is_leaf=False, size=size,
                           child_table=DiskArray(self._store, table_records),
                           children=children)
        self._nodes.append(node)
        return len(self._nodes) - 1

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return 3

    @property
    def size(self) -> int:
        return self._num_points

    @property
    def leaf_threshold(self) -> int:
        """Maximum leaf subset size B^a."""
        return self._leaf_threshold

    @property
    def last_leaves_queried(self) -> int:
        """Number of leaf structures probed by the most recent query."""
        return self._last_leaves_queried

    def estimated_query_ios(self, constraint: LinearConstraint,
                            expected_output: Optional[int] = None) -> float:
        """Theorem 6.1 bound: O((n / B^{a-1})^{2/3} + t) expected I/Os."""
        del constraint
        blocks = max(1, self._store.blocks_for(max(1, self.size)))
        effective = max(1.0, blocks * self.block_size / float(self._leaf_threshold))
        search = effective ** (2.0 / 3.0) + self._log_b_n()
        return 1.0 + search + self._output_blocks(expected_output)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, constraint: LinearConstraint) -> List[Point]:
        """Report every stored point satisfying the 3-D linear constraint."""
        if constraint.dimension != 3:
            raise ValueError("expected a 3-D constraint, got dimension %d"
                             % constraint.dimension)
        if self._root is None:
            return []
        results: List[Point] = []
        self._last_leaves_queried = 0
        self._query_node(self._root, constraint.hyperplane, constraint, results)
        return results

    def _query_node(self, node_id: int, hyperplane: Hyperplane,
                    constraint: LinearConstraint, results: List[Point]) -> None:
        node = self._nodes[node_id]
        if node.is_leaf:
            self._last_leaves_queried += 1
            results.extend(node.leaf_index.query(constraint))
            return
        for record in node.child_table.scan():
            child_id, lower, upper = record
            relation = Box(lower, upper).classify_halfspace(hyperplane)
            if relation is CellRelation.ABOVE:
                continue
            if relation is CellRelation.BELOW:
                self._report_subtree(child_id, results)
            else:
                self._query_node(child_id, hyperplane, constraint, results)

    def _report_subtree(self, node_id: int, results: List[Point]) -> None:
        node = self._nodes[node_id]
        if node.is_leaf:
            for record in node.points_array.scan():
                results.append(record)
            return
        for record in node.child_table.scan():
            self._report_subtree(record[0], results)
