"""Experiment harness: run query workloads, collect I/O statistics, print tables.

The benchmarks under ``benchmarks/`` use these helpers to regenerate the
evidence for every row of the paper's Table 1 and for the claims of
Section 1.2; EXPERIMENTS.md records the measured outcomes next to the
paper's asymptotic statements.
"""

from repro.experiments.harness import (
    ExperimentResult,
    QueryCostSummary,
    format_table,
    log_fit_exponent,
    run_query_workload,
)

__all__ = [
    "ExperimentResult",
    "QueryCostSummary",
    "run_query_workload",
    "format_table",
    "log_fit_exponent",
]
