"""Helpers for measuring query I/O costs and summarising them as tables."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.geometry.primitives import LinearConstraint


@dataclass
class QueryCostSummary:
    """I/O statistics of one query batch against one index."""

    label: str
    num_queries: int
    total_ios: int
    max_ios: int
    total_reported: int
    block_size: int
    space_blocks: int
    extra: dict = field(default_factory=dict)

    @property
    def mean_ios(self) -> float:
        """Average I/Os per query."""
        return self.total_ios / self.num_queries if self.num_queries else 0.0

    @property
    def mean_output_blocks(self) -> float:
        """Average output size in blocks (the paper's t)."""
        if not self.num_queries:
            return 0.0
        return (self.total_reported / self.num_queries) / self.block_size

    @property
    def overhead_per_output_block(self) -> float:
        """Mean I/Os divided by (1 + t): how far from the output lower bound."""
        return self.mean_ios / (1.0 + self.mean_output_blocks)

    def row(self) -> List[str]:
        """Format the summary as a table row."""
        return [
            self.label,
            str(self.num_queries),
            "%.1f" % self.mean_ios,
            str(self.max_ios),
            "%.1f" % self.mean_output_blocks,
            "%.2f" % self.overhead_per_output_block,
            str(self.space_blocks),
        ]


@dataclass
class ExperimentResult:
    """A collection of summaries forming one experiment (one table/figure)."""

    experiment_id: str
    description: str
    summaries: List[QueryCostSummary] = field(default_factory=list)

    def add(self, summary: QueryCostSummary) -> None:
        self.summaries.append(summary)

    def to_table(self) -> str:
        header = ["config", "#q", "mean I/Os", "max I/Os", "mean t", "I/Os/(1+t)",
                  "space (blocks)"]
        rows = [summary.row() for summary in self.summaries]
        return format_table(header, rows,
                            title="%s — %s" % (self.experiment_id, self.description))


def run_query_workload(index, queries: Sequence[LinearConstraint], label: str,
                       clear_cache: bool = True,
                       extra: Optional[dict] = None) -> QueryCostSummary:
    """Run every query through ``index.query_with_stats`` and aggregate."""
    total_ios = 0
    max_ios = 0
    total_reported = 0
    for constraint in queries:
        result = index.query_with_stats(constraint, clear_cache=clear_cache)
        total_ios += result.total_ios
        max_ios = max(max_ios, result.total_ios)
        total_reported += result.count
    return QueryCostSummary(
        label=label,
        num_queries=len(queries),
        total_ios=total_ios,
        max_ios=max_ios,
        total_reported=total_reported,
        block_size=index.block_size,
        space_blocks=index.space_blocks,
        extra=dict(extra or {}),
    )


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]],
                 title: Optional[str] = None) -> str:
    """Render a plain-text table (what the benchmark harness prints)."""
    columns = len(header)
    widths = [len(str(header[i])) for i in range(columns)]
    for row in rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(str(row[i])))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(header[i]).ljust(widths[i]) for i in range(columns)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in rows:
        lines.append("  ".join(str(row[i]).ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def log_fit_exponent(sizes: Sequence[float], costs: Sequence[float]) -> float:
    """Least-squares slope of log(cost) against log(size).

    Used to check the polynomial growth rates of Table 1 (for example the
    measured exponent of the linear-size structure should be close to
    1 - 1/d, and the measured exponent of the optimal structures should be
    close to 0 once the output term is subtracted).
    """
    if len(sizes) != len(costs) or len(sizes) < 2:
        raise ValueError("need at least two (size, cost) pairs")
    xs = [math.log(value) for value in sizes]
    ys = [math.log(max(value, 1e-9)) for value in costs]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        return 0.0
    return numerator / denominator
