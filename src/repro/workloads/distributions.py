"""Synthetic point distributions used by the tests and benchmarks."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_points(n: int, dimension: int = 2, low: float = -1.0,
                   high: float = 1.0, seed: Optional[int] = None) -> np.ndarray:
    """``n`` points uniform in the cube ``[low, high]^d``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return _rng(seed).uniform(low, high, size=(n, dimension))


def uniform_points_ball(n: int, dimension: int = 3, radius: float = 1.0,
                        seed: Optional[int] = None) -> np.ndarray:
    """``n`` points uniform in the d-dimensional ball of the given radius."""
    generator = _rng(seed)
    directions = generator.normal(size=(n, dimension))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    radii = radius * generator.uniform(size=(n, 1)) ** (1.0 / dimension)
    return directions / norms * radii


def gaussian_points(n: int, dimension: int = 2, scale: float = 1.0,
                    seed: Optional[int] = None) -> np.ndarray:
    """``n`` points from an isotropic Gaussian."""
    return _rng(seed).normal(scale=scale, size=(n, dimension))


def clustered_points(n: int, dimension: int = 2, clusters: int = 10,
                     spread: float = 0.05, low: float = -1.0,
                     high: float = 1.0, seed: Optional[int] = None) -> np.ndarray:
    """``n`` points in ``clusters`` tight Gaussian blobs (a skewed workload)."""
    generator = _rng(seed)
    centers = generator.uniform(low, high, size=(clusters, dimension))
    assignments = generator.integers(0, clusters, size=n)
    offsets = generator.normal(scale=spread, size=(n, dimension))
    return centers[assignments] + offsets


def diagonal_points(n: int, noise: float = 1e-4, low: float = -1.0,
                    high: float = 1.0, seed: Optional[int] = None) -> np.ndarray:
    """The adversarial input of Section 1.2: points on (a jittered) diagonal.

    A halfplane bounded by a slight rotation of the diagonal line forces
    quad-tree-like structures to visit Ω(n) nodes, while the paper's 2-D
    structure still answers in O(log_B n + t) I/Os.
    """
    generator = _rng(seed)
    xs = np.sort(generator.uniform(low, high, size=n))
    ys = xs + generator.normal(scale=noise, size=n)
    return np.column_stack([xs, ys])


def grid_points(side: int, dimension: int = 2, low: float = -1.0,
                high: float = 1.0, jitter: float = 0.0,
                seed: Optional[int] = None) -> np.ndarray:
    """A regular ``side^d`` grid, optionally jittered to break degeneracies."""
    axes = [np.linspace(low, high, side) for _ in range(dimension)]
    mesh = np.meshgrid(*axes, indexing="ij")
    points = np.column_stack([axis.ravel() for axis in mesh])
    if jitter > 0:
        points = points + _rng(seed).normal(scale=jitter, size=points.shape)
    return points


def company_table(n: int, seed: Optional[int] = None) -> List[Tuple[str, float, float]]:
    """A toy ``Companies(Name, PricePerShare, EarningsPerShare)`` relation.

    Mirrors the SQL example of Section 1.1: the quickstart example queries
    this relation for companies with a price/earnings ratio below a bound.
    """
    generator = _rng(seed)
    earnings = generator.uniform(0.5, 20.0, size=n)
    multiples = generator.lognormal(mean=2.0, sigma=0.6, size=n)
    prices = earnings * multiples
    return [("company-%04d" % index, float(prices[index]), float(earnings[index]))
            for index in range(n)]
