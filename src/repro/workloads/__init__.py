"""Workload generators: point distributions and query generators.

The paper has no experimental section of its own (its results are the
asymptotic bounds of Table 1), so the benchmark harness generates synthetic
workloads that exercise the regimes the paper reasons about:

* uniform and clustered point sets (the "average" inputs practical
  structures are tuned for);
* the *diagonal* adversarial input of Section 1.2, on which quad-trees,
  R-trees and k-d-B-trees degrade to Ω(n) I/Os while the paper's structures
  keep their guarantees;
* halfspace queries with controlled selectivity, so that the output term
  ``t = T/B`` can be separated from the search term in measured I/O counts.
"""

from repro.workloads.distributions import (
    clustered_points,
    diagonal_points,
    gaussian_points,
    uniform_points,
    uniform_points_ball,
)
from repro.workloads.queries import (
    halfspace_queries_with_selectivity,
    mixed_tenant_workload,
    random_halfspace_queries,
    rotated_diagonal_query,
    steep_leading_attribute_queries,
)

__all__ = [
    "uniform_points",
    "uniform_points_ball",
    "gaussian_points",
    "clustered_points",
    "diagonal_points",
    "random_halfspace_queries",
    "halfspace_queries_with_selectivity",
    "mixed_tenant_workload",
    "rotated_diagonal_query",
    "steep_leading_attribute_queries",
]
