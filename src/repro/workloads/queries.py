"""Query generators with controlled output size.

The paper's bounds separate the search cost (``log_B n`` or ``n^{1-1/d}``)
from the output cost ``t = T/B``; to measure both regimes the benchmarks
need halfspace queries whose selectivity (fraction of points reported) is
controlled.  The generators here pick a random direction and then choose the
offset so that the desired fraction of points satisfies the constraint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.primitives import LinearConstraint


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_halfspace_queries(num_queries: int, dimension: int = 2,
                             slope_scale: float = 1.0,
                             offset_scale: float = 1.0,
                             seed: Optional[int] = None) -> List[LinearConstraint]:
    """Linear constraints with random coefficients (no selectivity control)."""
    generator = _rng(seed)
    queries: List[LinearConstraint] = []
    for __ in range(num_queries):
        coeffs = tuple(generator.uniform(-slope_scale, slope_scale,
                                         size=dimension - 1).tolist())
        offset = float(generator.uniform(-offset_scale, offset_scale))
        queries.append(LinearConstraint(coeffs=coeffs, offset=offset))
    return queries


def halfspace_queries_with_selectivity(points: np.ndarray, num_queries: int,
                                       selectivity: float,
                                       slope_scale: float = 1.0,
                                       seed: Optional[int] = None
                                       ) -> List[LinearConstraint]:
    """Constraints calibrated so ~``selectivity * N`` points satisfy each.

    For a random coefficient vector ``a``, the constraint
    ``x_d <= a . x_{1..d-1} + a_0`` is satisfied by exactly the points whose
    residual ``x_d - a . x_{1..d-1}`` is at most ``a_0``; choosing ``a_0`` as
    the ``selectivity``-quantile of the residuals hits the target output
    size exactly (up to ties).
    """
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError("selectivity must lie in [0, 1], got %r" % selectivity)
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError("points must have shape (N, d)")
    dimension = points.shape[1]
    generator = _rng(seed)
    queries: List[LinearConstraint] = []
    for __ in range(num_queries):
        coeffs = generator.uniform(-slope_scale, slope_scale, size=dimension - 1)
        residuals = points[:, -1] - points[:, :-1] @ coeffs
        offset = float(np.quantile(residuals, selectivity))
        queries.append(LinearConstraint(coeffs=tuple(coeffs.tolist()),
                                        offset=offset))
    return queries


def rotated_diagonal_query(points: np.ndarray, angle: float = 1e-3,
                           selectivity: float = 0.5) -> LinearConstraint:
    """The adversarial query of Section 1.2 for the diagonal input.

    The constraint's boundary line is the diagonal rotated by ``angle``
    radians, with the offset chosen to report about ``selectivity * N``
    points.  On quad-tree-like structures this query visits Ω(n) nodes.
    """
    points = np.asarray(points, dtype=float)
    slope = float(np.tan(np.arctan(1.0) + angle))
    residuals = points[:, 1] - slope * points[:, 0]
    offset = float(np.quantile(residuals, selectivity))
    return LinearConstraint(coeffs=(slope,), offset=offset)


def _constraint_with_selectivity(points: np.ndarray, selectivity: float,
                                 slope_scale: float,
                                 generator: np.random.Generator
                                 ) -> LinearConstraint:
    """One constraint whose offset is the selectivity-quantile of residuals."""
    dimension = points.shape[1]
    coeffs = generator.uniform(-slope_scale, slope_scale, size=dimension - 1)
    residuals = points[:, -1] - points[:, :-1] @ coeffs
    offset = float(np.quantile(residuals, selectivity))
    return LinearConstraint(coeffs=tuple(coeffs.tolist()), offset=offset)


def mixed_tenant_workload(tenants: Dict[str, np.ndarray], num_requests: int,
                          hot_fraction: float = 0.3, hot_pool: int = 4,
                          selectivity_range: Tuple[float, float] = (0.005, 0.25),
                          slope_scale: float = 1.0,
                          seed: Optional[int] = None
                          ) -> List[Tuple[str, LinearConstraint]]:
    """A serving trace for the engine: interleaved (tenant, constraint) pairs.

    Models the traffic a multi-tenant deployment sees:

    * each request picks a tenant (dataset) uniformly at random;
    * a ``hot_fraction`` of requests re-issue one of the tenant's
      ``hot_pool`` *hot* constraints — repeats a result cache can absorb;
    * the rest are fresh constraints whose selectivity is drawn
      log-uniformly from ``selectivity_range``, mixing reporting-heavy
      queries (large ``t``) with needle queries (search-term bound).

    Tenants may have different dimensions; every constraint matches its
    tenant's points.
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must lie in [0, 1], got %r"
                         % hot_fraction)
    low, high = selectivity_range
    if not 0.0 < low <= high <= 1.0:
        raise ValueError("selectivity_range must satisfy 0 < low <= high <= 1")
    generator = _rng(seed)
    names = sorted(tenants)
    points_by_name = {name: np.asarray(tenants[name], dtype=float)
                      for name in names}

    def fresh(points: np.ndarray) -> LinearConstraint:
        selectivity = float(np.exp(generator.uniform(np.log(low),
                                                     np.log(high))))
        return _constraint_with_selectivity(points, selectivity, slope_scale,
                                            generator)

    hot: Dict[str, List[LinearConstraint]] = {
        name: [fresh(points_by_name[name]) for __ in range(max(1, hot_pool))]
        for name in names}
    requests: List[Tuple[str, LinearConstraint]] = []
    for __ in range(num_requests):
        name = names[int(generator.integers(len(names)))]
        if generator.random() < hot_fraction:
            pool = hot[name]
            constraint = pool[int(generator.integers(len(pool)))]
        else:
            constraint = fresh(points_by_name[name])
        requests.append((name, constraint))
    return requests


def steep_leading_attribute_queries(points: np.ndarray, num_queries: int,
                                    selectivity: float,
                                    steepness: float = 32.0,
                                    seed: Optional[int] = None
                                    ) -> List[LinearConstraint]:
    """Constraints whose satisfying region is narrow in the *leading* attribute.

    Each constraint is ``x_d <= -S * x_1 + a_0`` with a large steepness
    ``S``: the residual ``x_d + S x_1`` is dominated by the first
    coordinate, so the satisfied points form a thin slab of small ``x_1``
    values.  On a range-sharded dataset (split on attribute 0) such
    queries touch only the low shards — the workload that exercises the
    planner's shard pruning.  Offsets are chosen per query as the
    ``selectivity``-quantile of the residuals, with the steepness jittered
    per query so the constraints are distinct.
    """
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError("selectivity must lie in [0, 1], got %r" % selectivity)
    if steepness <= 0:
        raise ValueError("steepness must be positive, got %r" % steepness)
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] < 2:
        raise ValueError("points must have shape (N, d >= 2)")
    dimension = points.shape[1]
    generator = _rng(seed)
    queries: List[LinearConstraint] = []
    for __ in range(num_queries):
        coeffs = np.zeros(dimension - 1)
        coeffs[0] = -float(steepness * generator.uniform(0.75, 1.25))
        residuals = points[:, -1] - points[:, :-1] @ coeffs
        offset = float(np.quantile(residuals, selectivity))
        queries.append(LinearConstraint(coeffs=tuple(coeffs.tolist()),
                                        offset=offset))
    return queries


def knn_query_points(num_queries: int, low: float = -1.0, high: float = 1.0,
                     seed: Optional[int] = None) -> np.ndarray:
    """Uniform planar query points for the k-nearest-neighbour benchmarks."""
    return _rng(seed).uniform(low, high, size=(num_queries, 2))
