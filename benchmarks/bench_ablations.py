"""Ablation experiments ABL-PART and ABL-CLUSTER (design choices in DESIGN.md).

* ABL-PART — the partition tree of Section 5 is built once with the default
  median-cut partitioner and once with the 2-D ham-sandwich partitioner
  (Willard-style); both satisfy the Theorem 5.1 interface, so correctness is
  identical and only the I/O profile differs.
* ABL-CLUSTER — the greedy clustering of Section 3 uses a cluster capacity
  of 3k in the paper; the ablation varies the factor (2k, 3k, 6k) and
  reports the resulting space and query cost of the full 2-D structure.
"""

from __future__ import annotations

import pytest

from repro import HalfplaneIndex2D, PartitionTreeIndex
from repro.experiments import ExperimentResult, run_query_workload
from repro.geometry.hamsandwich import ham_sandwich_partition
from repro.workloads import halfspace_queries_with_selectivity, uniform_points

from .conftest import print_experiment

BLOCK_SIZE = 32
NUM_POINTS = 4096
NUM_QUERIES = 6
SELECTIVITY = 0.02

_cache = {}


def dataset():
    if "points" not in _cache:
        _cache["points"] = uniform_points(NUM_POINTS, seed=1)
        _cache["queries"] = halfspace_queries_with_selectivity(
            _cache["points"], NUM_QUERIES, SELECTIVITY, seed=2)
    return _cache["points"], _cache["queries"]


PARTITIONERS = {
    "median-cut (default)": None,
    "ham-sandwich (Willard)": ham_sandwich_partition,
}


@pytest.mark.parametrize("name", list(PARTITIONERS))
def test_ablation_partitioner(benchmark, name):
    """ABL-PART: partition tree query cost under the two partitioners."""
    points, queries = dataset()
    key = ("part", name)
    if key not in _cache:
        _cache[key] = PartitionTreeIndex(points, block_size=BLOCK_SIZE,
                                         partitioner=PARTITIONERS[name])
    index = _cache[key]
    summary = run_query_workload(index, queries, label=name)
    benchmark(lambda: [index.query(q) for q in queries])
    benchmark.extra_info["mean_ios"] = summary.mean_ios
    benchmark.extra_info["space_blocks"] = index.space_blocks


def test_ablation_partitioner_table(benchmark):
    # Register with pytest-benchmark so this evidence test also runs
    # under --benchmark-only (it measures I/Os, not wall-clock time).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    points, queries = dataset()
    result = ExperimentResult("ABL-PART",
                              "partition tree: median-cut vs ham-sandwich cells")
    expected = None
    for name, partitioner in PARTITIONERS.items():
        key = ("part", name)
        if key not in _cache:
            _cache[key] = PartitionTreeIndex(points, block_size=BLOCK_SIZE,
                                             partitioner=partitioner)
        index = _cache[key]
        answers = [frozenset(map(tuple, index.query(q))) for q in queries]
        if expected is None:
            expected = answers
        else:
            assert answers == expected   # ablation changes cost, never answers
        result.add(run_query_workload(index, queries, label=name))
    print_experiment(result)


CLUSTER_FACTORS = [2, 3, 6]


@pytest.mark.parametrize("factor", CLUSTER_FACTORS)
def test_ablation_cluster_width(benchmark, factor):
    """ABL-CLUSTER: 2-D structure with cluster capacities 2k / 3k / 6k."""
    points, queries = dataset()
    key = ("width", factor)
    if key not in _cache:
        _cache[key] = HalfplaneIndex2D(points, block_size=BLOCK_SIZE,
                                       cluster_width_factor=factor, seed=3)
    index = _cache[key]
    summary = run_query_workload(index, queries, label="width=%dk" % factor)
    benchmark(lambda: [index.query(q) for q in queries])
    benchmark.extra_info["mean_ios"] = summary.mean_ios
    benchmark.extra_info["space_blocks"] = index.space_blocks


def test_ablation_cluster_width_table(benchmark):
    # Register with pytest-benchmark so this evidence test also runs
    # under --benchmark-only (it measures I/Os, not wall-clock time).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    points, queries = dataset()
    result = ExperimentResult("ABL-CLUSTER",
                              "2-D structure: cluster capacity factor (paper uses 3)")
    expected = {tuple(sorted(map(tuple, [p for p in points if q.below(p)])))
                for q in queries}
    for factor in CLUSTER_FACTORS:
        key = ("width", factor)
        if key not in _cache:
            _cache[key] = HalfplaneIndex2D(points, block_size=BLOCK_SIZE,
                                           cluster_width_factor=factor, seed=3)
        index = _cache[key]
        answers = {tuple(sorted(map(tuple, index.query(q)))) for q in queries}
        assert answers == expected
        result.add(run_query_workload(index, queries, label="width=%dk" % factor))
    print_experiment(result)
