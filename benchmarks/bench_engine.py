"""Experiment ENGINE — planner-routed serving vs fixed-index serving.

The engine's claim: given several structures with different trade-offs,
cost-based routing plus batch execution should serve a mixed workload with
no more I/Os than the *worst* single-index deployment (it should in fact
track the best), and its warm-cache batch path should beat issuing the
same queries as independent cold ``query_with_stats`` calls.

Scenario: two tenants (a 2-D table and a 3-D table) behind one engine,
serving a mixed trace with hot repeats.  Strategies compared:

* ``planner_routed`` — the engine's batch path (dedup + result cache +
  warm buffer pool + per-query routing);
* ``independent_cold`` — the same planner routing, but every query issued
  alone with a cleared cache (what callers did before the engine);
* ``fixed:<kind>`` — every query forced through one index family
  (``optimal`` = halfplane2d / halfspace3d per dimension), cold.

Three serving/storage-layer experiments ride along:

* **backends** — the identical workload served by a memory-backed and a
  file-backed engine must charge *identical* I/O counts (the backend
  changes the medium, never the model's accounting); the file backend's
  real byte traffic is recorded alongside.
* **sharding** — a K=4 range-sharded tenant serving steep
  leading-attribute constraints must prune shards (fewer total I/Os than
  fanning out to every shard) while staying exact, and the same queries
  are compared against an unsharded deployment.
* **async serving** — two tenants share one replicated (K=2 x 2) sharded
  dataset: a *slow* tenant issuing reporting-heavy queries and a *fast*
  tenant issuing selective ones.  The threaded batch path serializes the
  dataset's requests in arrival order, so the fast tenant's p95
  turnaround absorbs the slow tenant's work; the async path
  (budget-capped slow tenant, per-request scheduling) must bring the fast
  tenant's p95 below the threaded figure while still serving everyone,
  and the replica picker must spread same-shard load over both replicas
  (visible in the EngineStats per-replica attribution).
* **selectivity models** — on the §1.2 diagonal with near-diagonal
  queries across a log-spaced selectivity range, the directional
  histogram model must show strictly lower mean *and* median
  expected-output q-error than the uniform-sample baseline; the
  e-weighted ensemble, after one online-feedback pass over a disjoint
  warmup workload, must price the scoring queries within the recorded
  histogram baseline (mean q-error <= 1.33 at the full configuration)
  while strictly beating the uniform sample.  (Which member ends up
  heavier is configuration-dependent — e-weights track cumulative
  log-loss, where the histogram's steady small errors and the uniform
  sample's rare large ones trade differently at different scales —
  but the blend must not lose to either story.)
* **conformal coverage** — degraded answers served under a
  drained token bucket carry distribution-free conformal count
  intervals once the dataset's calibration window is warm; over a
  mixed-selectivity evaluation workload the intervals' empirical
  coverage must sit within 5 points of the nominal level at the full
  configuration (>= 200 degraded answers), every interval must be
  conformal-sourced (no normal fallback after warm-up), and the
  prequential coverage counters the calibrator itself tracks are
  recorded alongside.
* **rebalance** — skewed dynamic inserts into a pruned range shard mark
  its bounding box stale (pruning degrades, I/Os rise); a quantile
  re-split must restore pruning and cut the fan-out cost, with answers
  staying exact over the live point set in every phase.
* **vectorized hot path** — the same workloads served with the numpy
  batch kernels on and off: a pure full-scan phase (one index, every
  query read from disk cold in both modes) and a K=4 sharded fan-out
  phase (two identically-built engines, one per mode).  Answers must be
  identical record-for-record, every I/O counter must be *bit-identical*
  (vectorization sits strictly below the accounting seam), and the
  full-scan wall clock must show a >= 10x speedup at the full
  configuration; the measured speedup is recorded per phase.
* **write fanout** — routed `QueryEngine.insert` writes applied to every
  replica of the target shard must leave read load *spread* across the
  replicas afterwards (busiest replica well below 100% of its shard's
  I/O), versus an emulation of the retired replica-pinning behaviour
  where every post-mutation read concentrates on one copy; answers stay
  exact over the live set and the per-dataset write counters/latency
  percentiles are recorded.
* **tracing overhead** — the K=4 full-scan fan-out workload served
  three ways through one engine: bare (no trace opened — the
  pre-tracing request path), with a no-op trace opened per request
  against a disabled tracer (exactly as the serving layer does), and
  fully traced.  Answers and every I/O counter must be identical in
  all modes, the disabled path must hand back the no-op singletons,
  and two gates apply at the full configuration: disabled/baseline
  wall clock <= 1.05, and the enabled span tree within 1.05x of the
  disabled path *or* within a fixed 150us/request budget (tree
  construction is a fixed cost, so a pure ratio would punish the
  sub-millisecond cold-scan denominator); an ``EXPLAIN ANALYZE`` run
  checks that the per-shard span I/Os sum *exactly* to the
  ``EngineStats`` delta the request produced.

Run standalone to (re)record the repo-root ``BENCH_engine.json``::

    python benchmarks/bench_engine.py            # full configuration
    python benchmarks/bench_engine.py --smoke    # tiny CI configuration

(``--smoke`` runs every phase at reduced size and skips the JSON write —
the CI ``bench-smoke`` job uses it to catch perf-path regressions fast.)
Under pytest the acceptance criteria are asserted as tests.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

try:
    import repro  # noqa: F401  (installed or on PYTHONPATH)
except ImportError:  # standalone invocation from a source checkout
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np

from repro import QueryEngine
from repro.baselines import FullScanIndex
from repro.core import scalar_kernels
from repro.engine import ServingRequest, TenantBudget, make_model
from repro.engine.metrics import percentile, q_error
from repro.experiments import format_table
from repro.workloads import (
    diagonal_points,
    halfspace_queries_with_selectivity,
    mixed_tenant_workload,
    rotated_diagonal_query,
    steep_leading_attribute_queries,
    uniform_points,
)

BLOCK_SIZE = 32
NUM_CALIBRATION_PROBES = 3
NUM_REQUESTS = 80
HOT_FRACTION = 0.35
SEED = 1998
TENANT_SIZES = {"flat2d": 4096, "solid3d": 2048}

#: Shard count of the sharded experiment (the ISSUE's K=4 run).
NUM_SHARDS = 4
NUM_SHARD_QUERIES = 10
SHARD_SELECTIVITY = 0.02
SHARD_POINTS = 4096

#: Async-serving experiment: two tenants on one replicated shard set.
ASYNC_POINTS = 4096
ASYNC_NUM_SHARDS = 2
ASYNC_REPLICAS = 2
ASYNC_FAST_QUERIES = 12
ASYNC_SLOW_QUERIES = 12
ASYNC_FAST_SELECTIVITY = 0.01
ASYNC_SLOW_SELECTIVITY = 0.9

#: Selectivity-model experiment: §1.2 diagonal, log-spaced selectivities.
STATS_POINTS = 4096
STATS_NUM_QUERIES = 24
STATS_SELECTIVITY_RANGE = (0.002, 0.3)
STATS_NOISE = 5e-3
STATS_SAMPLE_SIZE = 256
#: Independent sample draws for the uniform baseline: whether a fixed
#: sample happens to contain extreme-tail points decides *every*
#: deep-tail estimate at once, so a single draw is all-or-nothing noise.
STATS_REPLICATES = 3
#: Ensemble acceptance gate (full configuration only): after its online
#: warmup the e-weighted blend must price the scoring queries at least
#: as well as the recorded histogram baseline (mean q-error 1.33).
STATS_ENSEMBLE_MAX_MEAN_QERROR = 1.33

#: Conformal-coverage experiment: calibrate the engine's conformal
#: window with served queries, then measure the empirical coverage of
#: degraded-answer intervals under a drained token bucket.  The
#: calibration and evaluation workloads share one mixed selectivity
#: grid (shuffled), so the exchangeability the conformal guarantee
#: needs actually holds.
CONF_POINTS = 4096
CONF_COVERAGE = 0.9
CONF_WINDOW = 256
CONF_MIN_CALIBRATION = 32
CONF_CAL_QUERIES = 192
CONF_EVAL_QUERIES = 300
#: The workload mixes log-spaced selectivity levels.  The grid must be
#: *fine*: the workload generator targets an exact hit count per level
#: and estimates land on multiples of ``num_points/sample_size``, so a
#: coarse grid gives the conformity scores heavy atoms — quantile ties
#: then push empirical coverage well above nominal (the conformal
#: guarantee is one-sided).  Twelve levels smooth the score CDF enough
#: for the two-sided +-5-point gate.
CONF_SELECTIVITY_RANGE = (0.02, 0.4)
CONF_SELECTIVITY_LEVELS = 12
#: |empirical - nominal| bound, the ISSUE's +-5-point gate; the
#: evaluation must also produce at least this many degraded answers
#: for the gate to be statistically meaningful (full config only).
CONF_TOLERANCE = 0.05
CONF_MIN_DEGRADED = 200

#: Rebalance experiment: K=4 range shards, skewed dynamic inserts.
REBALANCE_POINTS = 2048
REBALANCE_INSERTS = 800
REBALANCE_QUERIES = 8
REBALANCE_SELECTIVITY = 0.02

#: Write-fanout experiment: routed inserts on K=2 x 2 replicated shards.
WRITE_POINTS = 4096
WRITE_NUM_SHARDS = 2
WRITE_REPLICAS = 2
WRITE_INSERTS = 240
WRITE_QUERIES = 12
WRITE_SELECTIVITY = 0.1

#: Vectorized-hot-path experiment: numpy batch kernels vs the scalar
#: record loops, same answers, same I/O counters, faster wall clock.
VEC_POINTS = 16384
VEC_BLOCK_SIZE = 128
VEC_NUM_QUERIES = 8
VEC_SELECTIVITY = 0.02
VEC_FANOUT_QUERIES = 10
VEC_MIN_SPEEDUP = 10.0

#: Process-workers experiment: the K=4 CPU-bound fan-out served by the
#: GIL-bound thread pool vs one worker process per shard replica.  The
#: scalar kernels make the scan compute-bound on purpose: that is the
#: regime the process layer exists for.
PROC_POINTS = 16384
PROC_NUM_QUERIES = 6
PROC_SELECTIVITY = 0.5
PROC_MIN_SPEEDUP = 1.5

#: Tracing-overhead experiment: the K=4 full-scan fan-out workload with
#: a trace opened per request, tracing disabled vs enabled, best-of-N.
TRACE_QUERIES = 24
TRACE_REPEATS = 7
TRACE_MAX_OVERHEAD = 1.05
#: Building the span tree is a *fixed* per-request cost (span and
#: attribute construction does not scale with blocks read), so on a
#: sub-millisecond cold scan a pure ratio gate would flake on noise a
#: served request never sees — the enabled gate therefore passes on
#: either the ratio or this absolute per-request budget.  At 150us the
#: tree is <5% of any request above 3ms wall — every served-path
#: request in the HTTP phase is — and regressions that put Python span
#: assembly back inside the fan-out workers (+200us class) still trip.
TRACE_ENABLED_MAX_COST_US = 150.0
#: The smoke configuration (CI bench-smoke) still asserts the
#: tracing-disabled gate, but loosened: 4 queries x 2 repeats on a
#: shared runner cannot resolve 5%, yet a disabled path that started
#: allocating real spans (2x class) must fail fast.  The enabled gate
#: is full-configuration-only — smoke repeats are too few for the
#: fixed-cost subtraction to be meaningful.
SMOKE_TRACE_MAX_OVERHEAD = 2.0

#: HTTP-serving experiment: the embedded async path vs the same engine
#: behind the network front-end, plus SSE time-to-first-estimate.
HTTP_POINTS = 4096
HTTP_QUERIES_PER_CLIENT = 16
HTTP_MUTATIONS = 16
HTTP_STREAMS = 12
HTTP_FAST_SELECTIVITY = 0.02
HTTP_HEAVY_SELECTIVITY = 0.5

#: --smoke: tiny sizes so CI smoke-tests every phase in seconds.
SMOKE_TENANT_SIZES = {"flat2d": 512, "solid3d": 384}
SMOKE_NUM_REQUESTS = 16
SMOKE_SHARD_POINTS = 512
SMOKE_NUM_SHARD_QUERIES = 4
SMOKE_ASYNC_POINTS = 1024
SMOKE_ASYNC_FAST_QUERIES = 6
SMOKE_ASYNC_SLOW_QUERIES = 8
SMOKE_STATS_POINTS = 1024
SMOKE_STATS_NUM_QUERIES = 12
SMOKE_CONF_POINTS = 1024
#: Smoke still warms the conformal window past the (unchanged)
#: ``CONF_MIN_CALIBRATION`` floor so every degraded answer is
#: conformal-sourced; only the +-5-point coverage gate is
#: full-configuration (24 evaluations cannot resolve 5 points).
SMOKE_CONF_CAL_QUERIES = 36
SMOKE_CONF_EVAL_QUERIES = 24
SMOKE_REBALANCE_POINTS = 512
SMOKE_REBALANCE_INSERTS = 200
SMOKE_REBALANCE_QUERIES = 4
SMOKE_WRITE_POINTS = 1024
SMOKE_WRITE_INSERTS = 60
SMOKE_WRITE_QUERIES = 6
SMOKE_VEC_POINTS = 1024
SMOKE_VEC_NUM_QUERIES = 3
SMOKE_VEC_FANOUT_QUERIES = 4
SMOKE_PROC_POINTS = 1024
SMOKE_PROC_NUM_QUERIES = 3
SMOKE_TRACE_QUERIES = 4
SMOKE_TRACE_REPEATS = 2
SMOKE_HTTP_POINTS = 1024
SMOKE_HTTP_QUERIES_PER_CLIENT = 3
SMOKE_HTTP_MUTATIONS = 4
SMOKE_HTTP_STREAMS = 3

#: Index kinds built per tenant; "optimal" resolves per dimension.
SUITES = {
    "flat2d": ["halfplane2d", "partition_tree", "full_scan"],
    "solid3d": ["halfspace3d", "partition_tree", "full_scan"],
}
OPTIMAL = {"flat2d": "halfplane2d", "solid3d": "halfspace3d"}
FIXED_STRATEGIES = ["optimal", "partition_tree", "full_scan"]

BENCH_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                          "BENCH_engine.json")


def build_scenario(smoke=False, backend="memory", data_dir=None):
    """The two tenants, their engine, and the request trace."""
    sizes = SMOKE_TENANT_SIZES if smoke else TENANT_SIZES
    num_requests = SMOKE_NUM_REQUESTS if smoke else NUM_REQUESTS
    tenants = {
        "flat2d": uniform_points(sizes["flat2d"], seed=SEED),
        "solid3d": uniform_points(sizes["solid3d"], dimension=3,
                                  seed=SEED + 1),
    }
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=SEED, backend=backend,
                         data_dir=data_dir)
    builds = []
    for name, points in tenants.items():
        builds.extend(engine.register_dataset(name, points,
                                              kinds=SUITES[name]))
    requests = mixed_tenant_workload(tenants, num_requests=num_requests,
                                     hot_fraction=HOT_FRACTION, seed=SEED)
    return tenants, engine, requests, builds


def run_fixed(engine, requests, strategy):
    """Serve every request through one fixed index family, cold."""
    total_ios = 0
    started = time.perf_counter()
    for tenant, constraint in requests:
        kind = OPTIMAL[tenant] if strategy == "optimal" else strategy
        index = engine.catalog.indexes(tenant)[kind]
        total_ios += index.query_with_stats(constraint,
                                            clear_cache=True).total_ios
    return {"total_ios": total_ios,
            "wall_seconds": time.perf_counter() - started}


def run_independent_cold(engine, requests):
    """Planner routing, but one cold query_with_stats call per request."""
    total_ios = 0
    started = time.perf_counter()
    for tenant, constraint in requests:
        plan = engine.explain(tenant, constraint)
        index = engine.catalog.indexes(tenant)[plan.index_name]
        total_ios += index.query_with_stats(constraint,
                                            clear_cache=True).total_ios
    return {"total_ios": total_ios,
            "wall_seconds": time.perf_counter() - started}


def run_backend_parity(smoke=False):
    """Memory- vs file-backed engines on one workload: counts must match.

    The file-backed engine serves the exact same trace from real files
    (seek/read per block miss); the model's I/O accounting sits above the
    backend, so the totals must be *identical* — that equality is the
    accounting-parity acceptance criterion.  The file backend's physical
    byte counters are recorded for scale.
    """
    results = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as data_dir:
        for backend in ("memory", "file"):
            tenants, engine, requests, __ = build_scenario(
                smoke=smoke, backend=backend,
                data_dir=data_dir if backend == "file" else None)
            started = time.perf_counter()
            workload = engine.serve_workload(requests, warm_cache=True)
            payload = {
                "total_ios": workload.total_ios,
                "wall_seconds": time.perf_counter() - started,
            }
            if backend == "file":
                backend_infos = [
                    store.backend.info()
                    for name in engine.catalog.datasets()
                    for store in engine.catalog.stores(name)]
                payload["file_bytes_read"] = sum(
                    info["bytes_read"] for info in backend_infos)
                payload["file_bytes_written"] = sum(
                    info["bytes_written"] for info in backend_infos)
            results[backend] = payload
            engine.close()
    results["io_parity"] = (results["memory"]["total_ios"]
                            == results["file"]["total_ios"])
    return results


def run_sharding(smoke=False):
    """K=4 range-sharded serving vs all-shard fan-out vs unsharded.

    The workload is steep leading-attribute constraints — selective in the
    range router's split attribute, so pruning should skip most shards.
    Every query is issued cold (cleared caches, result cache bypassed) so
    the three strategies compare pure structure costs.
    """
    num_points = SMOKE_SHARD_POINTS if smoke else SHARD_POINTS
    num_queries = SMOKE_NUM_SHARD_QUERIES if smoke else NUM_SHARD_QUERIES
    points = uniform_points(num_points, seed=SEED + 2)
    queries = steep_leading_attribute_queries(
        points, num_queries, SHARD_SELECTIVITY, seed=SEED + 3)

    unsharded = QueryEngine(block_size=BLOCK_SIZE, seed=SEED)
    unsharded.register_dataset("points", points, kinds=SUITES["flat2d"])
    sharded = QueryEngine(block_size=BLOCK_SIZE, seed=SEED)
    sharded.register_sharded_dataset("points", points, num_shards=NUM_SHARDS,
                                     sharding="range",
                                     kinds=SUITES["flat2d"])
    dataset = sharded.catalog.sharded("points")

    def serve_cold(engine):
        total_ios = 0
        answers = []
        started = time.perf_counter()
        for constraint in queries:
            answer = engine.query("points", constraint, clear_cache=True)
            total_ios += answer.total_ios
            answers.append(answer)
        wall_seconds = time.perf_counter() - started
        # Verify outside the timed window (the brute-force filter would
        # otherwise dominate the recorded wall clock).
        for constraint, answer in zip(queries, answers):
            expected = {tuple(p) for p in points if constraint.below(p)}
            assert {tuple(p) for p in answer.points} == expected
        return {"total_ios": total_ios, "wall_seconds": wall_seconds}

    pruned = serve_cold(sharded)
    pruned["shards_pruned"] = sharded.stats.shards_pruned
    pruned["shards_queried"] = sharded.stats.shards_queried
    dataset.prune = False
    all_shards = serve_cold(sharded)
    dataset.prune = True
    unsharded_run = serve_cold(unsharded)

    return {
        "workload": {
            "num_points": num_points,
            "num_queries": num_queries,
            "selectivity": SHARD_SELECTIVITY,
            "sharding": dataset.describe(),
        },
        "sharded_pruned": pruned,
        "sharded_all_shards": all_shards,
        "unsharded": unsharded_run,
    }


def run_async_serving(smoke=False):
    """Threaded vs async serving of a mixed-tenant, shared-dataset trace.

    The trace submits the *slow* tenant's reporting-heavy queries first,
    then the *fast* tenant's selective ones — the arrival order the
    threaded batch path executes verbatim, so every fast request's
    turnaround absorbs the whole slow backlog.  The async path serves the
    identical trace with the slow tenant budget-capped (queue policy):
    its requests defer while the fast tenant's flow, so the fast p95 must
    drop below the threaded figure.  Both engines serve a K=2 sharded
    dataset with 2 replicas per shard; the async run additionally records
    the per-replica I/O attribution the least-loaded picker produces.
    """
    num_points = SMOKE_ASYNC_POINTS if smoke else ASYNC_POINTS
    num_fast = SMOKE_ASYNC_FAST_QUERIES if smoke else ASYNC_FAST_QUERIES
    num_slow = SMOKE_ASYNC_SLOW_QUERIES if smoke else ASYNC_SLOW_QUERIES
    points = uniform_points(num_points, seed=SEED + 5)
    slow_queries = halfspace_queries_with_selectivity(
        points, num_slow, ASYNC_SLOW_SELECTIVITY, seed=SEED + 6)
    fast_queries = halfspace_queries_with_selectivity(
        points, num_fast, ASYNC_FAST_SELECTIVITY, seed=SEED + 8)
    trace = [("slow", constraint) for constraint in slow_queries] \
        + [("fast", constraint) for constraint in fast_queries]

    def make_engine():
        engine = QueryEngine(block_size=BLOCK_SIZE, seed=SEED)
        engine.register_sharded_dataset(
            "shared", points, num_shards=ASYNC_NUM_SHARDS,
            replicas=ASYNC_REPLICAS, sharding="range",
            kinds=SUITES["flat2d"])
        return engine

    def tenant_p95(completions, tenant):
        ordered = sorted(turnaround for name, turnaround in completions
                         if name == tenant)
        return percentile(ordered, 0.95)

    # --- threaded batch path: one dataset => serial in arrival order ----
    threaded_engine = make_engine()
    completions = []
    with threaded_engine.executor.core.warm_stores(["shared"], 64):
        started = time.perf_counter()
        for tenant, constraint in trace:
            threaded_engine.executor.execute("shared", constraint)
            completions.append((tenant, time.perf_counter() - started))
        threaded_wall = time.perf_counter() - started
    threaded = {
        "fast_p95_ms": tenant_p95(completions, "fast") * 1e3,
        "slow_p95_ms": tenant_p95(completions, "slow") * 1e3,
        "total_ios": threaded_engine.stats.total_ios,
        "wall_seconds": threaded_wall,
    }
    threaded_engine.close()

    # --- async path: same trace, slow tenant budget-capped --------------
    async_engine = make_engine()
    requests = [ServingRequest(tenant=tenant, dataset="shared",
                               constraint=constraint)
                for tenant, constraint in trace]
    slow_estimate = async_engine.explain("shared",
                                         slow_queries[0]).estimated_ios
    budget = TenantBudget(ios_per_s=max(4.0 * slow_estimate, 100.0),
                          burst=1.1 * slow_estimate, policy="queue")
    result = async_engine.serve_async(requests, budgets={"slow": budget},
                                      max_concurrency=4)
    for (tenant, constraint), item in zip(trace, result.requests):
        expected = {tuple(p) for p in points if constraint.below(p)}
        assert {tuple(p) for p in item.answer.points} == expected
    summary = async_engine.summary()
    async_payload = {
        "fast_p95_ms": result.turnaround_percentile("fast", 0.95) * 1e3,
        "slow_p95_ms": result.turnaround_percentile("slow", 0.95) * 1e3,
        "total_ios": result.total_ios,
        "wall_seconds": result.wall_seconds,
        "outcomes": result.outcomes(),
        "deferrals": sum(item.deferrals for item in result.requests),
        "admission": summary["admission"],
        "max_queue_depth": summary["max_queue_depth"],
        "replica_load": summary["replica_load"],
    }
    async_engine.close()

    return {
        "workload": {
            "num_points": num_points,
            "num_shards": ASYNC_NUM_SHARDS,
            "replicas": ASYNC_REPLICAS,
            "fast_queries": num_fast,
            "slow_queries": num_slow,
            "fast_selectivity": ASYNC_FAST_SELECTIVITY,
            "slow_selectivity": ASYNC_SLOW_SELECTIVITY,
            "slow_budget": {"ios_per_s": budget.ios_per_s,
                            "burst": budget.burst,
                            "policy": budget.policy},
        },
        "threaded": threaded,
        "async": async_payload,
        "fast_p95_speedup": (threaded["fast_p95_ms"]
                             / max(async_payload["fast_p95_ms"], 1e-6)),
    }


def run_selectivity_models(smoke=False):
    """Uniform sample vs directional histograms on the §1.2 diagonal.

    The workload is the paper's adversarial skewed input: points on a
    jittered diagonal, queried by slight rotations of the diagonal line
    at log-spaced selectivities down into the deep tail.  A uniform
    sample cannot resolve selectivities below ``1/len(sample)`` (it sees
    zero or one hit), while the histogram model projects every stored
    point onto its principal directions — one of which *is* the
    diagonal's residual direction — so its equi-depth CDF prices the
    same queries accurately.  Recorded per model: mean / median / p90 /
    max q-error of ``expected_output`` against the true output count.

    The e-weighted ensemble runs both members side by side: one
    online-feedback pass over a *disjoint* warmup workload (same
    selectivity grid, independent rotation angles) lets the e-value
    weights settle on whichever member accumulates less log-loss here,
    and only then is it scored on the same queries as the standalone
    models — nobody gets to peek at the scoring answers.
    """
    num_points = SMOKE_STATS_POINTS if smoke else STATS_POINTS
    num_queries = SMOKE_STATS_NUM_QUERIES if smoke else STATS_NUM_QUERIES
    points = diagonal_points(num_points, noise=STATS_NOISE, seed=SEED + 10)
    rng = np.random.default_rng(SEED + 11)
    low, high = STATS_SELECTIVITY_RANGE
    selectivities = np.exp(np.linspace(np.log(low), np.log(high),
                                       num_queries))
    queries = []
    for selectivity in selectivities:
        angle = float(rng.normal(scale=2e-4))
        constraint = rotated_diagonal_query(points, angle=angle,
                                            selectivity=float(selectivity))
        queries.append((constraint,
                        sum(constraint.below(point) for point in points)))

    def sample_draw(replicate):
        draw = np.random.default_rng(SEED + 12 + replicate)
        return points[draw.choice(num_points, STATS_SAMPLE_SIZE,
                                  replace=False)].copy()

    histogram = make_model("histogram", points, sample_draw(0),
                           seed=SEED + 12)

    # The ensemble adapts online: a disjoint warmup workload (same
    # log-spaced selectivity grid, independent rotation angles) feeds
    # each member's own-estimate q-error through the e-weight update,
    # then the blend is scored on the untouched scoring queries.
    ensemble = make_model("ensemble", points, sample_draw(0),
                          seed=SEED + 12)
    warmup_rng = np.random.default_rng(SEED + 30)
    for selectivity in selectivities:
        angle = float(warmup_rng.normal(scale=2e-4))
        constraint = rotated_diagonal_query(points, angle=angle,
                                            selectivity=float(selectivity))
        actual = sum(constraint.below(point) for point in points)
        ensemble.note_estimation_feedback(
            constraint, ensemble.estimate_output(constraint), actual)

    errors = {
        "histogram": [q_error(histogram.estimate_output(constraint), actual)
                      for constraint, actual in queries],
        "ensemble": [q_error(ensemble.estimate_output(constraint), actual)
                     for constraint, actual in queries],
        "uniform": [],
    }
    # The histogram's statistics are deterministic given the data; the
    # uniform baseline is averaged over independent sample draws so one
    # lucky (or unlucky) tail draw cannot decide the comparison.
    for replicate in range(STATS_REPLICATES):
        uniform = make_model("uniform", points, sample_draw(replicate),
                             seed=SEED + 12 + replicate)
        errors["uniform"].extend(
            q_error(uniform.estimate_output(constraint), actual)
            for constraint, actual in queries)
    payload = {
        "workload": {
            "num_points": num_points,
            "num_queries": num_queries,
            "selectivity_range": list(STATS_SELECTIVITY_RANGE),
            "noise": STATS_NOISE,
            "sample_size": STATS_SAMPLE_SIZE,
            "uniform_replicates": STATS_REPLICATES,
        },
        "histogram_model": histogram.describe(),
        "ensemble_model": ensemble.describe(),
        "ensemble_gate": None if smoke else STATS_ENSEMBLE_MAX_MEAN_QERROR,
    }
    for name, values in errors.items():
        ordered = sorted(values)
        payload[name] = {
            "mean_qerror": float(np.mean(values)),
            "median_qerror": float(np.median(values)),
            "p90_qerror": percentile(ordered, 0.9),
            "max_qerror": float(max(values)),
        }
    return payload


def run_conformal_coverage(smoke=False):
    """Empirical coverage of degraded-answer conformal intervals.

    Two phases through one engine over one mixed-selectivity workload
    generator (four selectivity levels, shuffled together so
    calibration and evaluation queries are exchangeable — the only
    assumption the conformal guarantee needs):

    1. **calibration** — served (non-degraded) queries feed their
       (estimate, actual) pairs through ``EngineStats.note_estimation``
       into the engine's conformal window until it is warm;
    2. **evaluation** — the same tenant re-issues fresh queries under a
       drained token bucket with ``policy="degrade"``, so every answer
       is the zero-I/O sample estimate plus its conformal interval.

    The default ``stats_model="uniform"`` makes the calibrated
    estimator and the degraded estimator the *same* scaled sample
    count, so the calibration residuals price exactly the estimates the
    intervals wrap.  Recorded: empirical coverage of the true count
    over the degraded answers (the ISSUE's +-5-point gate at the full
    configuration), interval sources (must be all-conformal once warm),
    mean interval width, and the calibrator's own prequential coverage
    counters from the calibration phase.
    """
    num_points = SMOKE_CONF_POINTS if smoke else CONF_POINTS
    num_cal = SMOKE_CONF_CAL_QUERIES if smoke else CONF_CAL_QUERIES
    num_eval = SMOKE_CONF_EVAL_QUERIES if smoke else CONF_EVAL_QUERIES
    points = uniform_points(num_points, seed=SEED + 31)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=SEED,
                         conformal_coverage=CONF_COVERAGE,
                         conformal_window=CONF_WINDOW,
                         conformal_min_calibration=CONF_MIN_CALIBRATION)
    engine.register_dataset("conf", points)

    low, high = CONF_SELECTIVITY_RANGE
    selectivities = [float(s) for s in np.exp(
        np.linspace(np.log(low), np.log(high), CONF_SELECTIVITY_LEVELS))]

    def workload(count, seed):
        """``count`` (constraint, true count) pairs, selectivity-mixed."""
        pool = []
        per_level = -(-count // len(selectivities))
        for offset, selectivity in enumerate(selectivities):
            for constraint in halfspace_queries_with_selectivity(
                    points, per_level, selectivity, seed=seed + offset):
                pool.append((constraint,
                             sum(constraint.below(p) for p in points)))
        order = np.random.default_rng(seed + 9).permutation(len(pool))
        return [pool[index] for index in order[:count]]

    for constraint, __ in workload(num_cal, SEED + 32):
        engine.query("conf", constraint)
    calibration = engine.stats.conformal.describe()["datasets"]["conf"]

    evaluation = workload(num_eval, SEED + 33)
    actual_by_constraint = dict(evaluation)
    requests = [ServingRequest(tenant="probe", dataset="conf",
                               constraint=constraint)
                for constraint, __ in evaluation]
    # A drained bucket that effectively never refills: every request's
    # estimated cost exceeds the available tokens, so the degrade
    # policy answers all of them from the sample.
    budget = TenantBudget(ios_per_s=1e-6, burst=0.5, policy="degrade")
    result = engine.serve_async(requests, budgets={"probe": budget})

    sources = {}
    covered = 0
    widths = []
    degraded = 0
    for item in result.requests:
        if item.outcome != "degraded" or item.answer is None:
            continue
        degraded += 1
        answer = item.answer
        sources[answer.interval_source] = \
            sources.get(answer.interval_source, 0) + 1
        low, high = answer.count_interval
        actual = actual_by_constraint[item.request.constraint]
        covered += int(low <= actual <= high)
        widths.append(high - low)
    engine.close()

    return {
        "workload": {
            "num_points": num_points,
            "calibration_queries": num_cal,
            "evaluation_queries": num_eval,
            "selectivities": selectivities,
            "nominal_coverage": CONF_COVERAGE,
            "window": CONF_WINDOW,
            "min_calibration": CONF_MIN_CALIBRATION,
        },
        "calibration": calibration,
        "degraded_answers": degraded,
        "interval_sources": sources,
        "empirical_coverage": covered / degraded if degraded else None,
        "mean_interval_width": float(np.mean(widths)) if widths else None,
        "outcomes": result.outcomes(),
        "coverage_gate": None if smoke else CONF_TOLERANCE,
        "min_degraded_gate": None if smoke else CONF_MIN_DEGRADED,
    }


def run_rebalance(smoke=False):
    """Skewed dynamic inserts break shard pruning; a re-split restores it.

    A K=4 range-sharded tenant serves steep leading-attribute queries
    (which prune the three high-attribute shards) in three phases:

    1. **before** — the build-time split: pruning works;
    2. **after skewed inserts** — inserts through shard 3's dynamic index
       mark its bounding box stale, so every query now visits it (and
       pays its dynamic-buffer scan);
    3. **after rebalance** — ``QueryEngine.rebalance`` re-splits at
       fresh quantiles: boxes are fresh again, pruning is restored, and
       the estimation q-error of the rebuilt per-shard models recovers.

    Every phase re-issues the same queries cold and checks exactness
    against a brute-force filter of the live point set.
    """
    num_points = SMOKE_REBALANCE_POINTS if smoke else REBALANCE_POINTS
    num_inserts = SMOKE_REBALANCE_INSERTS if smoke else REBALANCE_INSERTS
    num_queries = SMOKE_REBALANCE_QUERIES if smoke else REBALANCE_QUERIES
    points = uniform_points(num_points, seed=SEED + 13)
    queries = steep_leading_attribute_queries(
        points, num_queries, REBALANCE_SELECTIVITY, seed=SEED + 14)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=SEED + 13,
                         stats_model="histogram")
    engine.register_sharded_dataset(
        "skewed", points, num_shards=NUM_SHARDS, sharding="range",
        kinds=["partition_tree", "full_scan", "dynamic"])

    def serve_cold(live):
        engine.stats.reset()
        total_ios = 0
        started = time.perf_counter()
        answers = []
        for constraint in queries:
            answer = engine.query("skewed", constraint, clear_cache=True)
            total_ios += answer.total_ios
            answers.append(answer)
        wall_seconds = time.perf_counter() - started
        for constraint, answer in zip(queries, answers):
            expected = {tuple(p) for p in live if constraint.below(p)}
            assert {tuple(p) for p in answer.points} == expected
        return {
            "total_ios": total_ios,
            "wall_seconds": wall_seconds,
            "shards_queried": engine.stats.shards_queried,
            "shards_pruned": engine.stats.shards_pruned,
        }

    before = serve_cold(points)
    rng = np.random.default_rng(SEED + 15)
    extra = rng.uniform(-1.0, 1.0, size=(num_inserts, 2))
    dynamic = engine.catalog.sharded("skewed").shards[NUM_SHARDS - 1] \
        .planning_dataset().indexes["dynamic"]
    for point in extra:
        dynamic.insert(point)
    live = np.concatenate([points, extra])
    skew_signals = engine.rebalancer.skew("skewed")
    skewed = serve_cold(live)
    report = engine.rebalance("skewed")
    rebalanced = serve_cold(live)
    engine.close()
    return {
        "workload": {
            "num_points": num_points,
            "num_inserts": num_inserts,
            "num_queries": num_queries,
            "num_shards": NUM_SHARDS,
            "selectivity": REBALANCE_SELECTIVITY,
        },
        "skew_signals": skew_signals,
        "report": report.summary(),
        "before": before,
        "after_skewed_inserts": skewed,
        "after_rebalance": rebalanced,
    }


class _ConcentratedPicker:
    """Emulates the retired replica pinning for the baseline comparison.

    Before the write-fanout path landed, the first mutation pinned a
    shard to the mutated replica and every later read had to be served
    by that one copy.  This picker reproduces the resulting read-load
    concentration (always replica 0) so the experiment can show what the
    fan-out restores.
    """

    @staticmethod
    def acquire(dataset_name, shard, estimated_ios):
        return 0

    @staticmethod
    def release(dataset_name, shard_id, replica_id, estimated_ios):
        pass


def run_write_fanout(smoke=False):
    """Routed replica-fanout writes vs the retired pinned-replica world.

    A K=2 range-sharded, 2-replica dataset serves a read wave, absorbs a
    stream of routed ``QueryEngine.insert`` writes (each applied to both
    replicas of its target shard), then serves the same wave again.  The
    post-write wave must keep *both* replicas of every shard busy — the
    busiest replica's share of its shard's I/O stays well below 100% —
    where the pinned emulation (all post-mutation reads on one replica)
    concentrates to exactly 100%.  Answers are checked exact against the
    live point set in every phase, and the engine's per-dataset write
    counters and latency percentiles are recorded.
    """
    num_points = SMOKE_WRITE_POINTS if smoke else WRITE_POINTS
    num_inserts = SMOKE_WRITE_INSERTS if smoke else WRITE_INSERTS
    num_queries = SMOKE_WRITE_QUERIES if smoke else WRITE_QUERIES
    points = uniform_points(num_points, seed=SEED + 16)
    queries = halfspace_queries_with_selectivity(
        points, num_queries, WRITE_SELECTIVITY, seed=SEED + 17)
    rng = np.random.default_rng(SEED + 18)
    extra = rng.uniform(-1.0, 1.0, size=(num_inserts, 2))

    def make_engine(picker=None):
        engine = QueryEngine(block_size=BLOCK_SIZE, seed=SEED + 16)
        if picker is not None:
            engine.executor.core.replica_picker = picker
        engine.register_sharded_dataset(
            "written", points, num_shards=WRITE_NUM_SHARDS,
            replicas=WRITE_REPLICAS, sharding="range",
            kinds=["partition_tree", "full_scan", "dynamic"])
        return engine

    def busiest_replica_share(engine):
        """Per shard: the busiest replica's fraction of the shard's I/O."""
        load = engine.stats.replica_load_summary()
        shares = {}
        for shard_id in range(WRITE_NUM_SHARDS):
            ios = [value for key, value in load.items()
                   if key.startswith("written/%d/" % shard_id)]
            total = sum(ios)
            if total:
                shares[str(shard_id)] = max(ios) / total
        return shares

    def serve_cold(engine, live):
        engine.stats.reset()
        total_ios = 0
        started = time.perf_counter()
        answers = []
        for constraint in queries:
            answer = engine.query("written", constraint, clear_cache=True)
            total_ios += answer.total_ios
            answers.append(answer)
        wall_seconds = time.perf_counter() - started
        for constraint, answer in zip(queries, answers):
            expected = {tuple(p) for p in live if constraint.below(p)}
            assert {tuple(p) for p in answer.points} == expected
        return {
            "total_ios": total_ios,
            "wall_seconds": wall_seconds,
            "busiest_replica_share": busiest_replica_share(engine),
            "replica_load": engine.stats.replica_load_summary(),
        }

    live = np.concatenate([points, extra])

    # --- the write-fanout engine ----------------------------------------
    engine = make_engine()
    before = serve_cold(engine, points)
    write_started = time.perf_counter()
    for point in extra:
        result = engine.insert("written", point)
        assert result.applied and result.replicas == WRITE_REPLICAS
    write_wall = time.perf_counter() - write_started
    writes = engine.summary()["writes"]["written"]
    # Every replica of every shard keeps serving after the mutations.
    for shard in engine.catalog.sharded("written").nonempty_shards():
        assert shard.replicas_for_query() == list(range(WRITE_REPLICAS))
    after = serve_cold(engine, live)
    engine.close()

    # --- the pinned emulation (the behaviour this PR retires) -----------
    pinned_engine = make_engine(picker=_ConcentratedPicker())
    for point in extra:
        pinned_engine.insert("written", point)
    pinned = serve_cold(pinned_engine, live)
    pinned_engine.close()

    return {
        "workload": {
            "num_points": num_points,
            "num_inserts": num_inserts,
            "num_queries": num_queries,
            "num_shards": WRITE_NUM_SHARDS,
            "replicas": WRITE_REPLICAS,
            "selectivity": WRITE_SELECTIVITY,
        },
        "writes": writes,
        "write_wall_seconds": write_wall,
        "before_writes": before,
        "after_writes": after,
        "pinned_emulation": pinned,
    }


def run_vectorized(smoke=False):
    """Numpy batch kernels vs the scalar record loops, same workloads.

    Two phases, both served once with vectorization on and once under
    ``scalar_kernels()`` (which restores the original per-record python
    loops, so the baseline is the real pre-vectorization code path):

    * **full scan** — one :class:`FullScanIndex` at the full
      configuration (N=16384, B=128), every query cold.  The scan's
      inner loop is the hottest kernel in the repo, so this is where the
      ISSUE's >= 10x wall-clock gate applies (full configuration only —
      smoke sizes are too small to time meaningfully).
    * **K=4 fan-out** — the sharding experiment's steep
      leading-attribute workload through two *separately built but
      identical* engines, one per mode.  Separate engines keep the
      comparison honest: serving the same engine twice would let the
      first pass's calibration feedback change the second pass's plans.

    In both phases the answers must match record-for-record (same
    points, same order for the single index; set-equal per query for the
    sharded fan-out) and every :class:`IOStats` counter must be
    *identical* — vectorization lives strictly below the I/O-accounting
    seam, so turning it on must not move a single counter.
    """
    num_points = SMOKE_VEC_POINTS if smoke else VEC_POINTS
    num_queries = SMOKE_VEC_NUM_QUERIES if smoke else VEC_NUM_QUERIES
    num_fanout = SMOKE_VEC_FANOUT_QUERIES if smoke else VEC_FANOUT_QUERIES
    points = uniform_points(num_points, seed=SEED + 30)
    scan_queries = halfspace_queries_with_selectivity(
        points, num_queries, VEC_SELECTIVITY, seed=SEED + 31)

    # --- full-scan phase: one index, every query cold in both modes ----
    index = FullScanIndex(points, block_size=VEC_BLOCK_SIZE)

    def serve_scan():
        answers, counters = [], []
        started = time.perf_counter()
        for constraint in scan_queries:
            result = index.query_with_stats(constraint, clear_cache=True)
            answers.append([tuple(point) for point in result.points])
            counters.append((result.ios.reads, result.ios.writes,
                             result.ios.cache_hits))
        return answers, counters, time.perf_counter() - started

    vec_answers, vec_counters, vec_wall = serve_scan()
    with scalar_kernels():
        scalar_answers, scalar_counters, scalar_wall = serve_scan()
    assert vec_answers == scalar_answers, (
        "vectorized full-scan answers must match the scalar loops "
        "record-for-record")
    assert vec_counters == scalar_counters, (
        "vectorization must not move a single full-scan I/O counter: "
        "%r vs %r" % (vec_counters, scalar_counters))
    for constraint, answer in zip(scan_queries, vec_answers):
        expected = [tuple(p) for p in points if constraint.below(p)]
        assert answer == expected
    full_scan = {
        "vectorized": {"wall_seconds": vec_wall,
                       "total_ios": sum(c[0] + c[1] for c in vec_counters)},
        "scalar": {"wall_seconds": scalar_wall,
                   "total_ios": sum(c[0] + c[1]
                                    for c in scalar_counters)},
        "io_identical": vec_counters == scalar_counters,
        "answers_identical": vec_answers == scalar_answers,
        "speedup": scalar_wall / max(vec_wall, 1e-9),
    }

    # --- K=4 fan-out phase: two identical engines, one per mode --------
    fanout_queries = steep_leading_attribute_queries(
        points, num_fanout, SHARD_SELECTIVITY, seed=SEED + 32)

    def make_engine():
        # full_scan only: the phase measures the *scan kernel* under
        # shard fan-out and pruning, not the planner's index choice (a
        # partition-tree route would touch too few records to time).
        engine = QueryEngine(block_size=BLOCK_SIZE, seed=SEED + 30)
        engine.register_sharded_dataset(
            "vec", points, num_shards=NUM_SHARDS, sharding="range",
            kinds=["full_scan"])
        return engine

    def serve_fanout(engine):
        answers, ios = [], []
        started = time.perf_counter()
        for constraint in fanout_queries:
            answer = engine.query("vec", constraint, clear_cache=True)
            answers.append({tuple(point) for point in answer.points})
            ios.append(answer.total_ios)
        return answers, ios, time.perf_counter() - started

    vec_engine = make_engine()
    fan_vec_answers, fan_vec_ios, fan_vec_wall = serve_fanout(vec_engine)
    vec_engine.close()
    scalar_engine = make_engine()
    with scalar_kernels():
        fan_scalar_answers, fan_scalar_ios, fan_scalar_wall = \
            serve_fanout(scalar_engine)
    scalar_engine.close()
    assert fan_vec_answers == fan_scalar_answers, (
        "vectorized fan-out answers must equal the scalar loops'")
    assert fan_vec_ios == fan_scalar_ios, (
        "vectorization must not move a single fan-out I/O count: %r vs "
        "%r" % (fan_vec_ios, fan_scalar_ios))
    for constraint, answer in zip(fanout_queries, fan_vec_answers):
        assert answer == {tuple(p) for p in points if constraint.below(p)}
    fanout = {
        "vectorized": {"wall_seconds": fan_vec_wall,
                       "total_ios": sum(fan_vec_ios)},
        "scalar": {"wall_seconds": fan_scalar_wall,
                   "total_ios": sum(fan_scalar_ios)},
        "io_identical": fan_vec_ios == fan_scalar_ios,
        "answers_identical": fan_vec_answers == fan_scalar_answers,
        "speedup": fan_scalar_wall / max(fan_vec_wall, 1e-9),
    }

    return {
        "workload": {
            "num_points": num_points,
            "scan_block_size": VEC_BLOCK_SIZE,
            "scan_queries": num_queries,
            "scan_selectivity": VEC_SELECTIVITY,
            "fanout_queries": num_fanout,
            "fanout_selectivity": SHARD_SELECTIVITY,
            "num_shards": NUM_SHARDS,
        },
        #: The >= 10x gate only applies at the full configuration.
        "speedup_gate": None if smoke else VEC_MIN_SPEEDUP,
        "full_scan": full_scan,
        "fanout": fanout,
    }


def run_process_workers(smoke=False):
    """One GIL-bound thread pool vs one worker process per replica.

    The K=4 range-sharded full-scan workload is served twice under
    ``scalar_kernels()`` — the per-record python loops make every shard
    scan compute-bound, which is exactly the regime the process layer
    targets (the numpy kernels release the GIL anyway, so a vectorized
    comparison would measure nothing).  Both engines are *registered*
    inside the scalar context too, so forked workers inherit the scalar
    toggle and serve the same code path as the in-process baseline.

    Parity is the acceptance bar: the two modes must return identical
    (sorted) answers, charge identical per-query I/O totals, and land
    identical per-replica I/O attribution in ``EngineStats`` — the RPC
    boundary must be invisible to every counter.  The >= 1.5x
    wall-clock gate applies only at the full configuration on hosts
    with at least two CPUs; one core cannot parallelize anything and
    the smoke sizes are too small to time.
    """
    num_points = SMOKE_PROC_POINTS if smoke else PROC_POINTS
    num_queries = SMOKE_PROC_NUM_QUERIES if smoke else PROC_NUM_QUERIES
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    points = uniform_points(num_points, seed=SEED + 40)
    queries = halfspace_queries_with_selectivity(
        points, num_queries, PROC_SELECTIVITY, seed=SEED + 41)

    def serve_mode(workers):
        engine = QueryEngine(block_size=BLOCK_SIZE, seed=SEED + 40,
                             workers=workers, fanout_workers=NUM_SHARDS)
        try:
            engine.register_sharded_dataset(
                "proc", points, num_shards=NUM_SHARDS, sharding="range",
                kinds=["full_scan"])
            answers, ios = [], []
            started = time.perf_counter()
            for constraint in queries:
                answer = engine.query("proc", constraint, clear_cache=True)
                answers.append(sorted(tuple(point)
                                      for point in answer.points))
                ios.append(answer.total_ios)
            wall = time.perf_counter() - started
            loads = engine.stats.replica_load_summary()
        finally:
            engine.close()
        return answers, ios, loads, wall

    with scalar_kernels():
        in_answers, in_ios, in_loads, in_wall = serve_mode("inprocess")
        proc_answers, proc_ios, proc_loads, proc_wall = \
            serve_mode("process")

    assert proc_answers == in_answers, (
        "process workers must answer exactly like the in-process "
        "fan-out")
    assert proc_ios == in_ios, (
        "moving a replica behind the RPC boundary must not move a "
        "single per-query I/O total: %r vs %r" % (proc_ios, in_ios))
    assert proc_loads == in_loads, (
        "per-replica I/O attribution must survive the process "
        "boundary: %r vs %r" % (proc_loads, in_loads))
    for constraint, answer in zip(queries, proc_answers):
        assert answer == sorted(tuple(p) for p in points
                                if constraint.below(p))

    return {
        "workload": {
            "num_points": num_points,
            "num_queries": num_queries,
            "selectivity": PROC_SELECTIVITY,
            "num_shards": NUM_SHARDS,
        },
        "cpus": cpus,
        #: The >= 1.5x gate needs the full configuration AND real cores.
        "speedup_gate": None if smoke or cpus < 2 else PROC_MIN_SPEEDUP,
        "inprocess": {"wall_seconds": in_wall, "total_ios": sum(in_ios)},
        "process": {"wall_seconds": proc_wall,
                    "total_ios": sum(proc_ios)},
        "io_identical": proc_ios == in_ios,
        "replica_loads_identical": proc_loads == in_loads,
        "answers_identical": proc_answers == in_answers,
        "speedup": in_wall / max(proc_wall, 1e-9),
    }


def run_tracing(smoke=False):
    """Request tracing priced: baseline vs disabled wrapper vs enabled.

    The K=4 full-scan fan-out workload is served cold through *one*
    engine in three modes, toggled between rounds — same stores, same
    buffer pools, same calibration state, so the only difference
    between the modes is the span machinery itself (two separately
    built engines differ by several percent from allocation-layout
    luck alone, which would drown the effect being measured):

    * ``baseline`` — ``engine.query`` bare, tracer disabled and no
      trace opened: the pre-tracing (PR 7) request path;
    * ``off`` — every request opens a trace through the disabled
      tracer and activates its root span, exactly what the serving
      layer does per admitted request — the no-op singleton path every
      caller now pays when tracing is off;
    * ``on`` — the same wrapper with the tracer enabled, building the
      full span tree.

    Answers must match record-for-record across all three modes and
    every I/O counter must be identical (tracing observes the data
    path, it never steers it); each query's wall clock is its minimum
    over ``repeats`` alternating rounds (per-query minima shed
    host-scheduler spikes).  Two gates apply at the full configuration
    only (smoke sizes are too small to time meaningfully):
    off/baseline <= ``TRACE_MAX_OVERHEAD`` — the ISSUE's acceptance
    criterion, instrumentation must be free when disabled — and the
    enabled span tree within the same ratio of the disabled path *or*
    within the fixed ``TRACE_ENABLED_MAX_COST_US`` per-request budget
    (see that constant for why a pure ratio would flake here).

    An ``EXPLAIN ANALYZE`` parity check rides along: the per-shard span
    I/Os must sum *exactly* to both the report's ``actual_ios`` and the
    ``EngineStats`` delta the request produced — the ISSUE's
    reconciliation criterion.
    """
    from repro.engine.tracing import activate

    num_points = SMOKE_VEC_POINTS if smoke else VEC_POINTS
    num_queries = SMOKE_TRACE_QUERIES if smoke else TRACE_QUERIES
    repeats = SMOKE_TRACE_REPEATS if smoke else TRACE_REPEATS
    points = uniform_points(num_points, seed=SEED + 30)
    queries = halfspace_queries_with_selectivity(
        points, num_queries, VEC_SELECTIVITY, seed=SEED + 31)

    # full_scan only, like the vectorized fan-out phase: a fixed plan
    # keeps all modes on the identical data path in every round.
    on_engine = QueryEngine(block_size=BLOCK_SIZE, seed=SEED + 33,
                            tracing=True)
    on_engine.register_sharded_dataset(
        "traced", points, num_shards=NUM_SHARDS, sharding="range",
        kinds=["full_scan"])

    def serve_round(mode, sink=None):
        wrapped = mode != "baseline"
        on_engine.tracer.enabled = mode == "on"
        durations = []
        for constraint in queries:
            started = time.perf_counter()
            if wrapped:
                trace = on_engine.tracer.start_trace("bench.request",
                                                     dataset="traced")
                try:
                    with activate(trace.root):
                        answer = on_engine.query("traced", constraint,
                                                 clear_cache=True)
                finally:
                    trace.finish()
            else:
                answer = on_engine.query("traced", constraint,
                                         clear_cache=True)
            durations.append(time.perf_counter() - started)
            if sink is not None:
                sink.append(answer)
        return durations

    modes = ("baseline", "off", "on")
    answers, ios = {}, {}
    for mode in modes:  # warm-up + parity capture, untimed
        collected = []
        serve_round(mode, collected)
        answers[mode] = [{tuple(p) for p in a.points} for a in collected]
        ios[mode] = [a.total_ios for a in collected]
    # Timed rounds alternate modes so load drift on the host lands on
    # all sides evenly, and each query's cost is its best over the
    # rounds — per-query minima shed scheduler spikes that a whole-round
    # best-of-N still absorbs (a spike lands on one query, not all 24).
    best = {mode: [float("inf")] * len(queries) for mode in modes}
    for __ in range(repeats):
        for mode in modes:
            best[mode] = [min(old, new) for old, new
                          in zip(best[mode], serve_round(mode))]
    base_answers, off_answers, on_answers = (answers[m] for m in modes)
    base_ios, off_ios, on_ios = (ios[m] for m in modes)
    base_wall, off_wall, on_wall = (sum(best[m]) for m in modes)

    # The disabled path must be the no-op singleton, not a cheap trace:
    # no id is minted and the root span refuses children.
    on_engine.tracer.enabled = False
    probe = on_engine.tracer.start_trace("bench.request")
    noop = (probe.trace_id == "" and not probe.root.enabled
            and probe.root.child("nested") is probe.root)
    on_engine.tracer.enabled = True

    assert base_answers == off_answers == on_answers, (
        "tracing changed a query answer — spans must observe the data "
        "path, never steer it")
    assert base_ios == off_ios == on_ios, (
        "tracing moved an I/O counter: %r vs %r vs %r"
        % (base_ios, off_ios, on_ios))

    # One more traced request, kept, to report the span-tree size.
    trace = on_engine.tracer.start_trace("bench.request", dataset="traced")
    try:
        with activate(trace.root):
            on_engine.query("traced", queries[0], clear_cache=True)
    finally:
        trace.finish()

    def count_spans(span):
        return 1 + sum(count_spans(child) for child in span.children)

    spans_per_query = count_spans(trace.root) - 1  # minus the bench root

    report = on_engine.explain("traced", queries[0], analyze=True)
    per_shard_ios = sum(entry["ios"] for entry in report["per_shard"])
    explain = {
        "trace_id": report["trace_id"],
        "shards": len(report["per_shard"]),
        "per_shard_ios": per_shard_ios,
        "actual_ios": report["actual_ios"],
        "stats_delta_ios": report["stats_delta"]["total_ios"],
        "parity": (per_shard_ios == report["actual_ios"]
                   == report["stats_delta"]["total_ios"]),
    }
    on_engine.close()

    return {
        "workload": {
            "num_points": num_points,
            "num_queries": num_queries,
            "repeats": repeats,
            "num_shards": NUM_SHARDS,
            "block_size": BLOCK_SIZE,
            "selectivity": VEC_SELECTIVITY,
        },
        #: Smoke still gates the disabled path (loosely — CI noise),
        #: but only the full configuration gates the enabled path.
        "overhead_gate": SMOKE_TRACE_MAX_OVERHEAD if smoke
                         else TRACE_MAX_OVERHEAD,
        "enabled_gate": None if smoke else TRACE_MAX_OVERHEAD,
        "baseline": {"wall_seconds": base_wall,
                     "total_ios": sum(base_ios)},
        "tracing_off": {"wall_seconds": off_wall,
                        "total_ios": sum(off_ios),
                        "noop_singleton": noop},
        "tracing_on": {"wall_seconds": on_wall,
                       "total_ios": sum(on_ios),
                       "spans_per_query": spans_per_query},
        #: The acceptance gate: instrumentation when disabled vs the
        #: pre-tracing request path.
        "disabled_overhead_ratio": off_wall / max(base_wall, 1e-9),
        #: The cost of actually building the span tree, as a ratio and
        #: as the fixed per-request cost the ratio is made of.
        "enabled_overhead_ratio": on_wall / max(off_wall, 1e-9),
        "enabled_cost_us_per_query":
            (on_wall - off_wall) / num_queries * 1e6,
        "io_identical": base_ios == off_ios == on_ios,
        "answers_identical": base_answers == off_answers == on_answers,
        "explain": explain,
    }


def run_http_serving(smoke=False):
    """The network front-end vs the embedded async path, same workload.

    An 80-request mixed trace (halfspace queries of two selectivities
    plus routed inserts) is served twice: once through
    ``engine.serve_async`` in-process, once over real localhost HTTP
    from four concurrent clients holding distinct API keys — one of them
    budget-capped with the ``degrade`` policy.  Per-tenant p50/p95
    client-observed latencies are recorded for both paths, the capped
    tenant's degraded answers are checked for their confidence
    intervals, and a follow-up SSE phase measures time-to-first-estimate
    vs time-to-final-result per stream.  ``GET /stats`` must round-trip
    through strict JSON and carry per-endpoint latency counters.
    """
    import threading

    from repro.engine.server import ApiKey, ServerClient

    num_points = SMOKE_HTTP_POINTS if smoke else HTTP_POINTS
    per_client = SMOKE_HTTP_QUERIES_PER_CLIENT if smoke \
        else HTTP_QUERIES_PER_CLIENT
    num_mutations = SMOKE_HTTP_MUTATIONS if smoke else HTTP_MUTATIONS
    num_streams = SMOKE_HTTP_STREAMS if smoke else HTTP_STREAMS
    points = uniform_points(num_points, seed=SEED + 21)
    rng = np.random.default_rng(SEED + 22)
    inserts = rng.uniform(-1.0, 1.0, size=(num_mutations, 2))
    tenant_queries = {
        tenant: halfspace_queries_with_selectivity(
            points, per_client,
            HTTP_HEAVY_SELECTIVITY if tenant == "gamma"
            else HTTP_FAST_SELECTIVITY,
            seed=SEED + 23 + index)
        for index, tenant in enumerate(("alpha", "beta", "gamma", "delta"))}

    def make_engine():
        engine = QueryEngine(block_size=BLOCK_SIZE, seed=SEED + 21)
        engine.register_sharded_dataset(
            "served", points, num_shards=4, sharding="range",
            kinds=["partition_tree", "full_scan", "dynamic"])
        return engine

    def gamma_budget(engine):
        estimate = engine.explain("served",
                                  tenant_queries["gamma"][0]).estimated_ios
        return TenantBudget(ios_per_s=max(estimate, 50.0),
                            burst=1.1 * max(estimate, 50.0),
                            policy="degrade")

    def latency_summary(seconds):
        ordered = sorted(seconds)
        return {"p50_ms": percentile(ordered, 0.50) * 1e3,
                "p95_ms": percentile(ordered, 0.95) * 1e3}

    total_requests = 4 * per_client + num_mutations

    # --- embedded baseline: the identical trace through serve_async -----
    embedded_engine = make_engine()
    trace = []
    for position in range(per_client):
        for tenant in ("alpha", "beta", "gamma", "delta"):
            trace.append(ServingRequest(
                tenant=tenant, dataset="served",
                constraint=tenant_queries[tenant][position]))
    for point in inserts:
        trace.append(ServingRequest(tenant="delta", dataset="served",
                                    op="insert", point=tuple(point)))
    result = embedded_engine.serve_async(
        trace, budgets={"gamma": gamma_budget(embedded_engine)},
        max_concurrency=4)
    embedded = {
        tenant: dict(latency_summary(
            [item.turnaround_s for item in result.requests
             if item.request.tenant == tenant]),
            outcomes=dict(_counter(item.outcome for item in result.requests
                                   if item.request.tenant == tenant)))
        for tenant in tenant_queries}
    embedded_engine.close()

    # --- the same trace over localhost HTTP, 4 concurrent clients -------
    engine = make_engine()
    keys = [ApiKey(key="key-alpha", tenant="alpha"),
            ApiKey(key="key-beta", tenant="beta"),
            ApiKey(key="key-gamma", tenant="gamma",
                   budget=gamma_budget(engine)),
            ApiKey(key="key-delta", tenant="delta")]
    server = engine.serve_http(keys, max_concurrency=4)
    host, port = server.address
    records = {}

    def run_client(tenant):
        client = ServerClient(host, port, api_key="key-%s" % tenant)
        rows = []
        for constraint in tenant_queries[tenant]:
            started = time.perf_counter()
            status, body = client.query("served",
                                        list(constraint.coeffs),
                                        constraint.offset)
            rows.append((time.perf_counter() - started, status, body))
        if tenant == "delta":
            for point in inserts:
                started = time.perf_counter()
                status, body = client.insert("served", list(point))
                rows.append((time.perf_counter() - started, status, body))
        records[tenant] = rows

    threads = [threading.Thread(target=run_client, args=(tenant,))
               for tenant in tenant_queries]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    intervals_ok = True
    mutations_applied = 0
    http = {}
    for tenant, rows in records.items():
        outcomes = _counter(body.get("outcome", "http-%d" % status)
                            for __, status, body in rows)
        http[tenant] = dict(latency_summary([row[0] for row in rows]),
                            outcomes=dict(outcomes))
        for __, status, body in rows:
            if body.get("outcome") == "degraded":
                answer = body["answer"]
                low, high = answer["count_interval"]
                intervals_ok &= (low <= answer["estimated_count"] <= high
                                 and 0.0 < answer["sample_rate"] <= 1.0)
            if body.get("mutation", {}).get("applied"):
                mutations_applied += 1

    # --- SSE: degraded-then-refined over one connection ------------------
    stream_queries = halfspace_queries_with_selectivity(
        points, num_streams, HTTP_FAST_SELECTIVITY, seed=SEED + 29)
    client = ServerClient(host, port, api_key="key-alpha")
    first_estimate, final, ordering_ok = [], [], True
    for constraint in stream_queries:
        started = time.perf_counter()
        status, events = client.query_stream("served",
                                             list(constraint.coeffs),
                                             constraint.offset)
        names = [event.name for event in events]
        ordering_ok &= (status == 200 and names == ["estimate", "result"]
                        and "count_interval" in events[0].data)
        if len(events) == 2:
            first_estimate.append(events[0].at - started)
            final.append(events[1].at - started)

    status, summary = client.stats()
    try:
        json.dumps(summary, allow_nan=False)
        stats_valid = status == 200
    except ValueError:
        stats_valid = False
    endpoints = sorted(summary.get("http", {}))
    server.stop()
    engine.close()

    return {
        "workload": {
            "num_points": num_points,
            "num_requests": total_requests,
            "queries_per_client": per_client,
            "num_mutations": num_mutations,
            "num_streams": num_streams,
            "fast_selectivity": HTTP_FAST_SELECTIVITY,
            "heavy_selectivity": HTTP_HEAVY_SELECTIVITY,
        },
        "embedded": embedded,
        "http": http,
        "degraded_intervals_ok": intervals_ok,
        "mutations_applied": mutations_applied,
        "sse": {
            "streams": num_streams,
            "ordering_ok": ordering_ok,
            "first_estimate": latency_summary(first_estimate),
            "final": latency_summary(final),
        },
        "stats_endpoint": {"valid_json": stats_valid,
                           "endpoints": endpoints},
    }


def _counter(values):
    counts = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return counts


def run_experiment(smoke=False):
    """Run every strategy once and return the result payload."""
    tenants, engine, requests, builds = build_scenario(smoke=smoke)

    fixed = {name: run_fixed(engine, requests, name)
             for name in FIXED_STRATEGIES}

    # Startup calibration: probe every index once so routing starts from
    # measured constants (paid once; reported separately below).
    calibration_ios = 0
    for name, points in tenants.items():
        probes = halfspace_queries_with_selectivity(
            points, NUM_CALIBRATION_PROBES, 0.05, seed=SEED + 7)
        calibration_ios += engine.calibrate(name, probes)

    independent = run_independent_cold(engine, requests)

    engine.stats.reset()
    routed_result = engine.serve_workload(requests, warm_cache=True)
    routed = {"total_ios": routed_result.total_ios,
              "wall_seconds": routed_result.wall_seconds,
              "result_cache_hits": routed_result.result_cache_hits}

    # Correctness: routed answers equal the in-memory filter.
    for (tenant, constraint), answer in zip(requests, routed_result.queries):
        expected = {tuple(p) for p in tenants[tenant] if constraint.below(p)}
        assert {tuple(p) for p in answer.points} == expected

    return {
        "experiment": "ENGINE — planner-routed vs fixed-index serving",
        "workload": {
            "block_size": BLOCK_SIZE,
            "num_requests": len(requests),
            "hot_fraction": HOT_FRACTION,
            "seed": SEED,
            "tenants": {name: len(points)
                        for name, points in tenants.items()},
        },
        "builds": [record.summary() for record in builds],
        "calibration_ios": calibration_ios,
        "planner_routed": routed,
        "independent_cold": independent,
        "fixed": fixed,
        "engine_summary": engine.summary(),
        "calibration": engine.planner.export_calibration(),
        "backends": run_backend_parity(smoke=smoke),
        "sharding": run_sharding(smoke=smoke),
        "async_serving": run_async_serving(smoke=smoke),
        "selectivity_models": run_selectivity_models(smoke=smoke),
        "conformal_coverage": run_conformal_coverage(smoke=smoke),
        "rebalance": run_rebalance(smoke=smoke),
        "write_fanout": run_write_fanout(smoke=smoke),
        "vectorized": run_vectorized(smoke=smoke),
        "process_workers": run_process_workers(smoke=smoke),
        "tracing": run_tracing(smoke=smoke),
        "http_serving": run_http_serving(smoke=smoke),
    }


def to_table(results):
    """The strategies side by side, as the repo's plain-text tables."""
    rows = [["planner_routed (warm batch)",
             str(results["planner_routed"]["total_ios"]),
             "%.1f" % (results["planner_routed"]["wall_seconds"] * 1e3)],
            ["independent_cold (routed)",
             str(results["independent_cold"]["total_ios"]),
             "%.1f" % (results["independent_cold"]["wall_seconds"] * 1e3)]]
    for name, payload in results["fixed"].items():
        rows.append(["fixed:%s (cold)" % name, str(payload["total_ios"]),
                     "%.1f" % (payload["wall_seconds"] * 1e3)])
    return format_table(
        ["strategy", "total I/Os", "wall ms"], rows,
        title="ENGINE — %d mixed requests over %s (one-off calibration: "
        "%d I/Os)" % (results["workload"]["num_requests"],
                      ", ".join(sorted(results["workload"]["tenants"])),
                      results["calibration_ios"]))


def storage_tables(results):
    """The backend-parity and sharding experiments as plain-text tables."""
    backends = results["backends"]
    backend_rows = [
        ["memory", str(backends["memory"]["total_ios"]), "-", "-"],
        ["file", str(backends["file"]["total_ios"]),
         str(backends["file"]["file_bytes_read"]),
         str(backends["file"]["file_bytes_written"])],
    ]
    backend_table = format_table(
        ["backend", "total I/Os", "bytes read", "bytes written"],
        backend_rows,
        title="BACKENDS — same workload, memory vs file (parity: %s)"
        % backends["io_parity"])

    sharding = results["sharding"]
    shard_rows = [
        ["sharded K=%d (pruned)" % NUM_SHARDS,
         str(sharding["sharded_pruned"]["total_ios"]),
         "%d queried / %d pruned" % (
             sharding["sharded_pruned"]["shards_queried"],
             sharding["sharded_pruned"]["shards_pruned"])],
        ["sharded K=%d (all shards)" % NUM_SHARDS,
         str(sharding["sharded_all_shards"]["total_ios"]), "-"],
        ["unsharded", str(sharding["unsharded"]["total_ios"]), "-"],
    ]
    shard_table = format_table(
        ["strategy", "total I/Os", "fan-out"], shard_rows,
        title="SHARDING — %d steep leading-attribute queries, cold"
        % sharding["workload"]["num_queries"])

    serving = results["async_serving"]
    serving_rows = [
        ["threaded (serial batch)",
         "%.1f" % serving["threaded"]["fast_p95_ms"],
         "%.1f" % serving["threaded"]["slow_p95_ms"],
         str(serving["threaded"]["total_ios"]), "-"],
        ["async (slow budget-capped)",
         "%.1f" % serving["async"]["fast_p95_ms"],
         "%.1f" % serving["async"]["slow_p95_ms"],
         str(serving["async"]["total_ios"]),
         str(serving["async"]["deferrals"])],
    ]
    serving_table = format_table(
        ["path", "fast p95 ms", "slow p95 ms", "total I/Os", "deferrals"],
        serving_rows,
        title="ASYNC SERVING — shared K=%dx%d dataset, %d slow + %d fast "
        "requests (fast p95 speedup %.1fx)"
        % (serving["workload"]["num_shards"], serving["workload"]["replicas"],
           serving["workload"]["slow_queries"],
           serving["workload"]["fast_queries"],
           serving["fast_p95_speedup"]))

    stats = results["selectivity_models"]
    stats_rows = [
        [name,
         "%.2f" % stats[name]["mean_qerror"],
         "%.2f" % stats[name]["median_qerror"],
         "%.2f" % stats[name]["p90_qerror"],
         "%.2f" % stats[name]["max_qerror"]]
        for name in ("uniform", "histogram", "ensemble")]
    weights = stats["ensemble_model"]["weights"]
    stats_table = format_table(
        ["model", "mean q", "median q", "p90 q", "max q"], stats_rows,
        title="SELECTIVITY — %d §1.2-diagonal queries, selectivity "
        "%g..%g (ensemble weights u:%.3f h:%.3f after %d feedbacks)"
        % (stats["workload"]["num_queries"],
           stats["workload"]["selectivity_range"][0],
           stats["workload"]["selectivity_range"][1],
           weights["uniform"], weights["histogram"],
           stats["ensemble_model"]["feedback"]))

    conformal = results["conformal_coverage"]
    conformal_rows = [[
        "%.2f" % conformal["workload"]["nominal_coverage"],
        "%.3f" % conformal["empirical_coverage"],
        str(conformal["degraded_answers"]),
        " ".join("%s:%d" % pair
                 for pair in sorted(conformal["interval_sources"].items())),
        "%.1f" % conformal["mean_interval_width"]]]
    conformal_table = format_table(
        ["nominal", "empirical", "degraded answers", "interval sources",
         "mean width"], conformal_rows,
        title="CONFORMAL — degraded-answer intervals after %d calibration "
        "queries (window %d pairs, prequential coverage %s)"
        % (conformal["workload"]["calibration_queries"],
           conformal["calibration"]["pairs"],
           "-" if conformal["calibration"]["empirical_coverage"] is None
           else "%.3f" % conformal["calibration"]["empirical_coverage"]))

    rebalance = results["rebalance"]
    rebalance_rows = [
        [phase.replace("_", " "),
         str(rebalance[phase]["total_ios"]),
         "%d queried / %d pruned" % (rebalance[phase]["shards_queried"],
                                     rebalance[phase]["shards_pruned"])]
        for phase in ("before", "after_skewed_inserts", "after_rebalance")]
    rebalance_table = format_table(
        ["phase", "total I/Os", "fan-out"], rebalance_rows,
        title="REBALANCE — %d steep queries over K=%d, %d skewed inserts "
        "into the pruned shard (sizes %s -> %s)"
        % (rebalance["workload"]["num_queries"],
           rebalance["workload"]["num_shards"],
           rebalance["workload"]["num_inserts"],
           rebalance["report"]["old_sizes"],
           rebalance["report"]["new_sizes"]))
    fanout = results["write_fanout"]

    def share_cell(phase):
        shares = fanout[phase]["busiest_replica_share"]
        return " ".join("s%s:%.0f%%" % (shard, 100 * share)
                        for shard, share in sorted(shares.items()))

    fanout_rows = [
        ["before writes", str(fanout["before_writes"]["total_ios"]),
         share_cell("before_writes")],
        ["after fanout writes", str(fanout["after_writes"]["total_ios"]),
         share_cell("after_writes")],
        ["pinned emulation", str(fanout["pinned_emulation"]["total_ios"]),
         share_cell("pinned_emulation")],
    ]
    fanout_table = format_table(
        ["phase", "total I/Os", "busiest replica share"], fanout_rows,
        title="WRITE FANOUT — %d routed inserts over K=%dx%d, %d cold "
        "queries per phase (write p95 %.2f ms)"
        % (fanout["workload"]["num_inserts"],
           fanout["workload"]["num_shards"],
           fanout["workload"]["replicas"],
           fanout["workload"]["num_queries"],
           fanout["writes"]["latency_s"]["p95"] * 1e3))
    vectorized = results["vectorized"]
    vec_rows = []
    for phase, label in (("full_scan", "full scan (N=%d, B=%d)"
                          % (vectorized["workload"]["num_points"],
                             vectorized["workload"]["scan_block_size"])),
                         ("fanout", "sharded fan-out (K=%d)"
                          % vectorized["workload"]["num_shards"])):
        payload = vectorized[phase]
        vec_rows.append([
            label,
            "%.1f" % (payload["scalar"]["wall_seconds"] * 1e3),
            "%.1f" % (payload["vectorized"]["wall_seconds"] * 1e3),
            "%.1fx" % payload["speedup"],
            "%s / %s" % (payload["io_identical"],
                         payload["answers_identical"])])
    vec_table = format_table(
        ["kernel", "scalar ms", "vectorized ms", "speedup",
         "I/O parity / answer parity"], vec_rows,
        title="VECTORIZED — numpy batch kernels vs scalar record loops")
    proc = results["process_workers"]
    proc_rows = [
        ["inprocess (threaded)",
         "%.1f" % (proc["inprocess"]["wall_seconds"] * 1e3),
         str(proc["inprocess"]["total_ios"])],
        ["process workers",
         "%.1f" % (proc["process"]["wall_seconds"] * 1e3),
         str(proc["process"]["total_ios"])],
    ]
    proc_table = format_table(
        ["mode", "wall ms", "total I/Os"], proc_rows,
        title="PROCESS WORKERS — %d CPU-bound scalar queries over K=%d "
        "on %d cpu(s): %.2fx, I/O / replica / answer parity %s/%s/%s"
        % (proc["workload"]["num_queries"], proc["workload"]["num_shards"],
           proc["cpus"], proc["speedup"], proc["io_identical"],
           proc["replica_loads_identical"], proc["answers_identical"]))
    tracing = results["tracing"]
    trace_rows = [
        ["baseline (no trace opened)",
         "%.1f" % (tracing["baseline"]["wall_seconds"] * 1e3),
         str(tracing["baseline"]["total_ios"]), "-"],
        ["tracing off (no-op singletons)",
         "%.1f" % (tracing["tracing_off"]["wall_seconds"] * 1e3),
         str(tracing["tracing_off"]["total_ios"]), "0"],
        ["tracing on",
         "%.1f" % (tracing["tracing_on"]["wall_seconds"] * 1e3),
         str(tracing["tracing_on"]["total_ios"]),
         str(tracing["tracing_on"]["spans_per_query"])],
    ]
    trace_table = format_table(
        ["mode",
         "wall ms (query-min of %d)" % tracing["workload"]["repeats"],
         "total I/Os", "spans/query"], trace_rows,
        title="TRACING — %d cold fan-out queries over K=%d (disabled "
        "%.3fx of baseline, enabled %.3fx of disabled, explain "
        "per-shard I/O parity: %s)"
        % (tracing["workload"]["num_queries"],
           tracing["workload"]["num_shards"],
           tracing["disabled_overhead_ratio"],
           tracing["enabled_overhead_ratio"],
           tracing["explain"]["parity"]))
    http = results["http_serving"]
    http_rows = []
    for tenant in sorted(http["http"]):
        http_rows.append([
            tenant + (" (capped)" if tenant == "gamma" else ""),
            "%.1f / %.1f" % (http["embedded"][tenant]["p50_ms"],
                             http["embedded"][tenant]["p95_ms"]),
            "%.1f / %.1f" % (http["http"][tenant]["p50_ms"],
                             http["http"][tenant]["p95_ms"]),
            " ".join("%s:%d" % pair for pair in
                     sorted(http["http"][tenant]["outcomes"].items()))])
    http_rows.append([
        "SSE estimate->final",
        "-",
        "%.1f -> %.1f" % (http["sse"]["first_estimate"]["p50_ms"],
                          http["sse"]["final"]["p50_ms"]),
        "%d streams ordered" % http["sse"]["streams"]])
    http_table = format_table(
        ["tenant", "embedded p50/p95 ms", "HTTP p50/p95 ms", "outcomes"],
        http_rows,
        title="HTTP SERVING — %d mixed requests, 4 concurrent keyed "
        "clients (stats endpoint JSON: %s)"
        % (http["workload"]["num_requests"],
           http["stats_endpoint"]["valid_json"]))
    return "\n\n".join([backend_table, shard_table, serving_table,
                        stats_table, conformal_table, rebalance_table,
                        fanout_table, vec_table, proc_table, trace_table,
                        http_table])


def check_acceptance(results):
    """The routed-serving and storage-layer acceptance criteria."""
    routed_ios = results["planner_routed"]["total_ios"]
    worst_fixed = max(payload["total_ios"]
                      for payload in results["fixed"].values())
    assert routed_ios <= worst_fixed, (
        "planner-routed serving (%d I/Os) must not lose to the worst fixed "
        "index (%d I/Os)" % (routed_ios, worst_fixed))
    assert routed_ios < results["independent_cold"]["total_ios"], (
        "the warm-cache batch path (%d I/Os) must beat independent cold "
        "queries (%d I/Os)"
        % (routed_ios, results["independent_cold"]["total_ios"]))

    backends = results["backends"]
    assert backends["io_parity"], (
        "file backend charged %d I/Os where the memory backend charged %d "
        "on the identical workload — accounting must not depend on the "
        "backend" % (backends["file"]["total_ios"],
                     backends["memory"]["total_ios"]))

    sharding = results["sharding"]
    assert (sharding["sharded_pruned"]["total_ios"]
            < sharding["sharded_all_shards"]["total_ios"]), (
        "range-shard pruning (%d I/Os) must beat querying all shards "
        "(%d I/Os) on leading-attribute-selective constraints"
        % (sharding["sharded_pruned"]["total_ios"],
           sharding["sharded_all_shards"]["total_ios"]))
    assert sharding["sharded_pruned"]["shards_pruned"] > 0, (
        "the steep workload should prune at least one shard")

    serving = results["async_serving"]
    assert serving["async"]["outcomes"] == {
        "served": serving["workload"]["fast_queries"]
        + serving["workload"]["slow_queries"]}, (
        "the queue policy must eventually serve every request, got %r"
        % (serving["async"]["outcomes"],))
    assert (serving["async"]["fast_p95_ms"]
            < serving["threaded"]["fast_p95_ms"]), (
        "budget-capping the slow tenant must stop it inflating the fast "
        "tenant's p95: async %.1f ms vs threaded %.1f ms"
        % (serving["async"]["fast_p95_ms"],
           serving["threaded"]["fast_p95_ms"]))
    replica_load = serving["async"]["replica_load"]
    for shard_id in range(serving["workload"]["num_shards"]):
        used = {key for key, ios in replica_load.items()
                if key.startswith("shared/%d/" % shard_id) and ios > 0}
        assert len(used) >= 2, (
            "concurrent same-shard tenants should spread I/O over both "
            "replicas of shard %d, got %r" % (shard_id, replica_load))

    stats = results["selectivity_models"]
    assert (stats["histogram"]["mean_qerror"]
            < stats["uniform"]["mean_qerror"]), (
        "the histogram model (mean q-error %.2f) must beat the uniform "
        "sample (mean q-error %.2f) on the skewed diagonal workload"
        % (stats["histogram"]["mean_qerror"],
           stats["uniform"]["mean_qerror"]))
    assert (stats["histogram"]["median_qerror"]
            < stats["uniform"]["median_qerror"]), (
        "the histogram model (median q-error %.2f) must beat the uniform "
        "sample (median q-error %.2f) on the skewed diagonal workload"
        % (stats["histogram"]["median_qerror"],
           stats["uniform"]["median_qerror"]))
    assert (stats["ensemble"]["mean_qerror"]
            < stats["uniform"]["mean_qerror"]), (
        "the warmed ensemble (mean q-error %.2f) must beat the uniform "
        "sample (mean q-error %.2f) — its e-weights exist to stop the "
        "mis-specified member deciding the blend"
        % (stats["ensemble"]["mean_qerror"],
           stats["uniform"]["mean_qerror"]))
    ensemble_gate = stats["ensemble_gate"]
    if ensemble_gate is not None:
        assert stats["ensemble"]["mean_qerror"] <= ensemble_gate, (
            "at the full configuration the warmed ensemble's mean q-error "
            "(%.3f) must be within the recorded histogram baseline (%.2f)"
            % (stats["ensemble"]["mean_qerror"], ensemble_gate))

    conformal = results["conformal_coverage"]
    assert conformal["degraded_answers"] >= 1, (
        "the drained token bucket must degrade the evaluation requests, "
        "got outcomes %r" % (conformal["outcomes"],))
    assert set(conformal["interval_sources"]) == {"conformal"}, (
        "every degraded answer after the calibration phase must carry a "
        "conformal interval (no normal fallback), got sources %r"
        % (conformal["interval_sources"],))
    min_degraded = conformal["min_degraded_gate"]
    if min_degraded is not None:
        assert conformal["degraded_answers"] >= min_degraded, (
            "the full-configuration coverage gate needs >= %d degraded "
            "answers to be meaningful, got %d"
            % (min_degraded, conformal["degraded_answers"]))
    tolerance = conformal["coverage_gate"]
    if tolerance is not None:
        nominal = conformal["workload"]["nominal_coverage"]
        gap = abs(conformal["empirical_coverage"] - nominal)
        assert gap <= tolerance, (
            "degraded-answer conformal intervals must achieve empirical "
            "coverage within %.0f points of the nominal %.2f, measured "
            "%.3f (gap %.3f) over %d degraded answers"
            % (tolerance * 100, nominal, conformal["empirical_coverage"],
               gap, conformal["degraded_answers"]))

    rebalance = results["rebalance"]
    skewed = rebalance["after_skewed_inserts"]
    restored = rebalance["after_rebalance"]
    assert skewed["shards_pruned"] < rebalance["before"]["shards_pruned"], (
        "skewed inserts should defeat pruning (stale bounding box), got "
        "%d pruned vs %d before" % (skewed["shards_pruned"],
                                    rebalance["before"]["shards_pruned"]))
    assert restored["shards_pruned"] > skewed["shards_pruned"], (
        "rebalancing must restore shard pruning: %d pruned after vs %d "
        "while skewed" % (restored["shards_pruned"],
                          skewed["shards_pruned"]))
    assert restored["total_ios"] < skewed["total_ios"], (
        "rebalancing must cut the skewed fan-out cost: %d I/Os after vs "
        "%d while skewed" % (restored["total_ios"], skewed["total_ios"]))

    fanout = results["write_fanout"]
    assert fanout["writes"]["inserts"] == \
        fanout["workload"]["num_inserts"], (
        "every routed insert must be recorded in the write counters, got "
        "%r" % (fanout["writes"],))
    after = fanout["after_writes"]["busiest_replica_share"]
    for shard_id in range(fanout["workload"]["num_shards"]):
        share = after.get(str(shard_id))
        assert share is not None and share < 0.95, (
            "post-mutation reads must spread across shard %d's replicas "
            "(write fanout keeps them identical), but the busiest "
            "replica served %r of its I/O" % (shard_id, share))
    pinned = fanout["pinned_emulation"]["busiest_replica_share"]
    assert all(share == 1.0 for share in pinned.values()), (
        "the pinned emulation should concentrate every shard's reads on "
        "one replica, got %r" % (pinned,))

    vectorized = results["vectorized"]
    for phase in ("full_scan", "fanout"):
        payload = vectorized[phase]
        assert payload["io_identical"], (
            "the %s phase charged different I/O counters with "
            "vectorization on vs off — batch kernels must sit strictly "
            "below the accounting seam" % phase)
        assert payload["answers_identical"], (
            "the %s phase answered differently with vectorization on vs "
            "off" % phase)
    gate = vectorized["speedup_gate"]
    if gate is not None:
        speedup = vectorized["full_scan"]["speedup"]
        assert speedup >= gate, (
            "the vectorized full-scan kernel must be at least %.0fx "
            "faster than the scalar record loops at the full "
            "configuration, measured %.1fx" % (gate, speedup))

    proc = results["process_workers"]
    assert proc["answers_identical"], (
        "process-worker serving must answer exactly like the in-process "
        "fan-out")
    assert proc["io_identical"], (
        "the RPC boundary must not move a single per-query I/O total")
    assert proc["replica_loads_identical"], (
        "per-replica I/O attribution must survive the process boundary")
    gate = proc["speedup_gate"]
    if gate is not None:
        assert proc["speedup"] >= gate, (
            "on a >= 2-cpu host at the full configuration, process "
            "workers must serve the CPU-bound K=%d fan-out at least "
            "%.1fx faster than the GIL-bound thread pool, measured "
            "%.2fx" % (proc["workload"]["num_shards"], gate,
                       proc["speedup"]))

    tracing = results["tracing"]
    assert tracing["io_identical"], (
        "enabling tracing must not move a single I/O counter — spans "
        "observe the data path, they never steer it")
    assert tracing["answers_identical"], (
        "enabling tracing must not change any query answer")
    assert tracing["tracing_off"]["noop_singleton"], (
        "a tracing-disabled engine must hand back the no-op trace/span "
        "singletons (no id minted, no children recorded)")
    explain = tracing["explain"]
    assert explain["parity"], (
        "EXPLAIN ANALYZE per-shard span I/Os (%d over %d shards) must "
        "equal both the report's actual I/Os (%d) and the EngineStats "
        "delta (%d) exactly"
        % (explain["per_shard_ios"], explain["shards"],
           explain["actual_ios"], explain["stats_delta_ios"]))
    gate = tracing["overhead_gate"]
    disabled = tracing["disabled_overhead_ratio"]
    assert disabled <= gate, (
        "the tracing-disabled request path (no-op singletons) must "
        "stay within %.0f%% wall-clock overhead of the pre-tracing "
        "baseline on the full-scan fan-out workload, measured %.3fx"
        % ((gate - 1.0) * 100, disabled))
    enabled_gate = tracing["enabled_gate"]
    if enabled_gate is not None:
        enabled = tracing["enabled_overhead_ratio"]
        cost_us = tracing["enabled_cost_us_per_query"]
        assert (enabled <= enabled_gate
                or cost_us <= TRACE_ENABLED_MAX_COST_US), (
            "enabled request tracing must stay within %.0f%% wall-clock "
            "overhead of the disabled path, or within the %.0fus fixed "
            "per-request span-tree budget, on the full-scan fan-out "
            "workload at the full configuration — measured %.3fx and "
            "%.1fus/request"
            % ((enabled_gate - 1.0) * 100, TRACE_ENABLED_MAX_COST_US,
               enabled, cost_us))

    http = results["http_serving"]
    for tenant in ("alpha", "beta"):
        assert set(http["http"][tenant]["outcomes"]) == {"served"}, (
            "unbudgeted tenant %r must be exactly served over HTTP, got "
            "%r" % (tenant, http["http"][tenant]["outcomes"]))
    gamma = http["http"]["gamma"]["outcomes"]
    assert gamma.get("degraded", 0) >= 1, (
        "the budget-capped tenant must hit its budget and degrade, got "
        "%r" % (gamma,))
    assert http["degraded_intervals_ok"], (
        "every degraded HTTP answer must carry a consistent sample rate "
        "and count interval")
    assert http["mutations_applied"] == \
        http["workload"]["num_mutations"], (
        "every routed insert over HTTP must apply, got %d of %d"
        % (http["mutations_applied"], http["workload"]["num_mutations"]))
    assert http["sse"]["ordering_ok"], (
        "every SSE stream must deliver its estimate event (with a count "
        "interval) before the final result")
    assert http["stats_endpoint"]["valid_json"], (
        "GET /stats must serve strict JSON")
    for endpoint in ("/query", "/query/stream", "/insert"):
        assert endpoint in http["stats_endpoint"]["endpoints"], (
            "/stats must report per-endpoint HTTP latency counters, "
            "missing %r in %r" % (endpoint,
                                  http["stats_endpoint"]["endpoints"]))


def test_engine_serving_beats_fixed_and_cold():
    results = run_experiment()
    print()
    print(to_table(results))
    print()
    print(storage_tables(results))
    check_acceptance(results)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv or os.environ.get("BENCH_ENGINE_SMOKE") == "1"
    results = run_experiment(smoke=smoke)
    print(to_table(results))
    print()
    print(storage_tables(results))
    check_acceptance(results)
    if smoke:
        print("\nsmoke configuration: acceptance checks passed, JSON not "
              "rewritten")
        return
    with open(BENCH_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\nwrote %s" % os.path.abspath(BENCH_PATH))


if __name__ == "__main__":
    main()
