"""Experiment ENGINE — planner-routed serving vs fixed-index serving.

The engine's claim: given several structures with different trade-offs,
cost-based routing plus batch execution should serve a mixed workload with
no more I/Os than the *worst* single-index deployment (it should in fact
track the best), and its warm-cache batch path should beat issuing the
same queries as independent cold ``query_with_stats`` calls.

Scenario: two tenants (a 2-D table and a 3-D table) behind one engine,
serving a mixed trace with hot repeats.  Strategies compared:

* ``planner_routed`` — the engine's batch path (dedup + result cache +
  warm buffer pool + per-query routing);
* ``independent_cold`` — the same planner routing, but every query issued
  alone with a cleared cache (what callers did before the engine);
* ``fixed:<kind>`` — every query forced through one index family
  (``optimal`` = halfplane2d / halfspace3d per dimension), cold.

Run standalone to (re)record the repo-root ``BENCH_engine.json``::

    python benchmarks/bench_engine.py

or under pytest, which additionally asserts the acceptance criteria.
"""

from __future__ import annotations

import json
import os
import sys
import time

try:
    import repro  # noqa: F401  (installed or on PYTHONPATH)
except ImportError:  # standalone invocation from a source checkout
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro import QueryEngine
from repro.experiments import format_table
from repro.workloads import (
    halfspace_queries_with_selectivity,
    mixed_tenant_workload,
    uniform_points,
)

BLOCK_SIZE = 32
NUM_CALIBRATION_PROBES = 3
NUM_REQUESTS = 80
HOT_FRACTION = 0.35
SEED = 1998
TENANT_SIZES = {"flat2d": 4096, "solid3d": 2048}

#: Index kinds built per tenant; "optimal" resolves per dimension.
SUITES = {
    "flat2d": ["halfplane2d", "partition_tree", "full_scan"],
    "solid3d": ["halfspace3d", "partition_tree", "full_scan"],
}
OPTIMAL = {"flat2d": "halfplane2d", "solid3d": "halfspace3d"}
FIXED_STRATEGIES = ["optimal", "partition_tree", "full_scan"]

BENCH_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                          "BENCH_engine.json")


def build_scenario():
    """The two tenants, their engine, and the request trace."""
    tenants = {
        "flat2d": uniform_points(TENANT_SIZES["flat2d"], seed=SEED),
        "solid3d": uniform_points(TENANT_SIZES["solid3d"], dimension=3,
                                  seed=SEED + 1),
    }
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=SEED)
    builds = []
    for name, points in tenants.items():
        builds.extend(engine.register_dataset(name, points,
                                              kinds=SUITES[name]))
    requests = mixed_tenant_workload(tenants, num_requests=NUM_REQUESTS,
                                     hot_fraction=HOT_FRACTION, seed=SEED)
    return tenants, engine, requests, builds


def run_fixed(engine, requests, strategy):
    """Serve every request through one fixed index family, cold."""
    total_ios = 0
    started = time.perf_counter()
    for tenant, constraint in requests:
        kind = OPTIMAL[tenant] if strategy == "optimal" else strategy
        index = engine.catalog.indexes(tenant)[kind]
        total_ios += index.query_with_stats(constraint,
                                            clear_cache=True).total_ios
    return {"total_ios": total_ios,
            "wall_seconds": time.perf_counter() - started}


def run_independent_cold(engine, requests):
    """Planner routing, but one cold query_with_stats call per request."""
    total_ios = 0
    started = time.perf_counter()
    for tenant, constraint in requests:
        plan = engine.explain(tenant, constraint)
        index = engine.catalog.indexes(tenant)[plan.index_name]
        total_ios += index.query_with_stats(constraint,
                                            clear_cache=True).total_ios
    return {"total_ios": total_ios,
            "wall_seconds": time.perf_counter() - started}


def run_experiment():
    """Run every strategy once and return the result payload."""
    tenants, engine, requests, builds = build_scenario()

    fixed = {name: run_fixed(engine, requests, name)
             for name in FIXED_STRATEGIES}

    # Startup calibration: probe every index once so routing starts from
    # measured constants (paid once; reported separately below).
    calibration_ios = 0
    for name, points in tenants.items():
        probes = halfspace_queries_with_selectivity(
            points, NUM_CALIBRATION_PROBES, 0.05, seed=SEED + 7)
        calibration_ios += engine.calibrate(name, probes)

    independent = run_independent_cold(engine, requests)

    engine.stats.reset()
    routed_result = engine.serve_workload(requests, warm_cache=True)
    routed = {"total_ios": routed_result.total_ios,
              "wall_seconds": routed_result.wall_seconds,
              "result_cache_hits": routed_result.result_cache_hits}

    # Correctness: routed answers equal the in-memory filter.
    for (tenant, constraint), answer in zip(requests, routed_result.queries):
        expected = {tuple(p) for p in tenants[tenant] if constraint.below(p)}
        assert {tuple(p) for p in answer.points} == expected

    return {
        "experiment": "ENGINE — planner-routed vs fixed-index serving",
        "workload": {
            "block_size": BLOCK_SIZE,
            "num_requests": NUM_REQUESTS,
            "hot_fraction": HOT_FRACTION,
            "seed": SEED,
            "tenants": TENANT_SIZES,
        },
        "builds": [record.summary() for record in builds],
        "calibration_ios": calibration_ios,
        "planner_routed": routed,
        "independent_cold": independent,
        "fixed": fixed,
        "engine_summary": engine.summary(),
        "calibration": engine.planner.export_calibration(),
    }


def to_table(results):
    """The strategies side by side, as the repo's plain-text tables."""
    rows = [["planner_routed (warm batch)",
             str(results["planner_routed"]["total_ios"]),
             "%.1f" % (results["planner_routed"]["wall_seconds"] * 1e3)],
            ["independent_cold (routed)",
             str(results["independent_cold"]["total_ios"]),
             "%.1f" % (results["independent_cold"]["wall_seconds"] * 1e3)]]
    for name, payload in results["fixed"].items():
        rows.append(["fixed:%s (cold)" % name, str(payload["total_ios"]),
                     "%.1f" % (payload["wall_seconds"] * 1e3)])
    return format_table(
        ["strategy", "total I/Os", "wall ms"], rows,
        title="ENGINE — %d mixed requests over %s (one-off calibration: "
        "%d I/Os)" % (results["workload"]["num_requests"],
                      ", ".join(sorted(results["workload"]["tenants"])),
                      results["calibration_ios"]))


def check_acceptance(results):
    """The ISSUE's two acceptance criteria."""
    routed_ios = results["planner_routed"]["total_ios"]
    worst_fixed = max(payload["total_ios"]
                      for payload in results["fixed"].values())
    assert routed_ios <= worst_fixed, (
        "planner-routed serving (%d I/Os) must not lose to the worst fixed "
        "index (%d I/Os)" % (routed_ios, worst_fixed))
    assert routed_ios < results["independent_cold"]["total_ios"], (
        "the warm-cache batch path (%d I/Os) must beat independent cold "
        "queries (%d I/Os)"
        % (routed_ios, results["independent_cold"]["total_ios"]))


def test_engine_serving_beats_fixed_and_cold():
    results = run_experiment()
    print()
    print(to_table(results))
    check_acceptance(results)


def main():
    results = run_experiment()
    print(to_table(results))
    check_acceptance(results)
    with open(BENCH_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\nwrote %s" % os.path.abspath(BENCH_PATH))


if __name__ == "__main__":
    main()
